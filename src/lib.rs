//! # pathrep — Representative Path Selection for Post-Silicon Timing Prediction
//!
//! Facade crate re-exporting the whole `pathrep` workspace: a faithful Rust
//! reproduction of *Xie & Davoodi, "Representative Path Selection for
//! Post-Silicon Timing Prediction Under Variability", DAC 2010*.
//!
//! Start with [`core`] for the selection algorithms, [`circuit`] +
//! [`variation`] + [`ssta`] for the substrates that produce the linear delay
//! model, [`eval`] to rerun the paper's experiments, and [`serve`] to run
//! the trained predictor as a batching prediction daemon.

pub use pathrep_circuit as circuit;
pub use pathrep_convopt as convopt;
pub use pathrep_core as core;
pub use pathrep_eval as eval;
pub use pathrep_linalg as linalg;
pub use pathrep_obs as obs;
pub use pathrep_par as par;
pub use pathrep_serve as serve;
pub use pathrep_ssta as ssta;
pub use pathrep_variation as variation;
