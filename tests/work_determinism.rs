//! The work-accounting determinism contract: `work.<kernel>.*` counters
//! are model-based operation counts, not measurements, so their totals
//! must be bit-identical at any `PATHREP_THREADS` setting and across
//! repeated runs — that is what lets the perf gate cross-check its t1/tN
//! axes and the accuracy gate byte-compare work facts between ledgers.
//!
//! Also the instrumentation drift guard: every kernel the attribution
//! plane knows about must report nonzero work on a seeded workload, so a
//! refactor that silently drops a `work::record` call fails here instead
//! of producing quietly incomplete attributions.

use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::eval::metrics::{evaluate, McConfig, MeasurementPlan};
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::BenchmarkSpec;
use pathrep::linalg::cholesky::Cholesky;
use pathrep::linalg::qr::Qr;
use pathrep::linalg::svd::Svd;
use pathrep::linalg::Matrix;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Pool size and the obs registry are both process-global; serialize.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` against a clean registry and returns the `work.*` counters it
/// deposited.
fn work_counters_of(f: impl Fn()) -> BTreeMap<String, u64> {
    pathrep::obs::set_enabled(true);
    pathrep::obs::reset();
    f();
    let snap = pathrep::obs::registry().snapshot();
    pathrep::obs::reset();
    snap.counters
        .iter()
        .filter(|c| c.name.starts_with("work."))
        .map(|c| (c.name.clone(), c.value))
        .collect()
}

fn test_matrix(m: usize, n: usize, phase: f64) -> Matrix {
    Matrix::from_fn(m, n, |i, j| {
        ((i * n + j) as f64 * 0.7310 + phase).sin() * 3.0 + 0.1 * (i as f64 - j as f64)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Work totals are invariant across worker counts and repetition for a
    /// matmul + pivoted-QR + SVD workload of property-chosen shape.
    #[test]
    fn work_counters_are_thread_count_invariant(
        m in 8usize..24,
        n in 4usize..12,
        phase in 0.0..6.0f64,
    ) {
        let workload = || {
            let a = test_matrix(m, n, phase);
            let b = test_matrix(n, m, phase + 1.0);
            let _ = a.matmul(&b).unwrap();
            let _ = Qr::compute_pivoted(&a).unwrap();
            let _ = Svd::compute(&a).unwrap();
        };
        let _guard = LOCK.lock().unwrap();
        pathrep::par::set_threads(1);
        let t1 = work_counters_of(workload);
        let t1_again = work_counters_of(workload);
        pathrep::par::set_threads(4);
        let t4 = work_counters_of(workload);
        pathrep::par::set_threads(0);
        prop_assert!(!t1.is_empty(), "workload must deposit work counters");
        prop_assert_eq!(&t1, &t1_again, "work counters drift across repeats");
        prop_assert_eq!(&t1, &t4, "work counters differ between 1 and 4 workers");
    }
}

/// Every kernel instrumented with `work::record` must report nonzero work
/// on a seeded end-to-end workload. Kernel list mirrors the attribution
/// plane's vocabulary; `decompose_segments` is integer bookkeeping (zero
/// flops by design) so its bytes are checked instead.
#[test]
fn every_instrumented_kernel_reports_work() {
    let _guard = LOCK.lock().unwrap();
    pathrep::par::set_threads(0);
    let work = work_counters_of(|| {
        let spec = BenchmarkSpec {
            name: "work-drift-guard",
            n_gates: 220,
            n_inputs: 18,
            n_outputs: 14,
            model_levels: 3,
            seed: 31,
            depth: None,
        };
        // prepare() exercises extract_paths, circuit_yield_mc,
        // decompose_segments, delay_model_build, and matmul/matvec.
        let pb = prepare(&spec, &PipelineConfig::default()).expect("pipeline prepares");
        let dm = &pb.delay_model;
        let sel = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))
            .expect("approx selection succeeds");
        let plan = MeasurementPlan::Paths {
            selected: &sel.selected,
            predictor: &sel.predictor,
        };
        let mc = McConfig {
            n_samples: 400,
            seed: 7,
            threads: 0,
        };
        evaluate(dm, &plan, &sel.remaining, &mc).expect("MC evaluation succeeds");
        // Direct kernels not guaranteed on the pipeline path.
        let a = test_matrix(20, 12, 0.4);
        let _ = Qr::compute_pivoted(&a).unwrap();
        let _ = Svd::compute(&a).unwrap();
        let n = 12;
        let spd = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64 + 1.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let chol = Cholesky::compute(&spd).unwrap();
        let rhs: Vec<f64> = (0..n).map(|k| (k as f64 * 0.3).cos()).collect();
        let _ = chol.solve(&rhs).unwrap();
    });
    for kernel in [
        "matmul",
        "matvec",
        "qr_factor",
        "svd",
        "cholesky",
        "mc_evaluate",
        "extract_paths",
        "circuit_yield_mc",
        "decompose_segments",
        "delay_model_build",
    ] {
        // decompose_segments models no flops; its traffic carries the fact.
        let facet = if kernel == "decompose_segments" {
            "bytes"
        } else {
            "flops"
        };
        let key = format!("work.{kernel}.{facet}");
        assert!(
            work.get(&key).copied().unwrap_or(0) > 0,
            "kernel `{kernel}` reported no work ({key} missing or zero); \
             did a refactor drop its work::record call? counters: {work:?}"
        );
    }
}
