//! Integration test: the full design-to-post-silicon flow on generated
//! circuits, checking the paper's headline guarantees end to end.

use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::core::hybrid::{hybrid_select, HybridConfig, HybridInputs};
use pathrep::eval::metrics::{evaluate, McConfig, MeasurementPlan};
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::BenchmarkSpec;

fn spec(seed: u64) -> BenchmarkSpec {
    BenchmarkSpec {
        name: "it",
        n_gates: 300,
        n_inputs: 24,
        n_outputs: 18,
        model_levels: 3,
        seed,
        depth: Some(10),
    }
}

fn mc() -> McConfig {
    McConfig {
        n_samples: 500,
        seed: 9,
        threads: 2,
    }
}

#[test]
fn approximate_selection_meets_its_tolerance_end_to_end() {
    let pb = prepare(&spec(1001), &PipelineConfig::default()).unwrap();
    let dm = &pb.delay_model;
    let epsilon = 0.05;
    let approx =
        approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(epsilon, pb.t_cons)).unwrap();
    // Analytic guarantee.
    assert!(approx.epsilon_r <= epsilon + 1e-12);
    // Monte-Carlo verification: e1 aggregates per-path maxima over 500
    // samples; with κ = 3 bounds it stays near/below ε.
    let m = evaluate(
        dm,
        &MeasurementPlan::Paths {
            selected: &approx.selected,
            predictor: &approx.predictor,
        },
        &approx.remaining,
        &mc(),
    )
    .unwrap();
    assert!(m.e1 < epsilon * 1.2, "MC e1 {} too large", m.e1);
    assert!(m.e2 < m.e1);
    // The selection is far below the exact rank — the effective-rank
    // phenomenon the paper is built on.
    assert!(approx.selected.len() < approx.rank);
}

#[test]
fn hybrid_selection_meets_epsilon_and_uses_segments() {
    let pb = prepare(
        &spec(1002),
        &PipelineConfig {
            t_cons_factor: 0.98,
            max_paths: 200,
            random_scale: 3.0,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let dm = &pb.delay_model;
    let inputs = HybridInputs {
        g: dm.g(),
        sigma: dm.sigma(),
        a: dm.a(),
        mu_segments: dm.mu_segments(),
        mu_paths: dm.mu_paths(),
    };
    let epsilon = 0.08;
    let sel = hybrid_select(&inputs, &HybridConfig::new(epsilon, 0.06, pb.t_cons)).unwrap();
    assert!(!sel.segments.is_empty(), "segments must carry the plan");
    assert!(sel.epsilon_r <= epsilon + 1e-9);
    // Hybrid must undercut the exact path selection.
    assert!(
        sel.measurement_count() < sel.exact_size,
        "hybrid {} vs exact {}",
        sel.measurement_count(),
        sel.exact_size
    );
    let m = evaluate(
        dm,
        &MeasurementPlan::Hybrid { selection: &sel },
        &sel.remaining,
        &mc(),
    )
    .unwrap();
    assert!(m.e1 < epsilon * 1.2, "MC e1 {} too large", m.e1);
}

#[test]
fn tighter_tolerance_costs_more_measurements_but_less_error() {
    let pb = prepare(&spec(1003), &PipelineConfig::default()).unwrap();
    let dm = &pb.delay_model;
    let loose =
        approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.08, pb.t_cons)).unwrap();
    let tight =
        approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.02, pb.t_cons)).unwrap();
    assert!(tight.selected.len() >= loose.selected.len());
    assert!(tight.epsilon_r <= loose.epsilon_r + 1e-12);
}

#[test]
fn higher_random_variation_needs_more_representatives() {
    // The paper's Figure-2 argument, end to end: scaling the independent
    // random extent grows the selection at fixed ε.
    let count = |scale: f64| {
        let pb = prepare(
            &spec(1004),
            &PipelineConfig {
                random_scale: scale,
                max_paths: 300,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        let dm = &pb.delay_model;
        approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))
            .unwrap()
            .selected
            .len()
    };
    let base = count(1.0);
    let scaled = count(4.0);
    assert!(
        scaled >= base,
        "random x4 should not shrink the selection ({base} -> {scaled})"
    );
}
