//! Integration test: Theorem 1 / Lemma 1 (Section 4.1) on generated
//! circuits across seeds — exact selection sizes and zero-error recovery.

use pathrep::core::exact::exact_select;
use pathrep::core::predictor::DEFAULT_KAPPA;
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::BenchmarkSpec;
use pathrep::linalg::svd::Svd;
use pathrep::variation::sampler::VariationSampler;

fn spec(seed: u64) -> BenchmarkSpec {
    BenchmarkSpec {
        name: "xr",
        n_gates: 260,
        n_inputs: 20,
        n_outputs: 16,
        model_levels: 3,
        seed,
        depth: Some(10),
    }
}

#[test]
fn lemma1_rank_bounded_by_segments_across_seeds() {
    for seed in [11, 22, 33] {
        let pb = prepare(&spec(seed), &PipelineConfig::default()).unwrap();
        let svd = Svd::compute(pb.delay_model.a()).unwrap();
        let rank = svd.rank(1e-9);
        assert!(
            rank <= pb.decomposition.segment_count(),
            "seed {seed}: rank {} > n_S {}",
            rank,
            pb.decomposition.segment_count()
        );
        assert!(rank <= pb.path_count());
    }
}

#[test]
fn exact_selection_recovers_all_paths_on_simulated_chips() {
    let pb = prepare(&spec(44), &PipelineConfig::default()).unwrap();
    let dm = &pb.delay_model;
    let sel = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA).unwrap();
    assert_eq!(sel.selected.len(), sel.rank);
    let mut sampler = VariationSampler::new(dm.variable_count(), 7);
    for _ in 0..20 {
        let x = sampler.draw();
        let d = dm.path_delays(&x).unwrap();
        let measured: Vec<f64> = sel.selected.iter().map(|&i| d[i]).collect();
        let pred = sel.predictor.predict(&measured).unwrap();
        for (k, &p) in sel.remaining.iter().enumerate() {
            let rel = (pred[k] - d[p]).abs() / d[p];
            assert!(rel < 1e-7, "path {p} relative error {rel}");
        }
    }
}

#[test]
fn representative_paths_span_the_row_space() {
    // Theorem 1's content: the selected rows span all rows of A.
    let pb = prepare(&spec(55), &PipelineConfig::default()).unwrap();
    let a = pb.delay_model.a();
    let sel = exact_select(a, pb.delay_model.mu_paths(), DEFAULT_KAPPA).unwrap();
    let ar = a.select_rows(&sel.selected);
    let stacked = a.vstack(&ar).unwrap();
    let r_stacked = Svd::compute(&stacked).unwrap().rank(1e-8);
    assert_eq!(
        r_stacked, sel.rank,
        "stacking A onto A_r must not increase the rank"
    );
}
