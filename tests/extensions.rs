//! Integration tests for the beyond-the-paper extensions: clustering
//! (§4.4), the greedy baseline, path criticality, measurement noise and
//! post-silicon diagnosis — all through the public facade.

use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::core::cluster::{clustered_select, ClusterConfig};
use pathrep::core::greedy::greedy_select;
use pathrep::core::{Diagnoser, MeasurementPredictor};
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::BenchmarkSpec;
use pathrep::ssta::criticality::monte_carlo_criticality;
use pathrep::variation::sampler::VariationSampler;

fn spec(seed: u64) -> BenchmarkSpec {
    BenchmarkSpec {
        name: "ext",
        n_gates: 280,
        n_inputs: 22,
        n_outputs: 16,
        model_levels: 3,
        seed,
        depth: Some(10),
    }
}

#[test]
fn clustered_and_global_selection_agree_on_quality() {
    let pb = prepare(
        &spec(7001),
        &PipelineConfig {
            max_paths: 250,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let dm = &pb.delay_model;
    let eps = 0.05;
    let global = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(eps, pb.t_cons)).unwrap();
    let clustered = clustered_select(
        dm.a(),
        dm.mu_paths(),
        dm.g(),
        &ClusterConfig::new(ApproxConfig::new(eps, pb.t_cons), 64),
    )
    .unwrap();
    assert!(clustered.epsilon_r <= eps + 1e-9);
    assert!(global.epsilon_r <= eps + 1e-9);
    // Clustering trades some selection size for decomposed solves.
    assert!(
        clustered.selected.len() <= 6 * global.selected.len().max(3),
        "clustered {} vs global {}",
        clustered.selected.len(),
        global.selected.len()
    );
}

#[test]
fn greedy_baseline_meets_tolerance_on_real_models() {
    let pb = prepare(
        &spec(7002),
        &PipelineConfig {
            max_paths: 200,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let dm = &pb.delay_model;
    let sel = greedy_select(dm.a(), dm.mu_paths(), 0.05, pb.t_cons, 3.0).unwrap();
    assert!(sel.epsilon_r <= 0.05 + 1e-9, "greedy eps_r {}", sel.epsilon_r);
}

#[test]
fn criticality_concentrates_on_extracted_ranking() {
    // The extractor returns paths most-critical-first (by yield loss); the
    // MC criticality mass should concentrate on the front of that list.
    let pb = prepare(
        &spec(7003),
        &PipelineConfig {
            max_paths: 150,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let dm = &pb.delay_model;
    let crit = monte_carlo_criticality(dm.a(), dm.mu_paths(), 3_000, 5);
    let front: f64 = crit.probability.iter().take(pb.path_count() / 4).sum();
    assert!(
        front > 0.5,
        "front quarter of the extraction carries only {front:.2} criticality"
    );
    let cover = crit.covering_set(0.95);
    assert!(cover.len() < pb.path_count());
}

#[test]
fn noisy_measurement_degrades_gracefully() {
    let pb = prepare(
        &spec(7004),
        &PipelineConfig {
            max_paths: 150,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let dm = &pb.delay_model;
    let sel = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons)).unwrap();
    let meas = dm.a().select_rows(&sel.selected);
    let meas_mu: Vec<f64> = sel.selected.iter().map(|&i| dm.mu_paths()[i]).collect();
    let target = dm.a().select_rows(&sel.remaining);
    let target_mu: Vec<f64> = sel.remaining.iter().map(|&i| dm.mu_paths()[i]).collect();
    let clean = MeasurementPredictor::new(&target, &target_mu, &meas, &meas_mu, 3.0).unwrap();
    let noisy =
        MeasurementPredictor::new_with_noise(&target, &target_mu, &meas, &meas_mu, 3.0, 5.0)
            .unwrap();
    // Noise hurts, but bounded: the noise-aware predictor is still the MMSE
    // one, so its analytic stds are larger yet finite.
    for (c, n) in clean.stds().iter().zip(noisy.stds().iter()) {
        assert!(n >= c);
        assert!(n.is_finite());
    }
}

#[test]
fn diagnosis_flags_injected_regional_excursion() {
    use pathrep::variation::model::{Parameter, Variable};
    let pb = prepare(
        &spec(7005),
        &PipelineConfig {
            max_paths: 200,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let dm = &pb.delay_model;
    let sel = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.03, pb.t_cons)).unwrap();
    let meas = dm.a().select_rows(&sel.selected);
    let meas_mu: Vec<f64> = sel.selected.iter().map(|&i| dm.mu_paths()[i]).collect();
    let diagnoser = Diagnoser::new(&meas, &meas_mu).unwrap();
    let d2d = dm
        .variables()
        .iter()
        .position(|v| {
            matches!(
                v,
                Variable::Region {
                    param: Parameter::Leff,
                    region_flat: 0
                }
            )
        })
        .expect("die-to-die Leff always present");
    let mut sampler = VariationSampler::new(dm.variable_count(), 17);
    let mut x = sampler.draw();
    for v in x.iter_mut() {
        *v *= 0.2;
    }
    x[d2d] += 5.0;
    let d_all = dm.path_delays(&x).unwrap();
    let measured: Vec<f64> = sel.selected.iter().map(|&i| d_all[i]).collect();
    let diag = diagnoser.diagnose(&measured).unwrap();
    // The injected region must appear among the top suspects.
    let suspects = diag.suspects(1.0, 0.2);
    assert!(
        suspects.iter().take(3).any(|&(j, _)| j == d2d),
        "injected excursion missing from top suspects: {suspects:?}"
    );
}
