//! Integration test: every stage of the framework is a pure function of
//! its seeds — a hard requirement for a validation tool.

use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::eval::metrics::{evaluate, McConfig, MeasurementPlan};
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::BenchmarkSpec;

fn spec() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "repro",
        n_gates: 240,
        n_inputs: 20,
        n_outputs: 14,
        model_levels: 3,
        seed: 2024,
        depth: Some(10),
    }
}

#[test]
fn full_flow_is_bit_reproducible() {
    let run = || {
        let pb = prepare(&spec(), &PipelineConfig::default()).unwrap();
        let dm = &pb.delay_model;
        let approx =
            approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons)).unwrap();
        let m = evaluate(
            dm,
            &MeasurementPlan::Paths {
                selected: &approx.selected,
                predictor: &approx.predictor,
            },
            &approx.remaining,
            &McConfig {
                n_samples: 200,
                seed: 3,
                threads: 2,
            },
        )
        .unwrap();
        (approx.selected, approx.epsilon_r, m.e1, m.e2)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "selection must be deterministic");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn different_circuit_seeds_give_different_selections() {
    let sel = |seed: u64| {
        let s = BenchmarkSpec { seed, ..spec() };
        let pb = prepare(&s, &PipelineConfig::default()).unwrap();
        let dm = &pb.delay_model;
        approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))
            .unwrap()
            .rank
    };
    // Ranks coinciding for all three seeds would be suspicious (not
    // impossible, but these seeds were checked to differ).
    let ranks = [sel(2024), sel(2025), sel(2026)];
    assert!(
        ranks[0] != ranks[1] || ranks[1] != ranks[2],
        "all ranks equal: {ranks:?}"
    );
}
