//! The serving determinism contract: predictions served by the daemon —
//! whether micro-batched (`predict_batch`) or coalesced from interleaved
//! concurrent `predict` requests — must be byte-identical to the offline
//! [`MeasurementPredictor::predict`], at any `PATHREP_THREADS` setting.
//! The batcher may group requests arbitrarily, so this is a real property:
//! grouping must never change a single output bit.
//!
//! The pool size is process-global state; every case serializes on one
//! mutex and restores the environment-resolved default before returning.

use pathrep::serve::demo::{build_quickstart_model, DemoModel};
use pathrep::serve::{Client, Server, ServerConfig};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};

static POOL_LOCK: Mutex<()> = Mutex::new(());

fn demo() -> &'static DemoModel {
    static DEMO: OnceLock<DemoModel> = OnceLock::new();
    DEMO.get_or_init(|| build_quickstart_model().expect("quickstart model builds"))
}

fn artifact_path() -> &'static str {
    static PATH: OnceLock<String> = OnceLock::new();
    PATH.get_or_init(|| {
        let mut p = std::env::temp_dir();
        p.push(format!("pathrep_serve_det_{}.artifact", std::process::id()));
        let p = p.to_string_lossy().into_owned();
        demo().artifact.save(&p).expect("artifact saves");
        p
    })
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_max: 4, // small, so multi-request batches actually form
        queue_cap: 16,
        cache_cap: 2,
        ..ServerConfig::default()
    }
}

/// Serves `chips` through a fresh daemon — once batched, once as
/// interleaved concurrent predicts from `workers` clients — and returns
/// (batched rows, per-worker predict rows).
fn serve_round(chips: &[Vec<f64>], workers: usize) -> (Vec<Vec<f64>>, Vec<Vec<Vec<f64>>>) {
    let handle = Server::bind(test_config())
        .expect("bind ephemeral port")
        .spawn()
        .expect("server spawns");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    let model = client
        .load_model(artifact_path())
        .expect("daemon loads artifact")
        .model;

    let batched = client.predict_batch(&model, chips).expect("batch predicts");

    let chips: Arc<Vec<Vec<f64>>> = Arc::new(chips.to_vec());
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let chips = Arc::clone(&chips);
            let model = model.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("worker connects");
                chips
                    .iter()
                    .map(|m| client.predict(&model, m).expect("predict"))
                    .collect::<Vec<Vec<f64>>>()
            })
        })
        .collect();
    let per_worker: Vec<Vec<Vec<f64>>> = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread succeeds"))
        .collect();

    client.shutdown().expect("shutdown");
    let stats = handle.join();
    assert_eq!(stats.errors, 0, "serving must be error-free: {stats:?}");
    (batched, per_worker)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x:?} != {y:?}");
    }
}

/// The property, checked at one pool size: served == offline, bit for bit.
fn check_at_current_threads(offsets: &[f64], workers: usize) {
    let demo = demo();
    let mu = demo.artifact.predictor.meas_mu().to_vec();
    let chips: Vec<Vec<f64>> = offsets
        .iter()
        .map(|&d| mu.iter().map(|&m| m + d).collect())
        .collect();
    let offline: Vec<Vec<f64>> = chips
        .iter()
        .map(|m| demo.artifact.predictor.predict(m).expect("offline predicts"))
        .collect();

    let (batched, per_worker) = serve_round(&chips, workers);
    for (k, (got, want)) in batched.iter().zip(offline.iter()).enumerate() {
        assert_bits_eq(got, want, &format!("batched chip {k}"));
    }
    for (w, rows) in per_worker.iter().enumerate() {
        for (k, (got, want)) in rows.iter().zip(offline.iter()).enumerate() {
            assert_bits_eq(got, want, &format!("worker {w} chip {k}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn served_predictions_match_offline_at_1_and_4_threads(
        offsets in proptest::collection::vec(-12.0..12.0f64, 3..9),
    ) {
        let _guard = POOL_LOCK.lock().unwrap();
        pathrep::par::set_threads(1);
        check_at_current_threads(&offsets, 4);
        pathrep::par::set_threads(4);
        check_at_current_threads(&offsets, 4);
        pathrep::par::set_threads(0);
    }
}

/// Non-property smoke: real measured chips (correlated process draws, not
/// uniform offsets) through the same bar, once per pool size.
#[test]
fn measured_chips_serve_bit_identically() {
    let chips = demo().measure_chips(10, 5).expect("chips fabricate");
    let offline: Vec<Vec<f64>> = chips
        .iter()
        .map(|m| demo().artifact.predictor.predict(m).expect("offline"))
        .collect();
    let _guard = POOL_LOCK.lock().unwrap();
    for threads in [1, 4] {
        pathrep::par::set_threads(threads);
        let (batched, per_worker) = serve_round(&chips, 5);
        for (k, (got, want)) in batched.iter().zip(offline.iter()).enumerate() {
            assert_bits_eq(got, want, &format!("t{threads} batched chip {k}"));
        }
        for (w, rows) in per_worker.iter().enumerate() {
            for (k, (got, want)) in rows.iter().zip(offline.iter()).enumerate() {
                assert_bits_eq(got, want, &format!("t{threads} worker {w} chip {k}"));
            }
        }
    }
    pathrep::par::set_threads(0);
}
