//! The pathrep-par determinism contract, end to end: every parallel kernel
//! must produce *bit-identical* results at any worker count, because the
//! accuracy gate byte-compares numerical-health ledgers across
//! `PATHREP_THREADS` settings and the perf gate cross-checks operation
//! counters between its two thread axes.
//!
//! The pool size is process-global state, so every test serializes on one
//! mutex and restores the environment-resolved default before returning.

use pathrep::core::approx::{approx_select, ApproxConfig};
use pathrep::eval::metrics::{evaluate, McConfig, McMetrics, MeasurementPlan};
use pathrep::eval::pipeline::{prepare, PipelineConfig};
use pathrep::eval::suite::BenchmarkSpec;
use pathrep::linalg::qr::Qr;
use pathrep::linalg::svd::Svd;
use pathrep::linalg::Matrix;
use std::sync::Mutex;

static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` twice — once with the pool pinned to 1 worker, once with 4 —
/// and returns both results. Restores the default pool size afterwards.
fn at_1_and_4<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = POOL_LOCK.lock().unwrap();
    pathrep::par::set_threads(1);
    let sequential = f();
    pathrep::par::set_threads(4);
    let parallel = f();
    pathrep::par::set_threads(0);
    (sequential, parallel)
}

/// Bit-exact comparison: `==` on f64 would already reject any reordering,
/// but comparing the raw bits also distinguishes `-0.0` from `0.0` and
/// makes the failure message unambiguous.
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x:?} (t1) != {y:?} (t4)"
        );
    }
}

fn test_matrix(m: usize, n: usize, phase: f64) -> Matrix {
    Matrix::from_fn(m, n, |i, j| {
        ((i * n + j) as f64 * 0.7310 + phase).sin() * 3.0 + 0.1 * (i as f64 - j as f64)
    })
}

#[test]
fn matmul_and_matvec_are_thread_count_invariant() {
    let a = test_matrix(37, 29, 0.0);
    let b = test_matrix(29, 41, 1.3);
    let x: Vec<f64> = (0..29).map(|k| ((k as f64) * 0.31).cos()).collect();
    let ((c1, v1), (c4, v4)) = at_1_and_4(|| {
        let c = a.matmul(&b).unwrap();
        let v = a.matvec(&x).unwrap();
        (c, v)
    });
    assert_bits_eq(c1.as_slice(), c4.as_slice(), "matmul");
    assert_bits_eq(&v1, &v4, "matvec");
}

#[test]
fn pivoted_qr_is_thread_count_invariant() {
    let a = test_matrix(40, 24, 2.1);
    let rhs: Vec<f64> = (0..40).map(|k| ((k as f64) * 0.17).sin() * 5.0).collect();
    let (s, p) = at_1_and_4(|| {
        let qr = Qr::compute_pivoted(&a).unwrap();
        let sol = qr.solve_least_squares(&rhs).unwrap();
        (qr.r(), qr.q_thin(), qr.perm().to_vec(), sol)
    });
    assert_eq!(s.2, p.2, "pivot order must not depend on the worker count");
    assert_bits_eq(s.0.as_slice(), p.0.as_slice(), "qr.r");
    assert_bits_eq(s.1.as_slice(), p.1.as_slice(), "qr.q_thin");
    assert_bits_eq(&s.3, &p.3, "qr.solve_least_squares");
}

#[test]
fn svd_is_thread_count_invariant() {
    let a = test_matrix(35, 22, 4.2);
    let (s, p) = at_1_and_4(|| {
        let svd = Svd::compute(&a).unwrap();
        (
            svd.singular_values().to_vec(),
            svd.u().clone(),
            svd.v().clone(),
        )
    });
    assert_bits_eq(&s.0, &p.0, "singular values");
    assert_bits_eq(s.1.as_slice(), p.1.as_slice(), "svd.u");
    assert_bits_eq(s.2.as_slice(), p.2.as_slice(), "svd.v");
}

#[test]
fn monte_carlo_evaluation_is_thread_count_invariant() {
    let spec = BenchmarkSpec {
        name: "par-determinism",
        n_gates: 220,
        n_inputs: 18,
        n_outputs: 14,
        model_levels: 3,
        seed: 31,
        depth: None,
    };
    let pb = prepare(&spec, &PipelineConfig::default()).expect("pipeline prepares");
    let dm = &pb.delay_model;
    let sel = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))
        .expect("approx selection succeeds");
    let plan = MeasurementPlan::Paths {
        selected: &sel.selected,
        predictor: &sel.predictor,
    };
    // 700 samples = two full 256-chunks plus a ragged tail, so the chunked
    // split itself (not just a single chunk) is what gets compared.
    let mc = McConfig {
        n_samples: 700,
        seed: 7,
        threads: 0,
    };
    let (s, p): (McMetrics, McMetrics) =
        at_1_and_4(|| evaluate(dm, &plan, &sel.remaining, &mc).expect("MC evaluation succeeds"));
    assert_eq!(s.e1.to_bits(), p.e1.to_bits(), "e1 differs across threads");
    assert_eq!(s.e2.to_bits(), p.e2.to_bits(), "e2 differs across threads");
    assert_bits_eq(&s.per_path_max, &p.per_path_max, "per_path_max");
    assert_bits_eq(&s.per_path_avg, &p.per_path_avg, "per_path_avg");
}

#[test]
fn explicit_mc_thread_override_matches_global_pool() {
    let spec = BenchmarkSpec {
        name: "par-override",
        n_gates: 220,
        n_inputs: 18,
        n_outputs: 14,
        model_levels: 3,
        seed: 31,
        depth: None,
    };
    let pb = prepare(&spec, &PipelineConfig::default()).expect("pipeline prepares");
    let dm = &pb.delay_model;
    let sel = approx_select(dm.a(), dm.mu_paths(), &ApproxConfig::new(0.05, pb.t_cons))
        .expect("approx selection succeeds");
    let plan = MeasurementPlan::Paths {
        selected: &sel.selected,
        predictor: &sel.predictor,
    };
    let _guard = POOL_LOCK.lock().unwrap();
    let run = |threads: usize| {
        let mc = McConfig {
            n_samples: 600,
            seed: 11,
            threads,
        };
        evaluate(dm, &plan, &sel.remaining, &mc).expect("MC evaluation succeeds")
    };
    let base = run(1);
    for threads in [2, 3, 5] {
        let other = run(threads);
        assert_eq!(base, other, "threads={threads} changed the MC metrics");
    }
}
