//! Integration test: the paper's Figure-1 motivating example through the
//! public API of the whole workspace.

use pathrep::circuit::cell::{CellKind, CellLibrary};
use pathrep::circuit::generator::PlacedCircuit;
use pathrep::circuit::netlist::{GateId, Netlist, Signal};
use pathrep::circuit::paths::{decompose_into_segments, Path};
use pathrep::circuit::placement::Placement;
use pathrep::core::exact::exact_select;
use pathrep::core::predictor::DEFAULT_KAPPA;
use pathrep::variation::model::VariationModel;
use pathrep::variation::sampler::VariationSampler;
use pathrep::variation::sensitivity::DelayModel;

#[allow(clippy::vec_init_then_push)] // sequential ids read during construction
fn figure1() -> (PlacedCircuit, Vec<Path>) {
    let mut nl = Netlist::new(2);
    let mut g = Vec::<GateId>::new();
    g.push(nl.add_gate(CellKind::Buf, vec![Signal::Input(0)]).unwrap()); // G1
    g.push(nl.add_gate(CellKind::Buf, vec![Signal::Input(1)]).unwrap()); // G2
    g.push(nl.add_gate(CellKind::Inv, vec![Signal::Gate(g[0])]).unwrap()); // G3
    g.push(nl.add_gate(CellKind::Inv, vec![Signal::Gate(g[1])]).unwrap()); // G4
    g.push(
        nl.add_gate(CellKind::Nand2, vec![Signal::Gate(g[2]), Signal::Gate(g[3])])
            .unwrap(),
    ); // G5
    g.push(nl.add_gate(CellKind::Inv, vec![Signal::Gate(g[4])]).unwrap()); // G6
    g.push(nl.add_gate(CellKind::Inv, vec![Signal::Gate(g[4])]).unwrap()); // G7
    g.push(nl.add_gate(CellKind::Buf, vec![Signal::Gate(g[5])]).unwrap()); // G8
    g.push(nl.add_gate(CellKind::Buf, vec![Signal::Gate(g[6])]).unwrap()); // G9
    nl.mark_output(g[7]).unwrap();
    nl.mark_output(g[8]).unwrap();
    let circuit = PlacedCircuit::from_parts(
        nl,
        Placement::new(vec![(0.4, 0.6); 9]),
        CellLibrary::synthetic_90nm(),
    );
    let paths = vec![
        Path::new(vec![g[0], g[2], g[4], g[6], g[8]]).unwrap(),
        Path::new(vec![g[0], g[2], g[4], g[5], g[7]]).unwrap(),
        Path::new(vec![g[1], g[3], g[4], g[5], g[7]]).unwrap(),
        Path::new(vec![g[1], g[3], g[4], g[6], g[8]]).unwrap(),
    ];
    (circuit, paths)
}

#[test]
fn three_paths_predict_the_fourth_exactly() {
    let (circuit, paths) = figure1();
    let dec = decompose_into_segments(&paths).unwrap();
    assert_eq!(dec.segment_count(), 4);
    let model = VariationModel::three_level();
    let dm = DelayModel::build(&circuit, &paths, &dec, &model).unwrap();

    let sel = exact_select(dm.a(), dm.mu_paths(), DEFAULT_KAPPA).unwrap();
    assert_eq!(sel.rank, 3, "Figure 1's A has rank 3");
    assert_eq!(sel.selected.len(), 3);
    assert_eq!(sel.remaining.len(), 1);

    // Zero-error prediction on fabricated chips.
    let mut sampler = VariationSampler::new(dm.variable_count(), 1);
    for _ in 0..50 {
        let x = sampler.draw();
        let d = dm.path_delays(&x).unwrap();
        let measured: Vec<f64> = sel.selected.iter().map(|&i| d[i]).collect();
        let pred = sel.predictor.predict(&measured).unwrap();
        assert!((pred[0] - d[sel.remaining[0]]).abs() < 1e-8);
        // The paper's identity, written for path ordering p1..p4.
        assert!((d[0] - (d[1] - d[2] + d[3])).abs() < 1e-9);
    }
}

#[test]
fn rank_is_bounded_by_segment_count() {
    // Lemma 1 on the motivating example: rank(A) ≤ n_S.
    let (circuit, paths) = figure1();
    let dec = decompose_into_segments(&paths).unwrap();
    let model = VariationModel::three_level();
    let dm = DelayModel::build(&circuit, &paths, &dec, &model).unwrap();
    let svd = pathrep::linalg::svd::Svd::compute(dm.a()).unwrap();
    assert!(svd.rank(1e-9) <= dec.segment_count());
}
