#!/usr/bin/env bash
# Serving soak gate: build the quickstart artifact, start the pathrep-serve
# daemon on an ephemeral port with full telemetry, hammer it with a
# concurrent loadgen that bit-compares every served prediction against the
# offline predictor, then shut it down cleanly and check the evidence:
#   * loadgen reports zero mismatches and zero dropped/errored requests,
#   * the daemon's own error counter is zero,
#   * the daemon exits 0 after a clean drain,
#   * the Prometheus export carries the pathrep_serve_* families,
#   * the live obs-http plane (PATHREP_OBS_HTTP) answers /healthz and
#     serves the pathrep_serve_* families on /metrics DURING the soak,
#   * /slo.json evaluates the PATHREP_OBS_SLO objective (burn rate per
#     sliding window) mid-soak,
#   * the ledger carries the serve/model_load record and pathrep-doctor
#     accepts it (unknown-kind records are reported, never fatal).
#
# Every non-self-test run soaks the daemon twice: once over the JSON
# protocol and once over the compact binary protocol (loadgen --binary),
# both bit-compared against the offline predictor.
#
# Usage: scripts/serve_gate.sh [--self-test] [--sharded] [--clients N] [--requests M]
#   --self-test  inject a deliberate expected-value mismatch into the
#                loadgen and require the byte-identity check to FAIL
#                (proves the gate trips).
#   --sharded    run the daemon with PATHREP_SERVE_SHARDS=4 (the reactor
#                runtime): same soaks, same byte-identity invariant, plus
#                per-shard metric families in the Prometheus export.
set -euo pipefail
cd "$(dirname "$0")/.."

self_test=0
sharded=0
clients=8
requests=50
while [ $# -gt 0 ]; do
    case "$1" in
        --self-test) self_test=1; shift ;;
        --sharded)   sharded=1; shift ;;
        --clients)   clients="$2"; shift 2 ;;
        --requests)  requests="$2"; shift 2 ;;
        *) echo "serve_gate.sh: unknown flag $1" >&2; exit 2 ;;
    esac
done

shards=0
[ "$sharded" = 1 ] && shards=4

WORK="${TMPDIR:-/tmp}/pathrep_serve_gate_$$"
mkdir -p "$WORK"
ARTIFACT="$WORK/quickstart.artifact"
PROM="$WORK/serve.prom"
LEDGER="$WORK/serve_ledger.jsonl"
SERVE_LOG="$WORK/daemon.log"
serve_pid=""
cleanup() {
    if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
        kill "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -p pathrep-serve --bin pathrep-serve --bin pathrep-client
cargo build --release -p pathrep-bench --bin pathrep-doctor

SERVE=./target/release/pathrep-serve
CLIENT=./target/release/pathrep-client
DOCTOR=./target/release/pathrep-doctor

"$CLIENT" build-artifact "$ARTIFACT"

echo "serve_gate.sh: starting daemon on an ephemeral port (shards=$shards)"
PATHREP_OBS=1 PATHREP_OBS_PROM="$PROM" PATHREP_OBS_LEDGER="$LEDGER" \
    PATHREP_OBS_HTTP=127.0.0.1:0 \
    PATHREP_OBS_SLO="serve.request_ns:p999<250ms:99.9" \
    PATHREP_SERVE_SHARDS="$shards" \
    PATHREP_SERVE_ADDR=127.0.0.1:0 "$SERVE" > "$SERVE_LOG" 2>&1 &
serve_pid=$!

# The daemon prints `pathrep-serve: listening on HOST:PORT (…)` once bound.
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^pathrep-serve: listening on \([0-9.:]*\) .*$/\1/p' "$SERVE_LOG" | head -1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "serve_gate.sh: FAIL — daemon died before binding:" >&2
        cat "$SERVE_LOG" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve_gate.sh: FAIL — daemon never printed its address" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi
echo "serve_gate.sh: daemon is listening on $addr"
if [ "$sharded" = 1 ] && ! grep -q 'listening on .*shards=4' "$SERVE_LOG"; then
    echo "serve_gate.sh: FAIL — daemon did not report the requested 4 shards:" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi

# The live telemetry plane prints its own address on a second line.
obs_addr="$(sed -n 's/^pathrep-serve: obs http listening on \([0-9.:]*\)$/\1/p' "$SERVE_LOG" | head -1)"
if [ -z "$obs_addr" ]; then
    echo "serve_gate.sh: FAIL — daemon never printed its obs http address" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi
echo "serve_gate.sh: obs http plane is listening on $obs_addr"

loadgen_flags=(--clients "$clients" --requests "$requests")
if [ "$self_test" = 1 ]; then
    echo "serve_gate.sh: self-test — injecting an expected-value mismatch; loadgen must FAIL"
    if "$CLIENT" loadgen "$addr" "$ARTIFACT" "${loadgen_flags[@]}" --inject-mismatch; then
        echo "serve_gate.sh: SELF-TEST FAILED — injected mismatch was not caught" >&2
        exit 1
    fi
    "$CLIENT" shutdown "$addr"
    wait "$serve_pid"
    serve_pid=""
    echo "serve_gate.sh: self-test OK — the byte-identity check trips on an injected mismatch"
    exit 0
fi

echo "serve_gate.sh: soaking with $clients concurrent clients x $requests requests"
"$CLIENT" loadgen "$addr" "$ARTIFACT" "${loadgen_flags[@]}" &
loadgen_pid=$!

# Scrape the live plane MID-SOAK: the endpoints must answer while the
# daemon is under concurrent load, and scrapes must not perturb it.
if [ "$("$CLIENT" scrape "$obs_addr" /healthz)" != "ok" ]; then
    echo "serve_gate.sh: FAIL — /healthz did not answer ok during the soak" >&2
    kill "$loadgen_pid" 2>/dev/null || true
    exit 1
fi
# Poll until the first request lands — the scrape races the loadgen's
# opening load_model, and an empty registry has no serve families yet.
scraped=0
for _ in $(seq 1 50); do
    if "$CLIENT" scrape "$obs_addr" /metrics | grep -q '^pathrep_serve_requests '; then
        scraped=1
        break
    fi
    sleep 0.1
done
if [ "$scraped" != 1 ]; then
    echo "serve_gate.sh: FAIL — live /metrics never showed pathrep_serve_requests mid-soak" >&2
    kill "$loadgen_pid" 2>/dev/null || true
    exit 1
fi
echo "serve_gate.sh: live /healthz + /metrics answered mid-soak"

# The SLO plane must evaluate the declared objective mid-soak. The 1 Hz
# window sampler needs a tick before the first window exists, so poll.
slo_seen=0
for _ in $(seq 1 50); do
    if "$CLIENT" slo "$obs_addr" | grep -q '^pathrep-client: slo serve\.request_ns .*burn='; then
        slo_seen=1
        break
    fi
    sleep 0.1
done
if [ "$slo_seen" != 1 ]; then
    echo "serve_gate.sh: FAIL — /slo.json never evaluated the declared objective mid-soak" >&2
    "$CLIENT" slo "$obs_addr" >&2 || true
    exit 1
fi
echo "serve_gate.sh: live /slo.json evaluated the declared objective mid-soak"

if ! wait "$loadgen_pid"; then
    echo "serve_gate.sh: FAIL — loadgen reported mismatches or errors" >&2
    exit 1
fi

# Second soak over the compact binary protocol: same concurrent clients,
# same per-prediction bit-compare against the offline predictor. Binary
# and JSON clients have now interleaved on one daemon lifetime.
echo "serve_gate.sh: binary-protocol soak with $clients concurrent clients x $requests requests"
if ! "$CLIENT" loadgen "$addr" "$ARTIFACT" "${loadgen_flags[@]}" --binary; then
    echo "serve_gate.sh: FAIL — binary-protocol loadgen reported mismatches or errors" >&2
    exit 1
fi

# A short fixed-rate pass: latencies measured from the intended arrival
# schedule (coordinated-omission-safe), p50/p99/p999 from the HDR buckets.
echo "serve_gate.sh: CO-safe fixed-rate loadgen pass"
rate_out="$("$CLIENT" loadgen "$addr" "$ARTIFACT" --clients 2 --requests 25 --rate 400)"
printf '%s\n' "$rate_out" | grep '^pathrep-client: loadgen latency' || true
if ! printf '%s\n' "$rate_out" | grep -q 'coordinated-omission-safe'; then
    echo "serve_gate.sh: FAIL — rate-mode loadgen did not report CO-safe percentiles" >&2
    printf '%s\n' "$rate_out" >&2
    exit 1
fi

stats="$("$CLIENT" stats "$addr")"
echo "serve_gate.sh: daemon stats: $stats"
case "$stats" in
    *" errors=0 "*) ;;
    *)
        echo "serve_gate.sh: FAIL — daemon reports request errors" >&2
        exit 1
        ;;
esac

"$CLIENT" shutdown "$addr"
if ! wait "$serve_pid"; then
    echo "serve_gate.sh: FAIL — daemon exited non-zero after shutdown:" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi
serve_pid=""
echo "serve_gate.sh: daemon drained and exited cleanly"

if ! grep -q '^pathrep_serve_requests ' "$PROM"; then
    echo "serve_gate.sh: FAIL — Prometheus export lacks pathrep_serve_* families" >&2
    cat "$PROM" >&2
    exit 1
fi
if ! grep -q '^pathrep_serve_request_ns_count ' "$PROM"; then
    echo "serve_gate.sh: FAIL — Prometheus export lacks the serve.request_ns HDR histogram" >&2
    cat "$PROM" >&2
    exit 1
fi
if [ "$sharded" = 1 ] && ! grep -q '^pathrep_serve_shard_requests ' "$PROM"; then
    echo "serve_gate.sh: FAIL — sharded run's Prometheus export lacks pathrep_serve_shard_* families" >&2
    cat "$PROM" >&2
    exit 1
fi
if ! grep -q '"stage":"serve","name":"model_load"' "$LEDGER"; then
    echo "serve_gate.sh: FAIL — ledger lacks the serve/model_load record" >&2
    cat "$LEDGER" >&2
    exit 1
fi
# The doctor must tolerate (and surface) the serve record kinds.
doctor_out="$("$DOCTOR" "$LEDGER")"
if ! printf '%s\n' "$doctor_out" | grep -q 'serve/model_load'; then
    echo "serve_gate.sh: FAIL — pathrep-doctor silently dropped serve/model_load:" >&2
    printf '%s\n' "$doctor_out" >&2
    exit 1
fi
echo "serve_gate.sh: PASS — $((2 * clients * requests)) predictions (json + binary, shards=$shards) byte-identical, telemetry and ledger complete"
