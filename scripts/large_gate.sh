#!/usr/bin/env bash
# Large-instance scale gate: runs each `*_large` sparse/sketched workload
# (120k-gate netlist, past the dense ceiling) under a per-workload wall
# timeout, then checks sketch-vs-dense parity on the small instance via
# `pathrep-doctor --sketch-parity`. A hung sketch pipeline fails the gate
# with `timeout`'s exit 124 instead of wedging CI.
#
# Reports land in a temp dir (not the repo root) so the large matrix never
# perturbs the BENCH_<k>.json numbering the default perf gate uses.
#
# Usage: scripts/large_gate.sh
#   PATHREP_LARGE_TIMEOUT  per-workload timeout in seconds (default 420)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p pathrep-bench --bin perf_gate --bin pathrep-doctor

limit="${PATHREP_LARGE_TIMEOUT:-420}"
outdir="$(mktemp -d "${TMPDIR:-/tmp}/pathrep_large.XXXXXX")"
trap 'rm -rf "$outdir"' EXIT

for w in pipeline_large exact_large approx_large; do
    echo "large_gate.sh: $w (timeout ${limit}s)"
    if ! timeout "$limit" ./target/release/perf_gate \
        --include-large --only "$w" --out "$outdir/BENCH_$w.json"; then
        rc=$?
        if [ "$rc" -eq 124 ]; then
            echo "large_gate.sh: FAIL — $w exceeded ${limit}s" >&2
        else
            echo "large_gate.sh: FAIL — $w exited $rc" >&2
        fi
        exit 1
    fi
done

echo "large_gate.sh: sketch-vs-dense parity"
./target/release/pathrep-doctor --sketch-parity

echo "large_gate.sh: OK — large workloads within ${limit}s and parity holds"
