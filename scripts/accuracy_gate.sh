#!/usr/bin/env bash
# Accuracy-regression gate: run the seeded quickstart workload with a
# fresh numerical-health ledger and doctor-diff it against the committed
# golden ledger. Exits non-zero when any health threshold is breached
# (ε_r growth, e1 growth, condition-number growth, effective-rank drop,
# new ADMM stalls, or a stage that stopped writing records).
#
# The workload runs twice — PATHREP_THREADS=1 and PATHREP_THREADS=4 —
# and both candidate ledgers are doctor-diffed against the golden, then
# byte-compared against each other: the pathrep-par kernels must produce
# bit-identical numbers at every worker count.
#
# Usage: scripts/accuracy_gate.sh [--self-test] [extra pathrep-doctor flags…]
#   --self-test  inject a synthetic rank-drop regression and require the
#                gate to FAIL (proves the gate trips).
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN="golden/quickstart_ledger.jsonl"
CANDIDATE="${TMPDIR:-/tmp}/pathrep_accuracy_gate_$$.jsonl"
CANDIDATE_T4="${TMPDIR:-/tmp}/pathrep_accuracy_gate_t4_$$.jsonl"
trap 'rm -f "$CANDIDATE" "$CANDIDATE_T4"' EXIT

self_test=0
doctor_flags=()
for arg in "$@"; do
    if [ "$arg" = "--self-test" ]; then
        self_test=1
    else
        doctor_flags+=("$arg")
    fi
done

cargo build --release --example quickstart
cargo build --release -p pathrep-bench --bin pathrep-doctor

if [ ! -f "$GOLDEN" ]; then
    echo "accuracy_gate.sh: no golden ledger — seeding $GOLDEN"
    mkdir -p "$(dirname "$GOLDEN")"
    PATHREP_THREADS=1 PATHREP_OBS_LEDGER="$GOLDEN" PATHREP_OBS_RUN_ID=golden \
        ./target/release/examples/quickstart > /dev/null
    echo "accuracy_gate.sh: seeded; commit $GOLDEN to enable the gate"
    exit 0
fi

echo "accuracy_gate.sh: collecting candidate ledger (PATHREP_THREADS=1)"
PATHREP_THREADS=1 PATHREP_OBS_LEDGER="$CANDIDATE" PATHREP_OBS_RUN_ID=candidate \
    ./target/release/examples/quickstart > /dev/null

echo "accuracy_gate.sh: collecting candidate ledger (PATHREP_THREADS=4)"
PATHREP_THREADS=4 PATHREP_OBS_LEDGER="$CANDIDATE_T4" PATHREP_OBS_RUN_ID=candidate \
    ./target/release/examples/quickstart > /dev/null

if ! cmp -s "$CANDIDATE" "$CANDIDATE_T4"; then
    echo "accuracy_gate.sh: FAIL — ledgers differ between PATHREP_THREADS=1 and 4;" >&2
    echo "a pathrep-par kernel broke the bit-determinism contract:" >&2
    diff "$CANDIDATE" "$CANDIDATE_T4" | head -20 >&2 || true
    exit 1
fi
echo "accuracy_gate.sh: thread-count determinism OK (ledgers byte-identical at 1 and 4 workers)"

# Work-accounting cross-check: the model-based work facts must be present
# and byte-identical across worker counts on their own — a sharper error
# than the whole-ledger cmp when only the work plane drifts, and a guard
# against the facts silently disappearing from the ledger records.
work_t1="$(grep -o '"work_flops":[0-9]*' "$CANDIDATE" || true)"
work_t4="$(grep -o '"work_flops":[0-9]*' "$CANDIDATE_T4" || true)"
if [ -z "$work_t1" ]; then
    echo "accuracy_gate.sh: FAIL — candidate ledger carries no work_flops facts;" >&2
    echo "kernel work accounting stopped stamping ledger records" >&2
    exit 1
fi
if [ "$work_t1" != "$work_t4" ]; then
    echo "accuracy_gate.sh: FAIL — work facts differ between PATHREP_THREADS=1 and 4" >&2
    diff <(printf '%s\n' "$work_t1") <(printf '%s\n' "$work_t4") | head -10 >&2 || true
    exit 1
fi
work_n="$(printf '%s\n' "$work_t1" | wc -l | tr -d ' ')"
echo "accuracy_gate.sh: work accounting OK ($work_n work facts identical at 1 and 4 workers)"

if [ "$self_test" = 1 ]; then
    echo "accuracy_gate.sh: self-test — injecting a rank-drop regression; the gate must FAIL"
    if ./target/release/pathrep-doctor "$GOLDEN" --diff "$CANDIDATE" \
        --inject-rank-drop ${doctor_flags[@]+"${doctor_flags[@]}"}; then
        echo "accuracy_gate.sh: SELF-TEST FAILED — injected regression was not caught" >&2
        exit 1
    fi
    echo "accuracy_gate.sh: self-test OK — the gate trips on an injected regression"
    exit 0
fi

./target/release/pathrep-doctor "$GOLDEN" --diff "$CANDIDATE" \
    ${doctor_flags[@]+"${doctor_flags[@]}"}
./target/release/pathrep-doctor "$GOLDEN" --diff "$CANDIDATE_T4" \
    ${doctor_flags[@]+"${doctor_flags[@]}"}
