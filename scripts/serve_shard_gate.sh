#!/usr/bin/env bash
# Sharded-serving gate: the full serve_gate.sh contract (JSON + binary
# soaks bit-compared against the offline predictor, mid-soak telemetry,
# clean drain, ledger evidence) against the PATHREP_SERVE_SHARDS=4
# reactor runtime — the multi-shard byte-identity pass in CI.
#
# Usage: scripts/serve_shard_gate.sh [serve_gate.sh flags]
set -euo pipefail
cd "$(dirname "$0")/.."
exec scripts/serve_gate.sh --sharded "$@"
