#!/usr/bin/env bash
# Failure-forensics gate: prove the flight recorder, watchdog, and SLO
# plane actually work when things go wrong — by making things go wrong.
#
# Phase A — panic forensics:
#   start the daemon with --inject-panic N so the Nth request panics
#   inside its span; the panic hook must dump the flight ring to
#   PATHREP_OBS_FLIGHT_DUMP and exit 101. The dump must be loadable
#   (pathrep-client check-flight: valid Chrome trace, B/E balanced per
#   track) and must carry the dying request's trace_id.
#
# Phase B — SLO breach and recovery:
#   start a healthy daemon with --allow-fault and a tight
#   PATHREP_OBS_SLO objective; inject a batcher slowdown over the wire
#   (set_fault), drive load, and require /slo.json to report burn > 1
#   (BREACH) on the 1s window; clear the fault, drive healthy load, and
#   require the 1s window to recover to burn < 1 (ok).
#
# Phase C — stall watchdog:
#   with the fault still available, inject a slowdown longer than
#   PATHREP_SERVE_WATCHDOG_MS and pile up concurrent requests; the
#   watchdog thread must log `[watchdog]` on stderr and write a flight
#   dump on its own, while the daemon keeps serving (requests still
#   complete). An on-demand dump-flight request must also land.
#
# Usage: scripts/obs_gate.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="${TMPDIR:-/tmp}/pathrep_obs_gate_$$"
mkdir -p "$WORK"
ARTIFACT="$WORK/quickstart.artifact"
serve_pid=""
cleanup() {
    if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
        kill "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -p pathrep-serve --bin pathrep-serve --bin pathrep-client

SERVE=./target/release/pathrep-serve
CLIENT=./target/release/pathrep-client

"$CLIENT" build-artifact "$ARTIFACT"

# Waits for the daemon to print its listening line into $1, echoes ADDR.
wait_for_addr() {
    local log="$1" pid="$2" addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^pathrep-serve: listening on \([0-9.:]*\) .*$/\1/p' "$log" | head -1)"
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "obs_gate.sh: FAIL — daemon died before binding:" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.1
    done
    echo "obs_gate.sh: FAIL — daemon never printed its address" >&2
    cat "$log" >&2
    return 1
}

obs_addr_from() {
    sed -n 's/^pathrep-serve: obs http listening on \([0-9.:]*\)$/\1/p' "$1" | head -1
}

# ---------------------------------------------------------------- Phase A
echo "obs_gate.sh: phase A — injected panic must flight-dump and exit 101"
PANIC_LOG="$WORK/panic_daemon.log"
PANIC_DUMP="$WORK/panic_flight.json"
PATHREP_OBS=1 PATHREP_OBS_FLIGHT_DUMP="$PANIC_DUMP" \
    PATHREP_SERVE_ADDR=127.0.0.1:0 \
    "$SERVE" --inject-panic 3 > "$PANIC_LOG" 2>&1 &
serve_pid=$!
addr="$(wait_for_addr "$PANIC_LOG" "$serve_pid")"

"$CLIENT" load "$addr" "$ARTIFACT" > "$WORK/load.out"
model="$(sed -n 's/^pathrep-client: loaded \([0-9a-f]*\) .*$/\1/p' "$WORK/load.out")"
if [ -z "$model" ]; then
    echo "obs_gate.sh: FAIL — could not parse the model id from:" >&2
    cat "$WORK/load.out" >&2
    exit 1
fi

# Request 1 was load_model, 2 is this predict; request 3 panics. The
# panicking client sees a connection error — that is the point.
"$CLIENT" predict "$addr" "$model" "1.0" > /dev/null
if "$CLIENT" predict "$addr" "$model" "1.0" > /dev/null 2>&1; then
    echo "obs_gate.sh: FAIL — the injected-panic request succeeded" >&2
    exit 1
fi

rc=0
wait "$serve_pid" || rc=$?
serve_pid=""
if [ "$rc" != 101 ]; then
    echo "obs_gate.sh: FAIL — daemon exited $rc, expected 101 from the panic hook:" >&2
    cat "$PANIC_LOG" >&2
    exit 1
fi
if [ ! -s "$PANIC_DUMP" ]; then
    echo "obs_gate.sh: FAIL — panic hook left no flight dump at $PANIC_DUMP" >&2
    cat "$PANIC_LOG" >&2
    exit 1
fi
"$CLIENT" check-flight "$PANIC_DUMP"
if ! grep -q 'trace_id' "$PANIC_DUMP"; then
    echo "obs_gate.sh: FAIL — the flight dump carries no trace_id" >&2
    exit 1
fi
# The dying request's span was open at panic time: the repaired dump
# closes it synthetically, preserving its trace context.
if ! grep -q '"synthetic_end":true' "$PANIC_DUMP"; then
    echo "obs_gate.sh: FAIL — no synthetically closed span in the panic dump" >&2
    exit 1
fi
echo "obs_gate.sh: phase A OK — exit 101, dump balanced, trace_id present"

# ---------------------------------------------------------------- Phase B
echo "obs_gate.sh: phase B — injected slowdown must breach the SLO, then recover"
SLO_LOG="$WORK/slo_daemon.log"
WATCH_DUMP="$WORK/watchdog_flight.json"
PATHREP_OBS=1 PATHREP_OBS_HTTP=127.0.0.1:0 \
    PATHREP_OBS_FLIGHT_DUMP="$WATCH_DUMP" \
    PATHREP_OBS_SLO="serve.request_ns:p999<5ms:99.9" \
    PATHREP_SERVE_WATCHDOG_MS=400 PATHREP_SERVE_BATCH=1 \
    PATHREP_SERVE_ADDR=127.0.0.1:0 \
    "$SERVE" --allow-fault > "$SLO_LOG" 2>&1 &
serve_pid=$!
addr="$(wait_for_addr "$SLO_LOG" "$serve_pid")"
obs_addr="$(obs_addr_from "$SLO_LOG")"
if [ -z "$obs_addr" ]; then
    echo "obs_gate.sh: FAIL — no obs http address in:" >&2
    cat "$SLO_LOG" >&2
    exit 1
fi

# Sick phase: every batch sleeps 25 ms, far over the 5 ms objective.
"$CLIENT" fault "$addr" 25
"$CLIENT" loadgen "$addr" "$ARTIFACT" --clients 2 --requests 20 > /dev/null
breached=0
for _ in $(seq 1 30); do
    if "$CLIENT" slo "$obs_addr" | grep '^pathrep-client: slo serve\.request_ns' \
        | grep 'window=1s' | grep -q 'BREACH'; then
        breached=1
        break
    fi
    sleep 0.2
done
if [ "$breached" != 1 ]; then
    echo "obs_gate.sh: FAIL — 1s window never reported BREACH under a 25 ms slowdown:" >&2
    "$CLIENT" slo "$obs_addr" >&2 || true
    exit 1
fi
echo "obs_gate.sh: phase B breach observed (burn > 1 on the 1s window)"

# Recovery: clear the fault, drive healthy load until the slow
# observations age out of the 1s window and burn drops below 1.
"$CLIENT" fault "$addr" 0
recovered=0
for _ in $(seq 1 40); do
    "$CLIENT" loadgen "$addr" "$ARTIFACT" --clients 2 --requests 10 > /dev/null
    line="$("$CLIENT" slo "$obs_addr" | grep '^pathrep-client: slo serve\.request_ns' | grep 'window=1s' || true)"
    if [ -n "$line" ] && ! printf '%s' "$line" | grep -q 'BREACH'; then
        recovered=1
        break
    fi
    sleep 0.2
done
if [ "$recovered" != 1 ]; then
    echo "obs_gate.sh: FAIL — 1s window never recovered after the fault was cleared:" >&2
    "$CLIENT" slo "$obs_addr" >&2 || true
    exit 1
fi
echo "obs_gate.sh: phase B OK — breach under fault, recovery after clearing it"

# ---------------------------------------------------------------- Phase C
echo "obs_gate.sh: phase C — a stalled batcher must trip the watchdog"
# 1500 ms per batch against a 400 ms watchdog deadline; concurrent
# clients keep the queue non-empty during the stall.
"$CLIENT" fault "$addr" 1500
for i in 1 2 3; do
    "$CLIENT" predict "$addr" "$model" "1.0" > /dev/null &
    eval "pred_$i=$!"
done
wait "$pred_1" "$pred_2" "$pred_3"
"$CLIENT" fault "$addr" 0
fired=0
for _ in $(seq 1 50); do
    if grep -q '\[watchdog\]' "$SLO_LOG"; then
        fired=1
        break
    fi
    sleep 0.1
done
if [ "$fired" != 1 ]; then
    echo "obs_gate.sh: FAIL — watchdog never logged during a 1500 ms stall:" >&2
    cat "$SLO_LOG" >&2
    exit 1
fi
if [ ! -s "$WATCH_DUMP" ]; then
    echo "obs_gate.sh: FAIL — watchdog fired but wrote no flight dump" >&2
    exit 1
fi
"$CLIENT" check-flight "$WATCH_DUMP"

# On-demand dump over the wire, to an explicit path.
REQ_DUMP="$WORK/requested_flight.json"
"$CLIENT" dump-flight "$addr" "$REQ_DUMP"
"$CLIENT" check-flight "$REQ_DUMP"

"$CLIENT" shutdown "$addr"
if ! wait "$serve_pid"; then
    echo "obs_gate.sh: FAIL — daemon exited non-zero after the watchdog scenario:" >&2
    cat "$SLO_LOG" >&2
    exit 1
fi
serve_pid=""
echo "obs_gate.sh: phase C OK — watchdog fired, dumps loadable, daemon survived"
echo "obs_gate.sh: PASS — panic forensics, SLO breach/recovery, and watchdog all verified"
