#!/usr/bin/env bash
# Perf-regression gate: build release, run the perf_gate workload matrix
# against the newest BENCH_*.json baseline (if any), and write the
# next-numbered BENCH_<k>.json at the repo root. Exits non-zero when any
# workload's p50 regresses beyond the threshold (default 25 %).
#
# Usage: scripts/perf_gate.sh [extra perf_gate flags…]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p pathrep-bench --bin perf_gate

latest=""
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    k="${f#BENCH_}"
    k="${k%.json}"
    case "$k" in
        *[!0-9]*) continue ;;
    esac
    if [ -z "$latest" ] || [ "$k" -gt "$latest_k" ]; then
        latest="$f"
        latest_k="$k"
    fi
done

if [ -n "$latest" ]; then
    echo "perf_gate.sh: gating against $latest"
    ./target/release/perf_gate --baseline "$latest" "$@"
else
    echo "perf_gate.sh: no baseline found — seeding BENCH_1.json"
    ./target/release/perf_gate "$@"
fi
