#!/usr/bin/env bash
# Tier-2 CI runner: chains every repo gate and reports one line per gate.
#
#   perf_gate.sh      p50 regressions vs the newest BENCH_*.json baseline
#   accuracy_gate.sh  numerical-health diff vs the golden ledger, plus the
#                     thread-count determinism and work-fact cross-checks
#   serve_gate.sh     prediction-server contract (batching, artifacts,
#                     JSON + binary protocol soaks)
#   serve_shard_gate.sh  the same contract against the 4-shard reactor
#                     runtime (multi-shard byte identity, clean drain)
#   obs_gate.sh       observability-plane contract (scrape, ledger, spans)
#   large_gate.sh     sparse/sketched *_large workloads under a wall
#                     timeout, plus sketch-vs-dense parity
#
# Each gate's full output is captured to a temp log and dumped only when
# that gate fails; the summary stays one line per gate. Exits non-zero
# when any gate fails (all gates still run — one report per push, not a
# fail-fast scavenger hunt).
#
# Usage: scripts/ci.sh
set -uo pipefail
cd "$(dirname "$0")/.."

gates=(perf_gate accuracy_gate serve_gate serve_shard_gate obs_gate large_gate)
logdir="$(mktemp -d "${TMPDIR:-/tmp}/pathrep_ci.XXXXXX")"
trap 'rm -rf "$logdir"' EXIT

failures=0
for gate in "${gates[@]}"; do
    log="$logdir/$gate.log"
    start=$SECONDS
    if "scripts/$gate.sh" > "$log" 2>&1; then
        printf 'ci.sh: %-14s PASS  (%3ds)\n' "$gate" "$((SECONDS - start))"
    else
        rc=$?
        printf 'ci.sh: %-14s FAIL  (%3ds, exit %d)\n' "$gate" "$((SECONDS - start))" "$rc"
        echo "ci.sh: ---- $gate output (last 40 lines) ----"
        tail -40 "$log"
        echo "ci.sh: ---- end $gate output ----"
        failures=$((failures + 1))
    fi
done

if [ "$failures" -gt 0 ]; then
    echo "ci.sh: FAIL — $failures gate(s) failed" >&2
    exit 1
fi
echo "ci.sh: OK — all ${#gates[@]} gates passed"
