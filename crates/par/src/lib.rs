//! # pathrep-par — deterministic scoped worker pool for the hot kernels
//!
//! A thin execution layer over the vendored `crossbeam` scoped-thread shim
//! that the numerical kernels (`matmul`, pivoted QR, SVD bidiagonalization,
//! the Monte-Carlo evaluation, the ADMM prox/projection steps) use to fan
//! work out across threads **without changing a single bit of any result**.
//!
//! ## The determinism contract
//!
//! The worker count is a *scheduling* knob, never a *semantic* one:
//!
//! * Work is partitioned into contiguous index ranges; every element of the
//!   output is computed by exactly the same sequence of floating-point
//!   operations regardless of how the ranges are assigned to threads.
//! * Reductions never combine partials in arrival order. Either each output
//!   element owns its full accumulation (row/column-parallel kernels), or
//!   the caller reduces fixed-size chunks in chunk-index order
//!   ([`map_indexed`] returns results positionally, not first-come-first-served).
//! * RNG streams are keyed by chunk index, not by worker id, so seeded
//!   sampling draws identical values at any thread count.
//!
//! Consequently `PATHREP_THREADS=1` and `PATHREP_THREADS=64` produce
//! bit-identical selections, obs counters and ledger records; only wall
//! time differs.
//!
//! ## Configuration
//!
//! The pool size is resolved once from the `PATHREP_THREADS` environment
//! variable ([`pathrep_obs::config::ENV_THREADS`]): unset or `0` means
//! available parallelism, `1` forces fully inline sequential execution
//! (no threads are ever spawned), any other value is the worker count.
//! [`set_threads`] overrides it programmatically (tests, the perf gate).
//!
//! ## Observability
//!
//! Spans opened inside worker closures must nest under the span that was
//! open on the submitting thread, and Chrome-trace events from workers must
//! land on a small stable set of tids. Every spawn therefore captures the
//! parent span path ([`pathrep_obs::current_span_path`]) and adopts it on
//! the worker ([`pathrep_obs::adopt_span_parent`]), and takes a pooled
//! trace tid ([`pathrep_obs::trace::worker_tid`]) for the task's lifetime.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolved worker count; 0 = not yet resolved from the environment.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// The pool's worker count: the `PATHREP_THREADS` environment variable,
/// resolved once and cached (unset, empty, unparsable or `0` all mean
/// "available parallelism"). Always at least 1.
#[inline]
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => resolve_threads(),
        n => n,
    }
}

#[cold]
fn resolve_threads() -> usize {
    let n = match std::env::var(pathrep_obs::config::ENV_THREADS) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    };
    THREADS.store(n, Ordering::Relaxed);
    n
}

fn default_threads() -> usize {
    // Cached: this sits on every kernel call's worker-count decision and
    // available_parallelism() is a syscall.
    static CORES: AtomicUsize = AtomicUsize::new(0);
    match CORES.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            CORES.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the worker count for the whole process (tests and the perf
/// gate's thread axis). `0` clears the override so the next [`threads`]
/// call re-resolves `PATHREP_THREADS`. Results are unaffected either way —
/// this only changes scheduling.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// Splits `0..n` into exactly `workers` contiguous balanced ranges
/// (`workers ≤ n`); the first `n % workers` ranges are one longer.
fn partition(n: usize, workers: usize) -> Vec<Range<usize>> {
    debug_assert!(workers >= 1 && workers <= n);
    let base = n / workers;
    let rem = n % workers;
    let mut parts = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        parts.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    parts
}

/// How many workers to actually use for `n` units of work when each worker
/// must own at least `min_per_worker` units. `workers_override` of 0 means
/// the global [`threads`] setting, capped at the machine's available
/// parallelism: spawning more workers than cores only adds thread-spawn
/// and context-switch cost on every kernel call and can never go faster
/// (worker count is scheduling-only, so results are identical either way).
/// An explicit `workers_override` is trusted as-is so tests can force
/// multi-worker paths regardless of the host.
fn effective_workers(n: usize, min_per_worker: usize, workers_override: usize) -> usize {
    let base = if workers_override > 0 {
        workers_override
    } else {
        threads().min(default_threads())
    };
    base.min(n / min_per_worker.max(1)).max(1)
}

/// Runs `tasks` (already carved into per-worker units) on the pool: the
/// first task inline on the calling thread, the rest on scoped workers
/// that adopt the caller's span path and a pooled trace tid. A worker
/// panic is re-raised on the caller.
fn run_tasks<T, F>(tasks: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let mut it = tasks.into_iter();
    let Some(first) = it.next() else { return };
    let parent = pathrep_obs::current_span_path();
    let result = crossbeam::scope(|s| {
        for task in it {
            let f = &f;
            let parent = parent.clone();
            s.spawn(move |_| {
                let _tid = pathrep_obs::trace::worker_tid();
                let _span = pathrep_obs::adopt_span_parent(parent);
                f(task)
            });
        }
        f(first)
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

/// Parallel loop over the index range `0..n`, handing each worker one
/// contiguous subrange. Stays fully inline (no spawn) when the pool is
/// sequential or `n < 2 * min_per_worker`.
///
/// The caller's closure must only write state that is disjoint across
/// subranges (e.g. per-column updates through an [`UnsafeSlice`]); reads
/// of shared immutable data are always fine.
pub fn for_each_subrange<F>(n: usize, min_per_worker: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let workers = effective_workers(n, min_per_worker, 0);
    if workers <= 1 {
        f(0..n);
        return;
    }
    run_tasks(partition(n, workers), f);
}

/// Parallel loop over a mutable slice viewed as `data.len() / unit`
/// contiguous units of `unit` elements each (e.g. matrix rows): each worker
/// receives `(first_unit_index, sub_slice)` for a contiguous block of whole
/// units. Inline when sequential or too small to split.
///
/// # Panics
///
/// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`.
pub fn for_each_unit_chunk_mut<T, F>(data: &mut [T], unit: usize, min_units_per_worker: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "unit must be positive");
    assert_eq!(
        data.len() % unit,
        0,
        "data length must be a whole number of units"
    );
    let n_units = data.len() / unit;
    if n_units == 0 {
        return;
    }
    let workers = effective_workers(n_units, min_units_per_worker, 0);
    if workers <= 1 {
        f(0, data);
        return;
    }
    let mut chunks = Vec::with_capacity(workers);
    let mut rest = data;
    for r in partition(n_units, workers) {
        let (head, tail) = rest.split_at_mut((r.end - r.start) * unit);
        chunks.push((r.start, head));
        rest = tail;
    }
    run_tasks(chunks, |(first_unit, chunk)| f(first_unit, chunk));
}

/// Deterministic indexed map: computes `f(i)` for `i` in `0..n` on the pool
/// and returns the results **in index order** — the combine order can never
/// depend on thread scheduling. This is the primitive behind the chunked
/// Monte-Carlo reduction.
pub fn map_indexed<R, F>(n: usize, min_per_worker: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_indexed_with(n, min_per_worker, 0, f)
}

/// [`map_indexed`] with an explicit worker-count override (`0` = the global
/// [`threads`] setting). Results are identical for every override value.
pub fn map_indexed_with<R, F>(n: usize, min_per_worker: usize, workers_override: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let workers = effective_workers(n, min_per_worker, workers_override);
    if workers <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(i));
        }
    } else {
        let mut chunks = Vec::with_capacity(workers);
        let mut rest = slots.as_mut_slice();
        for r in partition(n, workers) {
            let (head, tail) = rest.split_at_mut(r.end - r.start);
            chunks.push((r.start, head));
            rest = tail;
        }
        run_tasks(chunks, |(first, chunk): (usize, &mut [Option<R>])| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(first + k));
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was computed"))
        .collect()
}

/// A shared raw view of a mutable slice for kernels whose per-worker write
/// sets are disjoint but **strided** (e.g. disjoint column ranges of a
/// row-major matrix), which `split_at_mut` cannot express.
///
/// All access is `unsafe`: the caller asserts that no element is written by
/// one worker while any other worker touches it. Reads of elements outside
/// every worker's write set are safe under the same discipline.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps `slice`; the borrow keeps the underlying storage alive and
    /// exclusively reserved for the lifetime of the view.
    pub fn new(slice: &'a mut [T]) -> Self {
        UnsafeSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and no other thread may be writing element `i`
    /// concurrently.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Writes element `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and no other thread may be reading or writing
    /// element `i` concurrently.
    #[inline]
    pub unsafe fn set(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_threads` is process-global; serialize the tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_threads(n);
        let r = f();
        set_threads(0);
        r
    }

    #[test]
    fn partition_is_balanced_and_exhaustive() {
        let parts = partition(10, 3);
        assert_eq!(parts, vec![0..4, 4..7, 7..10]);
        let parts = partition(4, 4);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn effective_workers_respects_grain() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        // Explicit overrides are exact (not clamped by host core count),
        // which keeps these grain assertions machine-independent.
        assert_eq!(effective_workers(1000, 100, 8), 8);
        assert_eq!(effective_workers(1000, 400, 8), 2);
        assert_eq!(effective_workers(10, 64, 8), 1);
        assert_eq!(effective_workers(1000, 100, 3), 3);
    }

    #[test]
    fn global_setting_is_capped_at_available_parallelism() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let cores = default_threads();
        set_threads(cores + 13);
        assert_eq!(effective_workers(usize::MAX, 1, 0), cores);
        set_threads(0);
    }

    #[test]
    fn unit_chunks_cover_every_row_once() {
        with_threads(4, || {
            let mut data = vec![0u32; 12 * 3];
            for_each_unit_chunk_mut(&mut data, 3, 1, |first_row, chunk| {
                for (r, row) in chunk.chunks_mut(3).enumerate() {
                    for x in row.iter_mut() {
                        *x += (first_row + r) as u32 + 1;
                    }
                }
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, (i / 3) as u32 + 1);
            }
        });
    }

    #[test]
    fn map_indexed_returns_results_in_order() {
        for t in [1, 4] {
            let out = with_threads(t, || map_indexed(100, 1, |i| i * i));
            assert_eq!(out.len(), 100);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i * i);
            }
        }
    }

    #[test]
    fn subranges_are_disjoint_and_exhaustive() {
        with_threads(3, || {
            let mut hits = vec![0u8; 50];
            let slice = UnsafeSlice::new(&mut hits);
            for_each_subrange(50, 1, |r| {
                for i in r {
                    // Disjoint ranges: no two workers touch the same index.
                    unsafe { slice.set(i, slice.get(i) + 1) };
                }
            });
            assert!(hits.iter().all(|&h| h == 1));
        });
    }

    #[test]
    fn sequential_mode_spawns_nothing_and_matches() {
        let seq = with_threads(1, || map_indexed(37, 1, |i| (i as f64).sin()));
        let par = with_threads(4, || map_indexed(37, 1, |i| (i as f64).sin()));
        assert_eq!(seq, par, "map results must be bit-identical");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                for_each_subrange(16, 1, |r| {
                    if r.contains(&9) {
                        panic!("worker boom");
                    }
                });
            })
        });
        assert!(result.is_err(), "panic must reach the caller");
    }

    #[test]
    fn zero_length_inputs_are_noops() {
        with_threads(4, || {
            for_each_subrange(0, 1, |_| panic!("must not run"));
            let mut empty: Vec<f64> = Vec::new();
            for_each_unit_chunk_mut(&mut empty, 3, 1, |_, _| panic!("must not run"));
            assert!(map_indexed(0, 1, |_| 0u8).is_empty());
        });
    }
}
