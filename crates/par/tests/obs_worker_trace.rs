//! Observability contract of the worker pool: spans opened inside pool
//! tasks nest under the submitting thread's span, and Chrome-trace events
//! emitted from workers stay balanced on a small pooled set of tids.
//!
//! The obs registry, the trace buffer and the pool size are all
//! process-global, so the tests serialize on one mutex and reset the
//! telemetry state at entry.

use pathrep_obs::trace::{Phase, TraceEvent};
use std::collections::BTreeMap;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// First tid of the pooled worker range (see `pathrep-obs`'s trace module);
/// real threads count up from 0, pooled workers from here.
const WORKER_TID_BASE: u64 = 1_000_000;

fn setup() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    pathrep_obs::set_enabled(true);
    pathrep_obs::trace::set_collecting(true);
    pathrep_obs::reset();
    pathrep_par::set_threads(4);
    guard
}

fn teardown() {
    pathrep_par::set_threads(0);
    pathrep_obs::trace::set_collecting(false);
}

#[test]
fn worker_spans_nest_under_the_submitting_span() {
    let _guard = setup();
    {
        let _outer = pathrep_obs::span!("pool_outer");
        let out = pathrep_par::map_indexed(16, 1, |i| {
            let _inner = pathrep_obs::span!("pool_task");
            i * 3
        });
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }
    let snap = pathrep_obs::registry().snapshot();
    let outer = snap
        .spans
        .iter()
        .find(|s| s.path == "pool_outer")
        .expect("outer span is a root");
    let task = outer
        .children
        .iter()
        .find(|s| s.path == "pool_outer/pool_task")
        .expect("worker spans must adopt the submitting thread's path");
    assert_eq!(task.count, 16, "every task execution is recorded");
    assert!(
        !snap.spans.iter().any(|s| s.path == "pool_task"),
        "no task span may escape to the root: {:?}",
        snap.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );
    teardown();
}

#[test]
fn worker_trace_events_are_balanced_on_pooled_tids() {
    let _guard = setup();
    {
        let _outer = pathrep_obs::span!("trace_outer");
        pathrep_par::for_each_subrange(32, 1, |r| {
            for _ in r {
                let _s = pathrep_obs::span!("trace_unit");
            }
        });
    }
    let events = pathrep_obs::trace::events();
    assert_eq!(
        pathrep_obs::trace::dropped_spans(),
        0,
        "this tiny workload must not saturate the buffer"
    );

    // Stack discipline per tid: depth never goes negative and every begin
    // is closed — an unbalanced stream renders as garbage in a viewer.
    let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
    for TraceEvent { phase, tid, .. } in &events {
        let d = depth.entry(*tid).or_insert(0);
        match phase {
            Phase::Begin => *d += 1,
            Phase::End => {
                *d -= 1;
                assert!(*d >= 0, "tid {tid}: end without a matching begin");
            }
        }
    }
    for (tid, d) in &depth {
        assert_eq!(*d, 0, "tid {tid}: {d} span(s) left open");
    }

    // Worker events land on pooled tids; the submitting thread keeps its
    // own small sequential tid. 4 workers = at most 3 spawned threads, and
    // tid reuse across parallel regions must keep the pooled set small.
    let worker_tids: Vec<u64> = depth
        .keys()
        .copied()
        .filter(|&t| t >= WORKER_TID_BASE)
        .collect();
    assert!(
        worker_tids.len() <= 3,
        "pooled tids must be reused, got {worker_tids:?}"
    );
    let unit_begins = events
        .iter()
        .filter(|e| e.name == "trace_unit" && e.phase == Phase::Begin)
        .count();
    assert_eq!(unit_begins, 32, "every unit span is traced exactly once");
    teardown();
}
