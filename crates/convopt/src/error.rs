//! Error type for the convex-optimization substrate.

use pathrep_linalg::LinalgError;
use std::fmt;

/// Error returned by the solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvoptError {
    /// Problem dimensions are inconsistent.
    Shape {
        /// Human-readable description.
        what: String,
    },
    /// A parameter is outside its valid domain.
    InvalidArgument {
        /// What was wrong.
        what: &'static str,
    },
    /// An underlying matrix routine failed.
    Linalg(LinalgError),
    /// The solver did not converge within its iteration budget. Carries the
    /// last iterate's residuals so callers can decide whether to accept it.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final primal residual.
        primal_residual: f64,
        /// Final dual residual.
        dual_residual: f64,
    },
}

impl fmt::Display for ConvoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvoptError::Shape { what } => write!(f, "inconsistent problem shape: {what}"),
            ConvoptError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
            ConvoptError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            ConvoptError::NoConvergence {
                iterations,
                primal_residual,
                dual_residual,
            } => write!(
                f,
                "ADMM did not converge after {iterations} iterations \
                 (primal residual {primal_residual:.3e}, dual residual {dual_residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for ConvoptError {}

impl From<LinalgError> for ConvoptError {
    fn from(e: LinalgError) -> Self {
        ConvoptError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ConvoptError::NoConvergence {
            iterations: 100,
            primal_residual: 1e-3,
            dual_residual: 2e-4,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("1.000e-3"));
    }

    #[test]
    fn from_linalg() {
        let e: ConvoptError = LinalgError::Singular.into();
        assert!(matches!(e, ConvoptError::Linalg(_)));
    }
}
