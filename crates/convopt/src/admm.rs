//! ADMM solvers for the `ℓ1/ℓ∞` simultaneous segment-selection program.

use crate::project::{project_rows_into_ball, EllipsoidProjector};
use crate::prox::{group_linf_norm, prox_group_linf};
use crate::ConvoptError;
use pathrep_linalg::cholesky::Cholesky;
use pathrep_linalg::{vecops, Matrix};

/// The program instance.
///
/// Selects columns of `B` (segments) so that `B·d_S` predicts
/// `G_target·d_S` with per-row standard deviation at most `radius`:
/// rows of `(G_target − B)·Σ` must have Euclidean norm ≤ `radius`.
#[derive(Debug, Clone)]
pub struct GroupSelectProblem {
    /// Target incidence rows (`r1` × `n_S`) — the representative paths'
    /// segment memberships `G_r1`.
    pub g_target: Matrix,
    /// Segment sensitivity matrix `Σ_S` (`n_S` × `|x|`).
    pub sigma: Matrix,
    /// Per-row standard-deviation budget (`ε′·T_cons / κ`).
    pub radius: f64,
}

impl GroupSelectProblem {
    /// Validates dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ConvoptError::Shape`] / [`ConvoptError::InvalidArgument`]
    /// for inconsistent inputs.
    pub fn validate(&self) -> Result<(), ConvoptError> {
        if self.g_target.ncols() != self.sigma.nrows() {
            return Err(ConvoptError::Shape {
                what: format!(
                    "G_target is {}x{} but Sigma is {}x{}",
                    self.g_target.nrows(),
                    self.g_target.ncols(),
                    self.sigma.nrows(),
                    self.sigma.ncols()
                ),
            });
        }
        if self.radius <= 0.0 {
            return Err(ConvoptError::InvalidArgument {
                what: "radius must be positive",
            });
        }
        Ok(())
    }

    /// Worst (largest) row standard deviation achieved by a candidate `B`:
    /// `max_i ‖(g_i − b_i)·Σ‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`ConvoptError::Shape`] when `b` has the wrong shape.
    pub fn worst_row_std(&self, b: &Matrix) -> Result<f64, ConvoptError> {
        if b.shape() != self.g_target.shape() {
            return Err(ConvoptError::Shape {
                what: "B must match G_target's shape".into(),
            });
        }
        let diff = self.g_target.sub(b)?;
        let e = diff.matmul(&self.sigma)?;
        let mut worst = 0.0_f64;
        for i in 0..e.nrows() {
            worst = worst.max(vecops::norm2(e.row(i)));
        }
        Ok(worst)
    }
}

/// Solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmmConfig {
    /// Penalty parameter ρ.
    pub rho: f64,
    /// Iteration budget.
    pub max_iters: usize,
    /// Absolute residual tolerance.
    pub tol_abs: f64,
    /// Relative residual tolerance.
    pub tol_rel: f64,
    /// A column is *selected* when its `ℓ∞` norm exceeds this fraction of
    /// the largest column norm.
    pub selection_threshold: f64,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            rho: 1.0,
            max_iters: 200,
            tol_abs: 1e-6,
            tol_rel: 1e-3,
            selection_threshold: 1e-2,
        }
    }
}

/// Solver output.
///
/// The solvers always return their final iterate; `worst_row_std` reports
/// the achieved constraint level so callers can decide whether a
/// not-fully-converged iterate is acceptable (the hybrid selection's
/// step 3/4 re-checks errors downstream either way).
#[derive(Debug, Clone)]
pub struct GroupSelectSolution {
    /// The predictor matrix `B`.
    pub b: Matrix,
    /// Indices of selected (non-zero) columns — the segments to measure.
    pub selected: Vec<usize>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final primal residual (Frobenius).
    pub primal_residual: f64,
    /// Final dual residual (Frobenius).
    pub dual_residual: f64,
    /// Final `ℓ1/ℓ∞` objective value.
    pub objective: f64,
    /// Achieved `max_i ‖(g_i − b_i)Σ‖` (compare against the radius).
    pub worst_row_std: f64,
    /// Whether the stopping criterion was met within the budget.
    pub converged: bool,
    /// Primal residual after each iteration (`len == iterations`).
    pub primal_curve: Vec<f64>,
    /// Dual residual after each iteration (`len == iterations`).
    pub dual_curve: Vec<f64>,
}

/// Appends a `convopt` ledger record with the solver outcome and the full
/// per-iteration residual curves (the histograms only keep final values).
fn record_solution(name: &str, sol: &GroupSelectSolution, radius: f64) {
    if !pathrep_obs::ledger::collecting() {
        return;
    }
    pathrep_obs::ledger::record("convopt", name, |f| {
        f.int("iterations", sol.iterations as u64)
            .flag("converged", sol.converged)
            .num("primal_residual", sol.primal_residual)
            .num("dual_residual", sol.dual_residual)
            .num("objective", sol.objective)
            .num("worst_row_std", sol.worst_row_std)
            .num("radius", radius)
            .int("selected", sol.selected.len() as u64)
            .nums("primal_curve", &sol.primal_curve)
            .nums("dual_curve", &sol.dual_curve);
    });
}

fn select_columns(b: &Matrix, threshold_rel: f64) -> Vec<usize> {
    let mut norms = vec![0.0_f64; b.ncols()];
    for i in 0..b.nrows() {
        for (j, &v) in b.row(i).iter().enumerate() {
            norms[j] = norms[j].max(v.abs());
        }
    }
    let max = norms.iter().fold(0.0_f64, |m, &x| m.max(x));
    if max == 0.0 {
        return Vec::new();
    }
    norms
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > threshold_rel * max)
        .map(|(j, _)| j)
        .collect()
}

/// Largest squared singular value of `Σ` by power iteration (with a safety
/// factor so the linearized step is a strict majorizer).
fn operator_norm_sq(sigma: &Matrix) -> f64 {
    let n = sigma.nrows();
    if n == 0 || sigma.ncols() == 0 {
        return 1.0;
    }
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let mut lam = 1.0;
    for _ in 0..60 {
        let w = sigma.matvec_t(&v).expect("shape");
        let mut nv = sigma.matvec(&w).expect("shape");
        let norm = vecops::norm2(&nv);
        if norm == 0.0 {
            return 1.0;
        }
        vecops::scale(&mut nv, 1.0 / norm);
        lam = norm;
        v = nv;
    }
    lam * 1.02
}

/// Linearized (preconditioned) ADMM: scales to the paper's problem sizes.
///
/// Splitting: `min f(B) + I_ball(E)` subject to `B·Σ + E = C` with
/// `C = G_target·Σ`; the `B`-step linearizes the quadratic coupling, so it
/// reduces to one group-prox per iteration.
///
/// # Errors
///
/// * Validation errors from [`GroupSelectProblem::validate`].
/// * [`ConvoptError::NoConvergence`] carrying the final residuals.
pub fn solve_linearized_admm(
    problem: &GroupSelectProblem,
    config: &AdmmConfig,
) -> Result<GroupSelectSolution, ConvoptError> {
    let _span = pathrep_obs::span!("admm_linearized");
    problem.validate()?;
    let g = &problem.g_target;
    // The constraint only sees Σ through Q = ΣΣᵀ, so when the variable
    // space is wider than the segment count, replace Σ by a Cholesky
    // factor of Q (n_S × n_S) — identical problem, much cheaper iterations.
    let compressed;
    let sigma_eff: &Matrix = if problem.sigma.ncols() > problem.sigma.nrows() {
        let q = problem.sigma.matmul(&problem.sigma.transpose())?;
        let ns = q.nrows();
        let mean_diag = (0..ns).map(|i| q[(i, i)].abs()).sum::<f64>() / ns.max(1) as f64;
        let ch = Cholesky::compute_with_jitter(&q, 1e-12 * mean_diag.max(1e-30), 8)
            .map_err(ConvoptError::Linalg)?;
        compressed = ch.l().clone();
        &compressed
    } else {
        &problem.sigma
    };
    // Normalize the operator to unit spectral norm so the linearized prox
    // step is O(1/ρ) regardless of the physical units of Σ (ps). The
    // constraint is invariant: ‖(g−b)Σ‖ ≤ r  ⟺  ‖(g−b)(Σ/s)‖ ≤ r/s.
    let raw_norm = operator_norm_sq(sigma_eff).sqrt();
    let scale = if raw_norm > 0.0 { raw_norm } else { 1.0 };
    let sigma = &sigma_eff.scale(1.0 / scale);
    let radius = problem.radius / scale;
    let c = g.matmul(sigma)?;
    let (r1, ns) = g.shape();
    let nx = sigma.ncols();
    let rho = config.rho;
    let lcap = 1.05; // spectral norm of the normalized operator

    let mut b = Matrix::zeros(r1, ns);
    let mut e = project_rows_into_ball(&c, None, radius);
    let mut u = Matrix::zeros(r1, nx);
    let mut primal = f64::INFINITY;
    let mut dual = f64::INFINITY;
    let scale_primal = (r1 * nx) as f64;
    let scale_dual = (r1 * ns) as f64;

    // Support-stabilization early stop: once the selected-column set has
    // not changed for `STALL_LIMIT` iterations and the iterate is feasible
    // in the original problem, further iterations only polish coefficients
    // that the downstream refit recomputes anyway.
    const STALL_LIMIT: usize = 25;
    const FEAS_CHECK_EVERY: usize = 10;
    let mut last_support_size = usize::MAX;
    let mut stall = 0usize;
    let mut primal_curve: Vec<f64> = Vec::new();
    let mut dual_curve: Vec<f64> = Vec::new();

    let mut iterations = 0;
    for k in 0..config.max_iters {
        iterations = k + 1;
        let bs = b.matmul(sigma)?;
        // E-step: project rows of (C − BΣ − U) onto the ball.
        let target = c.sub(&bs)?.sub(&u)?;
        let e_new = project_rows_into_ball(&target, None, radius);
        // B-step: linearized prox step.
        let resid = bs.add(&e_new)?.sub(&c)?.add(&u)?;
        let grad = resid.matmul(&sigma.transpose())?;
        let b_cand = b.sub(&grad.scale(1.0 / lcap))?;
        let b_new = prox_group_linf(&b_cand, 1.0 / (rho * lcap));
        // Dual update.
        let bs_new = b_new.matmul(sigma)?;
        let r = bs_new.add(&e_new)?.sub(&c)?;
        u = u.add(&r)?;
        // Residuals.
        primal = r.norm_fro() / scale_primal.sqrt();
        dual = rho * e_new.sub(&e)?.matmul(&sigma.transpose())?.norm_fro() / scale_dual.sqrt();
        pathrep_obs::counter_add("convopt.admm.iterations", 1);
        pathrep_obs::histogram_record("convopt.admm.primal_residual", primal);
        pathrep_obs::histogram_record("convopt.admm.dual_residual", dual);
        primal_curve.push(primal);
        dual_curve.push(dual);
        b = b_new;
        e = e_new;
        let support_size = select_columns(&b, config.selection_threshold).len();
        if support_size == last_support_size {
            stall += 1;
        } else {
            stall = 0;
            last_support_size = support_size;
        }
        if stall >= STALL_LIMIT && k % FEAS_CHECK_EVERY == 0 {
            let worst = problem.worst_row_std(&b)?;
            if worst <= problem.radius * 1.05 {
                pathrep_obs::info("convopt.admm.support_stall", || {
                    format!(
                        "support stable for {STALL_LIMIT} iterations and feasible \
                         (worst {worst:.3e} <= radius {:.3e}); stopping at iteration {iterations}",
                        problem.radius
                    )
                });
                let objective = group_linf_norm(&b);
                let sol = GroupSelectSolution {
                    selected: select_columns(&b, config.selection_threshold),
                    b,
                    iterations,
                    primal_residual: primal,
                    dual_residual: dual,
                    objective,
                    worst_row_std: worst,
                    converged: true,
                    primal_curve,
                    dual_curve,
                };
                record_solution("admm_linearized", &sol, problem.radius);
                return Ok(sol);
            }
        }
        let eps_primal =
            config.tol_abs + config.tol_rel * (bs_new.norm_fro().max(c.norm_fro())) / scale_primal.sqrt();
        let eps_dual = config.tol_abs + config.tol_rel * u.norm_fro() * rho / scale_dual.sqrt();
        if primal < eps_primal && dual < eps_dual {
            let worst = problem.worst_row_std(&b)?;
            let objective = group_linf_norm(&b);
            let sol = GroupSelectSolution {
                selected: select_columns(&b, config.selection_threshold),
                b,
                iterations,
                primal_residual: primal,
                dual_residual: dual,
                objective,
                worst_row_std: worst,
                converged: true,
                primal_curve,
                dual_curve,
            };
            record_solution("admm_linearized", &sol, problem.radius);
            return Ok(sol);
        }
    }
    let worst = problem.worst_row_std(&b)?;
    let objective = group_linf_norm(&b);
    pathrep_obs::warn("convopt.admm.unconverged", || {
        format!(
            "linearized ADMM exhausted {iterations} iterations \
             (primal {primal:.3e}, dual {dual:.3e}, worst {worst:.3e}, radius {:.3e})",
            problem.radius
        )
    });
    let sol = GroupSelectSolution {
        selected: select_columns(&b, config.selection_threshold),
        b,
        iterations,
        primal_residual: primal,
        dual_residual: dual,
        objective,
        worst_row_std: worst,
        converged: false,
        primal_curve,
        dual_curve,
    };
    record_solution("admm_linearized", &sol, problem.radius);
    Ok(sol)
}

/// Classic two-block ADMM with exact per-row ellipsoid projections.
///
/// Splitting: `min f(B) + Σ_i I_{C_i}(z_i)` subject to `B = Z`, where
/// `C_i = { z : ‖(g_i − z)·Σ‖ ≤ radius }` is an ellipsoid centered at the
/// row `g_i`. The projection uses one eigendecomposition of `Σ·Σᵀ`
/// (`n_S × n_S`) shared by every row and iteration — exact but cubic in
/// `n_S`, so best for small and mid-size problems and as a reference for
/// the linearized solver.
///
/// # Errors
///
/// * Validation errors from [`GroupSelectProblem::validate`].
/// * [`ConvoptError::NoConvergence`] carrying the final residuals.
pub fn solve_ellipsoid_admm(
    problem: &GroupSelectProblem,
    config: &AdmmConfig,
) -> Result<GroupSelectSolution, ConvoptError> {
    let _span = pathrep_obs::span!("admm_ellipsoid");
    problem.validate()?;
    let g = &problem.g_target;
    let sigma = &problem.sigma;
    let (r1, ns) = g.shape();
    let q = sigma.matmul(&sigma.transpose())?;
    let projector = EllipsoidProjector::new(&q, problem.radius)?;

    let mut b;
    let mut z = g.clone(); // feasible start: B = G ⇒ zero error
    let mut u = Matrix::zeros(r1, ns);
    let mut primal;
    let mut dual;
    let scale = (r1 * ns) as f64;
    let mut primal_curve: Vec<f64> = Vec::new();
    let mut dual_curve: Vec<f64> = Vec::new();

    let mut iterations = 0;
    loop {
        iterations += 1;
        // B-step: group prox of (Z − U).
        let b_new = prox_group_linf(&z.sub(&u)?, 1.0 / config.rho);
        // Z-step: row-wise ellipsoid projection of (B + U) about g_i. Rows
        // are independent, so blocks fan out over the `pathrep-par` pool
        // with bit-identical results at any thread count.
        let t = b_new.add(&u)?;
        let mut z_new = Matrix::zeros(r1, ns);
        pathrep_par::for_each_unit_chunk_mut(z_new.as_mut_slice(), ns, 8, |first, block| {
            for (di, zrow) in block.chunks_exact_mut(ns).enumerate() {
                let i = first + di;
                zrow.copy_from_slice(&projector.project(t.row(i), g.row(i)));
            }
        });
        // Dual update and residuals.
        let r = b_new.sub(&z_new)?;
        u = u.add(&r)?;
        primal = r.norm_fro() / scale.sqrt();
        dual = config.rho * z_new.sub(&z)?.norm_fro() / scale.sqrt();
        pathrep_obs::counter_add("convopt.admm.iterations", 1);
        pathrep_obs::histogram_record("convopt.admm.primal_residual", primal);
        pathrep_obs::histogram_record("convopt.admm.dual_residual", dual);
        primal_curve.push(primal);
        dual_curve.push(dual);
        b = b_new;
        z = z_new;
        let eps_primal = config.tol_abs + config.tol_rel * b.norm_fro().max(z.norm_fro()) / scale.sqrt();
        let eps_dual = config.tol_abs + config.tol_rel * config.rho * u.norm_fro() / scale.sqrt();
        if (primal < eps_primal && dual < eps_dual) || iterations >= config.max_iters.max(1) {
            break;
        }
    }
    // Z is feasible by construction; report it as the solution.
    let worst = problem.worst_row_std(&z)?;
    let converged = iterations < config.max_iters.max(1);
    if !converged {
        pathrep_obs::warn("convopt.admm.unconverged", || {
            format!(
                "ellipsoid ADMM exhausted {iterations} iterations \
                 (primal {primal:.3e}, dual {dual:.3e}, worst {worst:.3e})"
            )
        });
    }
    let objective = group_linf_norm(&z);
    let sol = GroupSelectSolution {
        selected: select_columns(&z, config.selection_threshold),
        b: z,
        iterations,
        primal_residual: primal,
        dual_residual: dual,
        objective,
        worst_row_std: worst,
        converged,
        primal_curve,
        dual_curve,
    };
    record_solution("admm_ellipsoid", &sol, problem.radius);
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// A toy instance: 3 paths over 4 segments where segment 3 is unused by
    /// the targets, and generous radius allows dropping weak segments.
    fn toy_problem(radius: f64) -> GroupSelectProblem {
        // Paths: p0 = s0+s1, p1 = s0+s2, p2 = s1+s2.
        let g = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 1.0, 0.0],
        ])
        .unwrap();
        // Segment sensitivities: s0, s1 strong; s2 weak; s3 depends only on
        // a variable no target path touches, so selecting it can only add
        // variance — truly irrelevant.
        let sigma = Matrix::from_rows(&[
            &[4.0, 0.0, 0.0, 0.0],
            &[0.0, 4.0, 0.0, 0.0],
            &[0.0, 0.0, 0.5, 0.0],
            &[0.0, 0.0, 0.0, 2.0],
        ])
        .unwrap();
        GroupSelectProblem {
            g_target: g,
            sigma,
            radius,
        }
    }

    #[test]
    fn validate_catches_shape_and_radius() {
        let mut p = toy_problem(1.0);
        assert!(p.validate().is_ok());
        p.radius = 0.0;
        assert!(p.validate().is_err());
        let bad = GroupSelectProblem {
            g_target: Matrix::zeros(2, 3),
            sigma: Matrix::zeros(4, 2),
            radius: 1.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn tight_radius_recovers_strong_segments() {
        // radius below the weak segment's σ (0.5): s2 may be dropped but
        // s0, s1 must be kept.
        let p = toy_problem(0.6);
        let sol = solve_linearized_admm(&p, &AdmmConfig::default()).unwrap();
        assert!(p.worst_row_std(&sol.b).unwrap() <= 0.6 * 1.05);
        assert!(sol.selected.contains(&0), "strong segment 0 dropped");
        assert!(sol.selected.contains(&1), "strong segment 1 dropped");
        assert!(!sol.selected.contains(&3), "irrelevant segment selected");
        // The weak segment should not be needed.
        assert!(!sol.selected.contains(&2), "weak segment kept unnecessarily");
    }

    #[test]
    fn huge_radius_selects_nothing() {
        let p = toy_problem(100.0);
        let sol = solve_linearized_admm(&p, &AdmmConfig::default()).unwrap();
        assert!(sol.selected.is_empty(), "selected {:?}", sol.selected);
        assert!(sol.objective < 1e-6);
    }

    #[test]
    fn objective_no_worse_than_trivial_feasible_point() {
        // B = G_target is always feasible; the optimum must cost no more.
        let p = toy_problem(0.6);
        let trivial = group_linf_norm(&p.g_target);
        let sol = solve_linearized_admm(&p, &AdmmConfig::default()).unwrap();
        assert!(
            sol.objective <= trivial + 1e-6,
            "objective {} worse than trivial {}",
            sol.objective,
            trivial
        );
    }

    #[test]
    fn ellipsoid_solution_is_feasible_and_consistent() {
        let p = toy_problem(0.6);
        let sol = solve_ellipsoid_admm(&p, &AdmmConfig::default()).unwrap();
        assert!(p.worst_row_std(&sol.b).unwrap() <= 0.6 * (1.0 + 1e-6));
        assert!(sol.selected.contains(&0));
        assert!(sol.selected.contains(&1));
    }

    #[test]
    fn solvers_agree_on_objective() {
        let p = toy_problem(0.8);
        let a = solve_linearized_admm(&p, &AdmmConfig::default()).unwrap();
        let b = solve_ellipsoid_admm(
            &p,
            &AdmmConfig {
                max_iters: 2000,
                ..AdmmConfig::default()
            },
        )
        .unwrap();
        assert!(
            (a.objective - b.objective).abs() < 0.1 * a.objective.max(0.1),
            "linearized {} vs ellipsoid {}",
            a.objective,
            b.objective
        );
    }

    #[test]
    fn random_problem_feasible_solution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let g = Matrix::from_fn(6, 10, |_, _| if rng.gen_bool(0.3) { 1.0 } else { 0.0 });
        let sigma = Matrix::from_fn(10, 8, |_, _| rng.gen_range(0.0..2.0));
        let trivially_feasible_radius = 2.0;
        let p = GroupSelectProblem {
            g_target: g,
            sigma,
            radius: trivially_feasible_radius,
        };
        let sol = solve_linearized_admm(&p, &AdmmConfig::default()).unwrap();
        assert!(p.worst_row_std(&sol.b).unwrap() <= p.radius * 1.05);
        // Selecting fewer columns than segments exist.
        assert!(sol.selected.len() <= 10);
    }

    #[test]
    fn residual_curves_are_finite_and_monotone_ish() {
        let p = toy_problem(0.6);
        let sols = [
            solve_linearized_admm(&p, &AdmmConfig::default()).unwrap(),
            solve_ellipsoid_admm(&p, &AdmmConfig::default()).unwrap(),
        ];
        for sol in &sols {
            assert_eq!(sol.primal_curve.len(), sol.iterations);
            assert_eq!(sol.dual_curve.len(), sol.iterations);
            assert!(
                sol.primal_curve
                    .iter()
                    .chain(&sol.dual_curve)
                    .all(|v| v.is_finite()),
                "NaN/Inf in residual curves"
            );
            assert_eq!(sol.primal_curve.last().copied(), Some(sol.primal_residual));
            assert_eq!(sol.dual_curve.last().copied(), Some(sol.dual_residual));
            // Monotone-ish: ADMM residuals oscillate locally, but over the
            // run the tail must sit well below the head.
            if sol.iterations >= 8 {
                let q = sol.iterations / 4;
                let head: f64 = sol.primal_curve[..q].iter().sum::<f64>() / q as f64;
                let tail: f64 =
                    sol.primal_curve[sol.iterations - q..].iter().sum::<f64>() / q as f64;
                assert!(
                    tail <= head,
                    "primal residual grew: head avg {head:.3e}, tail avg {tail:.3e}"
                );
            }
        }
    }

    #[test]
    fn shrinking_radius_grows_selection() {
        let sizes: Vec<usize> = [5.0, 1.0, 0.3]
            .iter()
            .map(|&r| {
                let p = toy_problem(r);
                solve_linearized_admm(&p, &AdmmConfig::default())
                    .unwrap()
                    .selected
                    .len()
            })
            .collect();
        assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "{sizes:?}");
    }
}
