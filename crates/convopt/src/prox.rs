//! Proximal operators for the `ℓ1/ℓ∞` group norm.

use pathrep_linalg::Matrix;

/// Euclidean projection of `v` onto the `ℓ1` ball of radius `tau`
/// (Duchi, Shalev-Shwartz, Singer, Chandra 2008).
///
/// Returns `v` unchanged when it is already inside the ball.
pub fn project_l1_ball(v: &[f64], tau: f64) -> Vec<f64> {
    if tau <= 0.0 {
        return vec![0.0; v.len()];
    }
    let l1: f64 = v.iter().map(|x| x.abs()).sum();
    if l1 <= tau {
        return v.to_vec();
    }
    // Find the soft-threshold level θ: sort |v| descending, take the
    // largest k with |v|_(k) − (Σ_{j≤k}|v|_(j) − tau)/k > 0.
    let mut mags: Vec<f64> = v.iter().map(|x| x.abs()).collect();
    // NaN-total descending order (NaNs last): a poisoned magnitude cannot
    // scramble the threshold search.
    mags.sort_by(|a, b| pathrep_linalg::vecops::cmp_nan_smallest(*b, *a));
    let mut cumsum = 0.0;
    let mut theta = 0.0;
    for (k, &m) in mags.iter().enumerate() {
        cumsum += m;
        let cand = (cumsum - tau) / (k as f64 + 1.0);
        if m - cand > 0.0 {
            theta = cand;
        } else {
            break;
        }
    }
    v.iter()
        .map(|&x| x.signum() * (x.abs() - theta).max(0.0))
        .collect()
}

/// Proximal operator of `t·‖·‖_∞` via Moreau decomposition:
/// `prox_{t‖·‖_∞}(v) = v − Π_{t·B_1}(v)` (the `ℓ1` ball of radius `t` is the
/// dual-norm ball of `ℓ∞`).
pub fn prox_linf(v: &[f64], t: f64) -> Vec<f64> {
    let proj = project_l1_ball(v, t);
    v.iter().zip(proj.iter()).map(|(&a, &p)| a - p).collect()
}

/// Column-wise prox of the `ℓ1/ℓ∞` group norm `t·Σ_j ‖col_j‖_∞` applied to a
/// matrix: each column gets `prox_{t‖·‖_∞}` independently, fanned out over
/// the `pathrep-par` pool (columns are independent, so the result is
/// bit-identical at any thread count).
pub fn prox_group_linf(m: &Matrix, t: f64) -> Matrix {
    let mut out = m.clone();
    let cols = pathrep_par::map_indexed(m.ncols(), 8, |j| prox_linf(&m.col(j), t));
    for (j, p) in cols.iter().enumerate() {
        out.set_col(j, p);
    }
    out
}

/// The `ℓ1/ℓ∞` group norm itself: `Σ_j ‖col_j‖_∞`.
pub fn group_linf_norm(m: &Matrix) -> f64 {
    (0..m.ncols())
        .map(|j| {
            (0..m.nrows())
                .map(|i| m[(i, j)].abs())
                .fold(0.0_f64, f64::max)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inside_ball_is_identity() {
        let v = [0.1, -0.2, 0.3];
        assert_eq!(project_l1_ball(&v, 1.0), v.to_vec());
    }

    #[test]
    fn projection_lands_on_sphere() {
        let v = [3.0, -4.0, 1.0];
        let p = project_l1_ball(&v, 2.0);
        let l1: f64 = p.iter().map(|x| x.abs()).sum();
        assert!((l1 - 2.0).abs() < 1e-12);
        // Signs preserved, magnitudes shrunk.
        for (a, b) in v.iter().zip(p.iter()) {
            assert!(a * b >= 0.0);
            assert!(b.abs() <= a.abs());
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let v = [1.0, 2.0, -3.0, 0.5];
        let p1 = project_l1_ball(&v, 1.5);
        let p2 = project_l1_ball(&p1, 1.5);
        for (a, b) in p1.iter().zip(p2.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_is_closest_point_vs_brute_force() {
        // Check optimality via the variational inequality:
        // (v − p)ᵀ(q − p) ≤ 0 for any feasible q.
        let v = [2.0, -1.0, 0.5];
        let tau = 1.0;
        let p = project_l1_ball(&v, tau);
        let candidates = [
            [1.0, 0.0, 0.0],
            [0.0, -1.0, 0.0],
            [0.5, -0.25, 0.25],
            [0.0, 0.0, 1.0],
            [-1.0, 0.0, 0.0],
        ];
        for q in candidates {
            let ip: f64 = (0..3).map(|k| (v[k] - p[k]) * (q[k] - p[k])).sum();
            assert!(ip <= 1e-10, "variational inequality violated: {ip}");
        }
    }

    #[test]
    fn zero_radius_projects_to_origin() {
        assert_eq!(project_l1_ball(&[1.0, 2.0], 0.0), vec![0.0, 0.0]);
    }

    #[test]
    fn prox_linf_shrinks_the_top() {
        // prox of t‖·‖_∞ reduces the largest entries toward the next ones.
        let v = [5.0, 1.0, -1.0];
        let p = prox_linf(&v, 2.0);
        // Only the max coordinate pays: 5 − 2 = 3.
        assert!((p[0] - 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0).abs() < 1e-12);
        assert!((p[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn prox_linf_kills_small_vectors() {
        // If t ≥ ‖v‖₁ the prox is zero.
        let v = [0.5, -0.25];
        let p = prox_linf(&v, 1.0);
        assert!(p.iter().all(|x| x.abs() < 1e-12));
    }

    #[test]
    fn prox_satisfies_optimality() {
        // prox_tf(v) minimizes t‖x‖_∞ + ½‖x − v‖². Compare against a grid of
        // perturbations.
        let v = [2.0, -1.5, 0.7, 0.0];
        let t = 0.8;
        let p = prox_linf(&v, t);
        let obj = |x: &[f64]| {
            let inf = x.iter().fold(0.0_f64, |m, &e| m.max(e.abs()));
            let q: f64 = x.iter().zip(v.iter()).map(|(&a, &b)| (a - b) * (a - b)).sum();
            t * inf + 0.5 * q
        };
        let base = obj(&p);
        for d in 0..4 {
            for step in [-0.01, 0.01] {
                let mut q = p.clone();
                q[d] += step;
                assert!(obj(&q) >= base - 1e-10, "prox not optimal at coord {d}");
            }
        }
    }

    #[test]
    fn nan_input_cannot_scramble_the_threshold_search() {
        // Regression: the descending sort used `partial_cmp(..).unwrap_or`
        // semantics, so a NaN magnitude made the comparator lie about order
        // and could leave the sort arbitrarily shuffled. The total order
        // puts NaNs last; the finite coordinates still project correctly.
        let v = [3.0, f64::NAN, -4.0, 1.0];
        let p = project_l1_ball(&v, 2.0);
        assert_eq!(p.len(), 4);
        // The NaN coordinate stays poisoned (soft-threshold of NaN), but
        // the finite ones keep sign and shrink as usual.
        assert!(p[0] >= 0.0 && p[0] <= 3.0);
        assert!(p[2] <= 0.0 && p[2] >= -4.0);
        assert!(p[3] >= 0.0 && p[3] <= 1.0);
        let _ = prox_linf(&v, 2.0); // must not panic either
    }

    #[test]
    fn group_norm_and_prox_on_matrix() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[-1.0, 2.0]]).unwrap();
        assert_eq!(group_linf_norm(&m), 5.0);
        let p = prox_group_linf(&m, 10.0);
        // Every column ℓ1 mass is below 10 ⇒ all zero.
        assert!(p.norm_max() < 1e-12);
    }
}
