//! Convex optimization substrate: the simultaneous-variable-selection
//! program of the paper's hybrid path/segment step (Eqn 10).
//!
//! The program selects a minimum set of *segments* whose delays predict the
//! representative-path delays within a worst-case tolerance:
//!
//! ```text
//! min_B   sum_j  max_i |b_ij|                   (l1/l-inf group norm)
//! s.t.    || (g_i - b_i) Sigma_S ||_2 <= radius   for every row i
//! ```
//!
//! The group norm drives whole *columns* of `B` to zero; a surviving column
//! means the corresponding segment is measured post-silicon. The constraint
//! bounds each representative path's prediction standard deviation (the
//! worst-case error is `kappa` times it once the predictor carries the
//! bias-removing intercept — see DESIGN.md).
//!
//! Two solvers are provided:
//!
//! * [`admm::solve_linearized_admm`] — linearized (preconditioned) ADMM,
//!   scales to the paper's problem sizes; only needs the operator norm of
//!   `Sigma_S`.
//! * [`admm::solve_ellipsoid_admm`] — classic two-block ADMM with *exact*
//!   per-row ellipsoid projections (eigendecomposition + secular-equation
//!   Newton); reference implementation for small problems and the ablation
//!   benches.

pub mod admm;
pub mod error;
pub mod project;
pub mod prox;

pub use admm::{solve_ellipsoid_admm, solve_linearized_admm, AdmmConfig, GroupSelectProblem, GroupSelectSolution};
pub use error::ConvoptError;
