//! Projections onto the solver's constraint sets.

use crate::ConvoptError;
use pathrep_linalg::eig::SymmetricEig;
use pathrep_linalg::{Matrix, vecops};

/// Projects each row of `m` onto the Euclidean ball of radius `r` centered
/// at the corresponding row of `centers` (pass `None` for the origin).
///
/// # Panics
///
/// Panics when `centers` has a different shape than `m`.
pub fn project_rows_into_ball(m: &Matrix, centers: Option<&Matrix>, r: f64) -> Matrix {
    if let Some(c) = centers {
        assert_eq!(c.shape(), m.shape());
    }
    let ncols = m.ncols();
    let mut out = m.clone();
    // Rows project independently, so blocks of rows fan out over the
    // `pathrep-par` pool with bit-identical results at any thread count.
    pathrep_par::for_each_unit_chunk_mut(out.as_mut_slice(), ncols, 64, |first, block| {
        for (di, orow) in block.chunks_exact_mut(ncols).enumerate() {
            let i = first + di;
            let row = m.row(i);
            let center: Vec<f64> = match centers {
                Some(c) => c.row(i).to_vec(),
                None => vec![0.0; ncols],
            };
            let diff = vecops::sub(row, &center);
            let n = vecops::norm2(&diff);
            if n > r {
                let scale = r / n;
                for (o, (&c, &d)) in orow.iter_mut().zip(center.iter().zip(diff.iter())) {
                    *o = c + scale * d;
                }
            }
        }
    });
    out
}

/// Exact Euclidean projection onto the (possibly degenerate) ellipsoid
/// `{ z : (z − c)ᵀ Q (z − c) ≤ r² }` with `Q ⪰ 0` given by its
/// eigendecomposition. Directions in the null space of `Q` are
/// unconstrained and pass through unchanged.
#[derive(Debug, Clone)]
pub struct EllipsoidProjector {
    eig: SymmetricEig,
    radius_sq: f64,
}

impl EllipsoidProjector {
    /// Builds a projector for `Q` (symmetric PSD) and radius `r`.
    ///
    /// # Errors
    ///
    /// * [`ConvoptError::InvalidArgument`] for a non-positive radius.
    /// * [`ConvoptError::Linalg`] if the eigendecomposition fails.
    pub fn new(q: &Matrix, r: f64) -> Result<Self, ConvoptError> {
        if r <= 0.0 {
            return Err(ConvoptError::InvalidArgument {
                what: "ellipsoid radius must be positive",
            });
        }
        let eig = SymmetricEig::compute(q)?;
        Ok(EllipsoidProjector {
            eig,
            radius_sq: r * r,
        })
    }

    /// Projects `p` onto the ellipsoid centered at `c`.
    ///
    /// Solves the secular equation `Σ λ_k y_k²/(1 + ν λ_k)² = r²` for the
    /// Lagrange multiplier `ν ≥ 0` by safeguarded Newton.
    ///
    /// # Panics
    ///
    /// Panics if `p` and `c` lengths differ from the ellipsoid dimension.
    pub fn project(&self, p: &[f64], c: &[f64]) -> Vec<f64> {
        let n = self.eig.values().len();
        assert_eq!(p.len(), n);
        assert_eq!(c.len(), n);
        let diff = vecops::sub(p, c);
        // y = Vᵀ (p − c)
        let v = self.eig.vectors();
        let y = v.matvec_t(&diff).expect("dimension checked");
        let lam = self.eig.values();
        let eval = |nu: f64| -> (f64, f64) {
            // value = Σ λ y²/(1+νλ)², derivative wrt ν
            let mut val = 0.0;
            let mut der = 0.0;
            for k in 0..n {
                let l = lam[k].max(0.0);
                if l == 0.0 {
                    continue;
                }
                let d = 1.0 + nu * l;
                let t = l * y[k] * y[k] / (d * d);
                val += t;
                der += -2.0 * l * t / d;
            }
            (val, der)
        };
        let (v0, _) = eval(0.0);
        if v0 <= self.radius_sq {
            return p.to_vec(); // already feasible
        }
        // Safeguarded Newton on ν ∈ (0, ∞): value is decreasing in ν.
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        while eval(hi).0 > self.radius_sq {
            lo = hi;
            hi *= 4.0;
            if hi > 1e30 {
                break;
            }
        }
        let mut nu = 0.5 * (lo + hi);
        for _ in 0..100 {
            let (val, der) = eval(nu);
            if val > self.radius_sq {
                lo = nu;
            } else {
                hi = nu;
            }
            let step = (val - self.radius_sq) / der;
            let newton = nu - step;
            nu = if newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
            if (hi - lo) < 1e-14 * hi.max(1.0) {
                break;
            }
        }
        // z' = y / (1 + νλ), back to original coordinates.
        let zp: Vec<f64> = (0..n)
            .map(|k| y[k] / (1.0 + nu * lam[k].max(0.0)))
            .collect();
        let z = v.matvec(&zp).expect("dimension checked");
        vecops::add(&z, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ball_projection_scales_rows() {
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.1, 0.0]]).unwrap();
        let p = project_rows_into_ball(&m, None, 1.0);
        assert!((vecops::norm2(p.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(p.row(1), &[0.1, 0.0]); // already inside
    }

    #[test]
    fn ball_projection_respects_centers() {
        let m = Matrix::from_rows(&[&[5.0, 0.0]]).unwrap();
        let c = Matrix::from_rows(&[&[3.0, 0.0]]).unwrap();
        let p = project_rows_into_ball(&m, Some(&c), 1.0);
        assert!((p[(0, 0)] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sphere_case_matches_ball() {
        // Q = I: the ellipsoid is a sphere, so the projection must agree
        // with simple radial scaling.
        let q = Matrix::identity(3);
        let pr = EllipsoidProjector::new(&q, 2.0).unwrap();
        let p = [3.0, 0.0, 4.0];
        let z = pr.project(&p, &[0.0; 3]);
        let n = vecops::norm2(&z);
        assert!((n - 2.0).abs() < 1e-9);
        // Same direction.
        assert!((z[0] / p[0] - z[2] / p[2]).abs() < 1e-9);
    }

    #[test]
    fn feasible_point_is_fixed() {
        let q = Matrix::from_diag(&[4.0, 1.0]);
        let pr = EllipsoidProjector::new(&q, 1.0).unwrap();
        let p = [0.1, 0.2];
        assert_eq!(pr.project(&p, &[0.0, 0.0]), p.to_vec());
    }

    #[test]
    fn projection_lands_on_boundary() {
        let q = Matrix::from_diag(&[4.0, 1.0, 0.25]);
        let pr = EllipsoidProjector::new(&q, 1.5).unwrap();
        let p = [2.0, -3.0, 5.0];
        let z = pr.project(&p, &[0.0; 3]);
        let quad: f64 = 4.0 * z[0] * z[0] + z[1] * z[1] + 0.25 * z[2] * z[2];
        assert!((quad - 2.25).abs() < 1e-8, "boundary violated: {quad}");
    }

    #[test]
    fn null_space_directions_unconstrained() {
        // Q has a zero eigenvalue in the last coordinate: moving along it
        // costs nothing, so the projection keeps that coordinate.
        let q = Matrix::from_diag(&[1.0, 0.0]);
        let pr = EllipsoidProjector::new(&q, 1.0).unwrap();
        let z = pr.project(&[5.0, 7.0], &[0.0, 0.0]);
        assert!((z[1] - 7.0).abs() < 1e-9, "null-space coordinate moved");
        assert!((z[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimality_via_variational_inequality() {
        let q = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap();
        let pr = EllipsoidProjector::new(&q, 1.0).unwrap();
        let p = [3.0, -2.0];
        let z = pr.project(&p, &[0.0, 0.0]);
        // Test points inside the ellipsoid.
        for cand in [[0.0, 0.0], [0.3, 0.3], [-0.5, 0.0], [0.0, -0.7]] {
            let quad = 2.0 * cand[0] * cand[0]
                + cand[0] * cand[1]
                + cand[1] * cand[1];
            if quad > 1.0 {
                continue;
            }
            let ip: f64 = (0..2).map(|k| (p[k] - z[k]) * (cand[k] - z[k])).sum();
            assert!(ip <= 1e-8, "closer feasible point exists");
        }
    }

    #[test]
    fn center_offset_projection() {
        let q = Matrix::identity(2);
        let pr = EllipsoidProjector::new(&q, 1.0).unwrap();
        let z = pr.project(&[10.0, 5.0], &[10.0, 2.0]);
        // Distance from center must be 1 along +y.
        assert!((z[0] - 10.0).abs() < 1e-9);
        assert!((z[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn non_positive_radius_rejected() {
        assert!(EllipsoidProjector::new(&Matrix::identity(2), 0.0).is_err());
    }
}
