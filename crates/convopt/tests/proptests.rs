//! Property-based tests for the convex-optimization substrate.

use pathrep_convopt::prox::{group_linf_norm, project_l1_ball, prox_group_linf, prox_linf};
use pathrep_convopt::project::EllipsoidProjector;
use pathrep_convopt::{solve_linearized_admm, AdmmConfig, GroupSelectProblem};
use pathrep_linalg::{vecops, Matrix};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0..5.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn l1_projection_is_feasible_and_no_farther(v in vec_strategy(6), tau in 0.1..4.0f64) {
        let p = project_l1_ball(&v, tau);
        let l1: f64 = p.iter().map(|x| x.abs()).sum();
        prop_assert!(l1 <= tau * (1.0 + 1e-9));
        // Projection is the closest feasible point; in particular it is no
        // farther from v than the origin (which is feasible).
        let d_proj = vecops::norm2(&vecops::sub(&v, &p));
        let d_origin = vecops::norm2(&v);
        prop_assert!(d_proj <= d_origin + 1e-12);
    }

    #[test]
    fn l1_projection_idempotent(v in vec_strategy(5), tau in 0.1..3.0f64) {
        let p1 = project_l1_ball(&v, tau);
        let p2 = project_l1_ball(&p1, tau);
        for (a, b) in p1.iter().zip(p2.iter()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn moreau_identity_holds(v in vec_strategy(6), t in 0.1..3.0f64) {
        // v = prox_{t‖·‖∞}(v) + Π_{tB₁}(v).
        let p = prox_linf(&v, t);
        let q = project_l1_ball(&v, t);
        for k in 0..v.len() {
            prop_assert!((p[k] + q[k] - v[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn prox_never_increases_linf(v in vec_strategy(6), t in 0.0..3.0f64) {
        let p = prox_linf(&v, t);
        prop_assert!(vecops::norm_inf(&p) <= vecops::norm_inf(&v) + 1e-12);
    }

    #[test]
    fn group_prox_reduces_objective(
        data in proptest::collection::vec(-3.0..3.0f64, 12),
        t in 0.1..2.0f64,
    ) {
        let m = Matrix::from_vec(3, 4, data).expect("sized");
        let p = prox_group_linf(&m, t);
        prop_assert!(group_linf_norm(&p) <= group_linf_norm(&m) + 1e-12);
    }

    #[test]
    fn ellipsoid_projection_feasible_and_optimal_vs_center(
        p in vec_strategy(3),
        d1 in 0.2..4.0f64,
        d2 in 0.2..4.0f64,
        d3 in 0.0..4.0f64,
        r in 0.2..2.0f64,
    ) {
        let q = Matrix::from_diag(&[d1, d2, d3]);
        let proj = EllipsoidProjector::new(&q, r).expect("projector");
        let z = proj.project(&p, &[0.0; 3]);
        let quad = d1 * z[0] * z[0] + d2 * z[1] * z[1] + d3 * z[2] * z[2];
        prop_assert!(quad <= r * r * (1.0 + 1e-6), "infeasible: {quad}");
        // No farther from p than the center (which is feasible).
        let dz = vecops::norm2(&vecops::sub(&p, &z));
        let dc = vecops::norm2(&p);
        prop_assert!(dz <= dc + 1e-9);
    }

    #[test]
    fn admm_solution_feasible_and_cheaper_than_trivial(
        gdata in proptest::collection::vec(0.0..1.0f64, 12),
        sdata in proptest::collection::vec(0.1..2.0f64, 12),
        radius in 0.5..4.0f64,
    ) {
        // 3 paths × 4 segments over 3 variables.
        let g = Matrix::from_vec(3, 4, gdata.iter().map(|&x| if x > 0.5 { 1.0 } else { 0.0 }).collect())
            .expect("sized");
        let sigma = Matrix::from_vec(4, 3, sdata).expect("sized");
        let problem = GroupSelectProblem { g_target: g.clone(), sigma, radius };
        let sol = solve_linearized_admm(&problem, &AdmmConfig::default()).expect("solve");
        prop_assert!(sol.worst_row_std <= radius * 1.1,
            "constraint violated: {} vs {}", sol.worst_row_std, radius);
        prop_assert!(sol.objective <= group_linf_norm(&g) + 1e-6,
            "objective above the trivial feasible point");
        prop_assert!(sol.selected.len() <= 4);
    }
}
