//! Telemetry contract for Algorithm 1: `approx_select` on a small
//! deterministic model records exactly one decrement-loop span tree plus
//! counters that agree with the returned ε_r trace.
//!
//! This lives in its own integration-test binary (a separate process) so
//! enabling the global registry cannot interfere with other tests.

use pathrep_core::approx::{approx_select, ApproxConfig, Schedule};
use pathrep_linalg::Matrix;

#[test]
fn approx_select_records_one_span_tree_and_matching_counters() {
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();

    // Deterministic 6×4 sensitivity matrix of rank 3: rows are fixed
    // combinations of three independent directions, so rank(A) = 3 and the
    // decrement loop always evaluates r = 3 first and at least r = 2 next.
    let a = Matrix::from_rows(&[
        &[2.0, 0.0, 0.0, 1.0],
        &[0.0, 3.0, 0.0, 1.0],
        &[0.0, 0.0, 2.5, 1.0],
        &[2.0, 3.0, 0.0, 2.0],
        &[2.0, 0.0, 2.5, 2.0],
        &[0.0, 3.0, 2.5, 2.0],
    ])
    .expect("rows are rectangular");
    let mu = [10.0, 11.0, 10.5, 12.0, 12.5, 11.5];
    let cfg = ApproxConfig::new(0.05, 100.0).with_schedule(Schedule::DecrementByOne);

    let sel = approx_select(&a, &mu, &cfg).expect("selection succeeds");
    assert!(sel.rank >= 2, "fixture must exercise the decrement loop");
    assert!(sel.trace.len() >= 2, "rank eval plus at least one decrement");

    let snap = pathrep_obs::registry().snapshot();

    // Exactly one Algorithm-1 span tree: a single `approx_select` root
    // (the factorization's own `svd` span precedes it at root level).
    let roots: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.name == "approx_select")
        .collect();
    assert_eq!(roots.len(), 1, "one approx_select root, got {:?}", snap.spans);
    let root = roots[0];
    assert_eq!(root.count, 1);

    // Its decrement loop: one aggregated `evaluate_candidate` child whose
    // hit count equals the ε_r trace length, each evaluation running one
    // Algorithm-2 subset selection over one pivoted QR.
    let eval = root
        .children
        .iter()
        .find(|c| c.name == "evaluate_candidate")
        .expect("evaluate_candidate nested under approx_select");
    assert_eq!(eval.count, sel.trace.len() as u64);
    let subset = eval
        .children
        .iter()
        .find(|c| c.name == "subset_select")
        .expect("subset_select nested under evaluate_candidate");
    assert_eq!(subset.count, sel.trace.len() as u64);
    let qr = subset
        .children
        .iter()
        .find(|c| c.name == "qr_factor")
        .expect("qr_factor nested under subset_select");
    assert_eq!(qr.count, sel.trace.len() as u64);

    // Counters agree with the returned trace.
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let n = sel.trace.len() as u64;
    assert_eq!(counter("core.approx.evaluations"), n);
    assert_eq!(counter("core.subset.calls"), n);
    assert_eq!(counter("linalg.qr.pivoted_calls"), n);
    assert_eq!(counter("core.approx.selections"), 1);
    assert_eq!(counter("linalg.svd.calls"), 1, "one shared factorization");

    // Gauges mirror the selection result.
    let gauge = |name: &str| -> f64 {
        snap.gauges
            .iter()
            .find(|g| g.name == name)
            .map_or(f64::NAN, |g| g.value)
    };
    assert_eq!(gauge("core.approx.rank"), sel.rank as f64);
    assert_eq!(gauge("core.approx.selected"), sel.selected.len() as f64);
    assert_eq!(gauge("core.approx.epsilon_r"), sel.epsilon_r);

    // The ε_r histogram and per-candidate trace events line up too.
    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "core.approx.epsilon_r")
        .expect("epsilon_r histogram recorded");
    assert_eq!(hist.count, n);
    let trace_events = snap
        .events
        .iter()
        .filter(|e| e.name == "core.approx.trace")
        .count();
    assert_eq!(trace_events as u64, n);
}
