//! Property-based tests for the selection algorithms.

use pathrep_core::approx::{approx_select, ApproxConfig};
use pathrep_core::exact::exact_select;
use pathrep_core::predictor::{MeasurementPredictor, DEFAULT_KAPPA};
use pathrep_core::subset::select_rows;
use pathrep_linalg::svd::Svd;
use pathrep_linalg::{vecops, Matrix};
use proptest::prelude::*;

/// Random "sensitivity" matrices with non-negative entries (delay
/// sensitivities are non-negative) and a guaranteed non-zero first row.
fn sens_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.0..2.0f64, rows * cols).prop_map(move |mut data| {
        data[0] += 0.5; // avoid the all-zero degenerate case
        Matrix::from_vec(rows, cols, data).expect("sized to fit")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn subset_selection_returns_distinct_valid_indices(a in sens_strategy(8, 6), r in 1usize..5) {
        let sel = select_rows(&a, r).expect("selection");
        prop_assert_eq!(sel.len(), r);
        let mut s = sel.clone();
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), r);
        prop_assert!(s.iter().all(|&i| i < 8));
    }

    #[test]
    fn exact_selection_spans_and_recovers(a in sens_strategy(7, 5)) {
        let mu: Vec<f64> = (0..7).map(|i| 100.0 + i as f64).collect();
        let sel = exact_select(&a, &mu, DEFAULT_KAPPA).expect("exact");
        // Theorem 1: every selected-size equals the numerical rank and the
        // residual error is (numerically) zero.
        let rank = Svd::compute(&a).expect("svd").rank(1e-9);
        prop_assert_eq!(sel.selected.len(), rank.max(1));
        for &s in sel.predictor.stds() {
            prop_assert!(s < 1e-5, "exact selection residual {s}");
        }
    }

    #[test]
    fn approx_is_never_larger_than_exact(a in sens_strategy(9, 6)) {
        let mu: Vec<f64> = (0..9).map(|i| 300.0 + i as f64).collect();
        let cfg = ApproxConfig::new(0.05, 400.0);
        let approx = approx_select(&a, &mu, &cfg).expect("approx");
        prop_assert!(approx.selected.len() <= approx.rank);
        prop_assert!(approx.epsilon_r <= 0.05 + 1e-12);
    }

    #[test]
    fn predictor_error_shrinks_with_more_measurements(a in sens_strategy(8, 5)) {
        let mu = vec![100.0; 8];
        let gram = a.matmul(&a.transpose()).expect("gram");
        let (p2, _) = MeasurementPredictor::from_gram(&gram, &mu, &[0, 1], DEFAULT_KAPPA)
            .expect("two");
        let (p4, _) = MeasurementPredictor::from_gram(&gram, &mu, &[0, 1, 2, 3], DEFAULT_KAPPA)
            .expect("four");
        // Compare the shared remaining paths 4..8: more measurements can
        // only reduce the MMSE error.
        let s2: f64 = p2.stds()[2..].iter().sum();
        let s4: f64 = p4.stds().iter().sum();
        prop_assert!(s4 <= s2 + 1e-8, "four-measurement error {s4} above two-measurement {s2}");
    }

    #[test]
    fn predictor_is_exact_on_consistent_data(a in sens_strategy(6, 4)) {
        // For any x, predicting from ALL rows but one reproduces delays that
        // lie in the span when rank permits; at minimum, the predictor is
        // consistent: predicting from the full row set gives zero residual
        // for any remaining path in the row space.
        let mu = vec![50.0; 6];
        let sel = exact_select(&a, &mu, DEFAULT_KAPPA).expect("exact");
        let x: Vec<f64> = (0..4).map(|j| (j as f64 * 0.7).sin()).collect();
        let d: Vec<f64> = (0..6)
            .map(|i| mu[i] + vecops::dot(a.row(i), &x))
            .collect();
        let measured: Vec<f64> = sel.selected.iter().map(|&i| d[i]).collect();
        let pred = sel.predictor.predict(&measured).expect("predict");
        for (k, &m) in sel.remaining.iter().enumerate() {
            prop_assert!((pred[k] - d[m]).abs() < 1e-6);
        }
    }

    #[test]
    fn epsilon_monotone_in_tolerance(a in sens_strategy(9, 6)) {
        let mu = vec![400.0; 9];
        let loose = approx_select(&a, &mu, &ApproxConfig::new(0.2, 500.0)).expect("loose");
        let tight = approx_select(&a, &mu, &ApproxConfig::new(0.01, 500.0)).expect("tight");
        prop_assert!(loose.selected.len() <= tight.selected.len());
    }
}
