//! Post-silicon variation diagnosis — the paper's stated future work
//! ("we also plan to incorporate our framework into post-silicon
//! diagnosis").
//!
//! Once the representative delays of a fabricated chip are measured, the
//! same linear model runs *backwards*: under the standard-normal prior the
//! posterior mean of the variation vector is the minimum-norm solution
//!
//! ```text
//! x̂ = Mᵀ (M Mᵀ)⁺ (d_meas − µ_meas)
//! ```
//!
//! and the fraction of each variable's variance the measurements pin down
//! is `expl_j = m_jᵀ (M Mᵀ)⁺ m_j` (with `m_j` the j-th column of `M`).
//! Variables with a large `|x̂_j|` *and* good observability are systematic
//! deviation suspects — a shifted region points at a spatial process
//! excursion, a shifted per-gate random at a local defect.

use crate::CoreError;
use pathrep_linalg::lstsq;
use pathrep_linalg::{vecops, Matrix};

/// Relative singular-value cutoff for the pseudo-inverse.
const PINV_TOL: f64 = 1e-10;

/// Precomputed back-solver from measured delays to the variation estimate.
#[derive(Debug, Clone)]
pub struct Diagnoser {
    /// `Mᵀ (M Mᵀ)⁺` — maps centered measurements to `x̂`.
    back: Matrix,
    /// Per-variable explained variance fraction in `[0, 1]`.
    explained: Vec<f64>,
    meas_mu: Vec<f64>,
}

/// The diagnosis of one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationDiagnosis {
    x_hat: Vec<f64>,
    explained: Vec<f64>,
}

impl Diagnoser {
    /// Builds the diagnoser for a measurement set with sensitivity matrix
    /// `meas_sens` (`m` × `|x|`) and nominal values `meas_mu`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidArgument`] on dimension mismatch.
    /// * [`CoreError::Linalg`] if the pseudo-inverse fails.
    pub fn new(meas_sens: &Matrix, meas_mu: &[f64]) -> Result<Self, CoreError> {
        if meas_mu.len() != meas_sens.nrows() {
            return Err(CoreError::InvalidArgument {
                what: "meas_mu must match the measurement count".into(),
            });
        }
        let gram = meas_sens.matmul(&meas_sens.transpose())?;
        let pinv = lstsq::pseudo_inverse(&gram, PINV_TOL)?;
        let back = meas_sens.transpose().matmul(&pinv)?;
        // expl_j = m_jᵀ (MMᵀ)⁺ m_j = row_j(back) · col_j(meas_sens).
        let nx = meas_sens.ncols();
        let explained: Vec<f64> = (0..nx)
            .map(|j| {
                let col = meas_sens.col(j);
                vecops::dot(back.row(j), &col).clamp(0.0, 1.0)
            })
            .collect();
        Ok(Diagnoser {
            back,
            explained,
            meas_mu: meas_mu.to_vec(),
        })
    }

    /// Per-variable explained-variance fractions.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained
    }

    /// Diagnoses one chip from its measured delays.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] on a wrong-length input.
    pub fn diagnose(&self, measured: &[f64]) -> Result<VariationDiagnosis, CoreError> {
        if measured.len() != self.meas_mu.len() {
            return Err(CoreError::InvalidArgument {
                what: format!(
                    "expected {} measurements, got {}",
                    self.meas_mu.len(),
                    measured.len()
                ),
            });
        }
        let centered = vecops::sub(measured, &self.meas_mu);
        let x_hat = self.back.matvec(&centered)?;
        Ok(VariationDiagnosis {
            x_hat,
            explained: self.explained.clone(),
        })
    }
}

impl VariationDiagnosis {
    /// The posterior-mean variation estimate `x̂`.
    pub fn x_hat(&self) -> &[f64] {
        &self.x_hat
    }

    /// Suspected systematic deviations: variables with `|x̂_j| > threshold`
    /// and explained variance above `min_observability`, sorted by
    /// descending `|x̂_j|`. Returns `(variable index, x̂_j)` pairs.
    pub fn suspects(&self, threshold: f64, min_observability: f64) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .x_hat
            .iter()
            .enumerate()
            .filter(|&(j, &v)| v.abs() > threshold && self.explained[j] >= min_observability)
            .map(|(j, &v)| (j, v))
            .collect();
        // NaN-total descending order (NaNs last): a poisoned estimate
        // cannot scramble the culprit ranking.
        out.sort_by(|a, b| pathrep_linalg::vecops::cmp_nan_smallest(b.1.abs(), a.1.abs()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrep_linalg::gauss;
    use rand::SeedableRng;

    /// 6 measurements over 10 variables; variables 0..4 are observed
    /// through a generic (full-rank) block, variables 5..9 not at all.
    fn meas_matrix() -> Matrix {
        Matrix::from_fn(6, 10, |i, j| {
            if j < 5 {
                (((i + 1) * (j + 2)) as f64 * 0.7).sin() * 2.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn consistent_measurements_are_reproduced() {
        // M x̂ must equal the centered measurements (x̂ is a solution).
        let m = meas_matrix();
        let mu = vec![100.0; 6];
        let d = Diagnoser::new(&m, &mu).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut x = vec![0.0; 10];
        gauss::fill_standard_normal(&mut rng, &mut x);
        let meas: Vec<f64> = (0..6)
            .map(|i| mu[i] + pathrep_linalg::vecops::dot(m.row(i), &x))
            .collect();
        let diag = d.diagnose(&meas).unwrap();
        let back: Vec<f64> = (0..6)
            .map(|i| pathrep_linalg::vecops::dot(m.row(i), diag.x_hat()))
            .collect();
        for (i, b) in back.iter().enumerate() {
            assert!((b - (meas[i] - mu[i])).abs() < 1e-8);
        }
    }

    #[test]
    fn explained_variance_in_unit_interval_and_sensible() {
        let m = meas_matrix();
        let d = Diagnoser::new(&m, &[0.0; 6]).unwrap();
        for &e in d.explained_variance() {
            assert!((0.0..=1.0).contains(&e));
        }
        // Observed variables beat the unobserved tail (which is exactly 0).
        let strong: f64 = d.explained_variance()[..5].iter().sum::<f64>() / 5.0;
        let weak: f64 = d.explained_variance()[5..].iter().sum::<f64>() / 5.0;
        assert!(strong > 0.5, "observed block explained only {strong}");
        assert!(weak < 1e-9, "unobserved variables must have zero observability");
    }

    #[test]
    fn injected_shift_is_top_suspect() {
        let m = meas_matrix();
        let mu = vec![50.0; 6];
        let d = Diagnoser::new(&m, &mu).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        // Nominal chip noise plus a +5σ excursion on variable 2.
        let mut x = vec![0.0; 10];
        gauss::fill_standard_normal(&mut rng, &mut x);
        for v in x.iter_mut() {
            *v *= 0.3;
        }
        x[2] += 5.0;
        let meas: Vec<f64> = (0..6)
            .map(|i| mu[i] + pathrep_linalg::vecops::dot(m.row(i), &x))
            .collect();
        let diag = d.diagnose(&meas).unwrap();
        let suspects = diag.suspects(2.0, 0.5);
        assert!(!suspects.is_empty(), "shift must be detected");
        assert_eq!(suspects[0].0, 2, "variable 2 must rank first: {suspects:?}");
        assert!(suspects[0].1 > 3.0);
    }

    #[test]
    fn clean_chip_has_no_suspects() {
        let m = meas_matrix();
        let d = Diagnoser::new(&m, &[0.0; 6]).unwrap();
        let diag = d.diagnose(&[0.0; 6]).unwrap();
        assert!(diag.suspects(3.0, 0.1).is_empty());
        assert!(diag.x_hat().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn nan_measurements_cannot_scramble_the_suspect_ranking() {
        // Regression: the descending |x̂| sort used a comparator that
        // reported NaN as "equal", so one poisoned measurement channel
        // could reorder the whole culprit list. NaN estimates are filtered
        // by the threshold test (NaN > t is false) and the total-order sort
        // keeps the finite ranking stable.
        let m = meas_matrix();
        let d = Diagnoser::new(&m, &[0.0; 6]).unwrap();
        let mut meas = [0.5, -0.25, 1.0, 0.0, 0.75, -0.5];
        meas[3] = f64::NAN;
        let diag = d.diagnose(&meas).unwrap();
        let suspects = diag.suspects(0.0, 0.0);
        assert!(
            suspects.iter().all(|(_, v)| !v.is_nan()),
            "NaN estimates must never rank as suspects: {suspects:?}"
        );
        for pair in suspects.windows(2) {
            assert!(
                pair[0].1.abs() >= pair[1].1.abs(),
                "ranking out of order: {suspects:?}"
            );
        }
    }

    #[test]
    fn dimension_checks() {
        let m = meas_matrix();
        assert!(Diagnoser::new(&m, &[0.0; 3]).is_err());
        let d = Diagnoser::new(&m, &[0.0; 6]).unwrap();
        assert!(d.diagnose(&[0.0; 4]).is_err());
    }
}
