//! Sketched Algorithm 1: representative-path selection on sparse models.
//!
//! The dense pipeline ([`crate::exact`] / [`crate::approx`]) computes a
//! full SVD of `A` and the full Gram `G = A·Aᵀ` — both infeasible once
//! `A` has 100k+ rows. This module replaces them with:
//!
//! * a seeded randomized range-finder + sketched SVD
//!   ([`pathrep_linalg::sketch::sketched_svd`]) whose left factor stands
//!   in for `U` in Algorithm 2's pivoted QR (the QR runs only on the
//!   reduced `r × n` sketch, exactly as in the dense path);
//! * the thin cross-Gram `C = A·A_selᵀ` (`n × r`) plus the Gram diagonal
//!   instead of the full `n × n` Gram — the Theorem-2 predictor needs
//!   nothing else ([`MeasurementPredictor::from_cross_gram`]).
//!
//! The sketch is deterministic (fixed seed, sequential Gaussian fill), so
//! results are bit-identical at any `PATHREP_THREADS`, same as the dense
//! kernels. The sketch dimension and power-iteration count come from
//! [`SketchConfig`]; [`sketch_config_from_env`] wires in the
//! `PATHREP_SKETCH_COLS` / `PATHREP_SKETCH_ITERS` environment knobs.

use crate::exact::RANK_TOL;
use crate::predictor::MeasurementPredictor;
use crate::subset::select_rows_from_left;
use crate::CoreError;
use pathrep_linalg::sketch::{sketched_svd, SketchConfig, SketchedSvd};
use pathrep_linalg::sparse::SparseMatrix;

/// Result of sketched selection (both exact-size and tolerance modes).
#[derive(Debug, Clone)]
pub struct SketchSelection {
    /// Indices of the representative paths, in pivot order.
    pub selected: Vec<usize>,
    /// Indices of the remaining (predicted) paths.
    pub remaining: Vec<usize>,
    /// Theorem-2 predictor from representative to remaining paths.
    pub predictor: MeasurementPredictor,
    /// Achieved worst-case error `ε_r` at the configured `t_cons`
    /// (zero in exact mode, where no tolerance is in play).
    pub epsilon_r: f64,
    /// Numerical rank of the sketch (the exact-mode selection size).
    pub rank: usize,
    /// Sketch dimension actually used (`min(l, m, n)`).
    pub sketch_cols: usize,
    /// Power (subspace) iterations performed by the range-finder.
    pub power_iters: usize,
    /// Fraction of `‖A‖_F²` captured by the sketched spectrum.
    pub energy_capture: f64,
    /// `(r, ε_r)` pairs evaluated during the search, in evaluation order.
    pub trace: Vec<(usize, f64)>,
}

/// Configuration for [`sketch_approx_select`].
#[derive(Debug, Clone, PartialEq)]
pub struct SketchApproxConfig {
    /// Error tolerance ε (fraction of `T_cons`), e.g. 0.05.
    pub epsilon: f64,
    /// Timing constraint `T_cons` (ps).
    pub t_cons: f64,
    /// Worst-case multiplier κ.
    pub kappa: f64,
    /// Range-finder parameters (sketch columns, power iterations, seed).
    pub sketch: SketchConfig,
}

impl SketchApproxConfig {
    /// Paper-style defaults (κ = 3) with the environment-driven sketch.
    pub fn new(epsilon: f64, t_cons: f64) -> Self {
        SketchApproxConfig {
            epsilon,
            t_cons,
            kappa: crate::predictor::DEFAULT_KAPPA,
            sketch: sketch_config_from_env(),
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.epsilon <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "epsilon must be positive".into(),
            });
        }
        if self.t_cons <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "t_cons must be positive".into(),
            });
        }
        if self.kappa <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "kappa must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Builds a [`SketchConfig`] from the environment: `PATHREP_SKETCH_COLS`
/// overrides the sketch dimension (unset, blank, unparsable, or zero fall
/// back to the built-in default) and `PATHREP_SKETCH_ITERS` the power
/// iterations (zero is a valid setting — it disables them). The seed is
/// never environment-driven: determinism is part of the contract.
pub fn sketch_config_from_env() -> SketchConfig {
    let mut config = SketchConfig::default();
    if let Some(cols) = env_usize(pathrep_obs::config::ENV_SKETCH_COLS) {
        if cols > 0 {
            config.sketch_cols = cols;
        }
    }
    if let Some(iters) = env_usize(pathrep_obs::config::ENV_SKETCH_ITERS) {
        config.power_iters = iters;
    }
    config
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Exact-mode sketched selection: `r` = numerical rank of the sketch.
///
/// The sketched analogue of [`crate::exact::exact_select`]: when the
/// sketch captures the full spectrum (energy capture ≈ 1), the selection
/// and predictor coincide with the dense exact path up to pivot ties.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] on mismatched `mu` / bad κ.
/// * [`CoreError::Linalg`] on factorization failure (including a
///   non-finite input to the sketch).
pub fn sketch_exact_select(
    a: &SparseMatrix,
    mu: &[f64],
    kappa: f64,
    sketch: &SketchConfig,
) -> Result<SketchSelection, CoreError> {
    let _span = pathrep_obs::span!("sketch_exact_select");
    if mu.len() != a.nrows() {
        return Err(CoreError::InvalidArgument {
            what: "mean vector must match the row count of A".into(),
        });
    }
    if kappa <= 0.0 {
        return Err(CoreError::InvalidArgument {
            what: "kappa must be positive".into(),
        });
    }
    let sk = sketched_svd(a, sketch)?;
    let diag = a.gram_diag();
    let rank = sk.svd().rank(RANK_TOL).max(1);
    let (selected, predictor, remaining) = evaluate_candidate(a, &sk, &diag, mu, rank, kappa)?;
    let trace = vec![(rank, 0.0)];
    record_outcome("sketch_exact_select", &sk, rank, selected.len(), 0.0, &trace);
    Ok(SketchSelection {
        selected,
        remaining,
        predictor,
        epsilon_r: 0.0,
        rank,
        sketch_cols: sk.sketch_cols(),
        power_iters: sk.power_iters(),
        energy_capture: sk.energy_capture(),
        trace,
    })
}

/// Tolerance-mode sketched selection: Algorithm 1's bisection over `r`,
/// evaluating each candidate with the sketched subspace and the thin
/// cross-Gram predictor. Mirrors [`crate::approx::approx_select`] with
/// the bisection schedule.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for bad configuration or mismatched
///   inputs.
/// * [`CoreError::Linalg`] on factorization failure.
pub fn sketch_approx_select(
    a: &SparseMatrix,
    mu: &[f64],
    config: &SketchApproxConfig,
) -> Result<SketchSelection, CoreError> {
    let _span = pathrep_obs::span!("sketch_approx_select");
    config.validate()?;
    if mu.len() != a.nrows() {
        return Err(CoreError::InvalidArgument {
            what: "mean vector must match the row count of A".into(),
        });
    }
    let sk = sketched_svd(a, &config.sketch)?;
    let diag = a.gram_diag();
    let rank = sk.svd().rank(RANK_TOL).max(1);
    let mut trace: Vec<(usize, f64)> = Vec::new();

    let mut evaluate = |r: usize| -> Result<
        (Vec<usize>, MeasurementPredictor, Vec<usize>, f64),
        CoreError,
    > {
        let _span = pathrep_obs::span!("evaluate_candidate");
        let (selected, predictor, remaining) =
            evaluate_candidate(a, &sk, &diag, mu, r, config.kappa)?;
        let eps = if remaining.is_empty() {
            0.0
        } else {
            predictor.epsilon(config.t_cons)
        };
        trace.push((r, eps));
        pathrep_obs::counter_add("core.sketch.evaluations", 1);
        Ok((selected, predictor, remaining, eps))
    };

    let mut best = evaluate(rank)?;
    if best.3 <= config.epsilon {
        // Bisection on the (empirically monotone) error-vs-r curve, as in
        // the dense Algorithm 1.
        let mut lo = 1usize;
        let mut hi = rank;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let cand = evaluate(mid)?;
            if cand.3 <= config.epsilon {
                best = cand;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        while best.3 > config.epsilon && best.0.len() < rank {
            best = evaluate(best.0.len() + 1)?;
        }
    } else {
        pathrep_obs::warn("core.sketch.tolerance_unmet", || {
            format!(
                "sketch-rank selection (r={rank}) already exceeds tolerance: \
                 epsilon_r={:.6e} > epsilon={:.6e}",
                best.3, config.epsilon
            )
        });
    }

    let (selected, predictor, remaining, epsilon_r) = best;
    record_outcome(
        "sketch_approx_select",
        &sk,
        rank,
        selected.len(),
        epsilon_r,
        &trace,
    );
    Ok(SketchSelection {
        selected,
        remaining,
        predictor,
        epsilon_r,
        rank,
        sketch_cols: sk.sketch_cols(),
        power_iters: sk.power_iters(),
        energy_capture: sk.energy_capture(),
        trace,
    })
}

/// One Algorithm-2 + Theorem-2 evaluation at a candidate `r`, entirely
/// from sparse building blocks: pivoted QR on the sketched left factor,
/// then the thin cross-Gram `C = A·A_selᵀ` for the predictor.
fn evaluate_candidate(
    a: &SparseMatrix,
    sk: &SketchedSvd,
    diag: &[f64],
    mu: &[f64],
    r: usize,
    kappa: f64,
) -> Result<(Vec<usize>, MeasurementPredictor, Vec<usize>), CoreError> {
    let selected = select_rows_from_left(sk.svd(), a.nrows(), r)?;
    let a_sel = a.select_rows_dense(&selected)?;
    let cross = a.matmul_dense(&a_sel.transpose())?;
    let (predictor, remaining) =
        MeasurementPredictor::from_cross_gram(&cross, diag, mu, &selected, kappa)?;
    Ok((selected, predictor, remaining))
}

fn record_outcome(
    name: &'static str,
    sk: &SketchedSvd,
    rank: usize,
    selected: usize,
    epsilon_r: f64,
    trace: &[(usize, f64)],
) {
    pathrep_obs::counter_add("core.sketch.selections", 1);
    pathrep_obs::gauge_set("core.sketch.rank", rank as f64);
    pathrep_obs::gauge_set("core.sketch.selected", selected as f64);
    pathrep_obs::gauge_set("core.sketch.energy_capture", sk.energy_capture());
    if !pathrep_obs::ledger::collecting() {
        return;
    }
    let r_trace: Vec<f64> = trace.iter().map(|&(r, _)| r as f64).collect();
    let eps_trace: Vec<f64> = trace.iter().map(|&(_, e)| e).collect();
    pathrep_obs::ledger::record("core", name, |f| {
        f.int("rank", rank as u64)
            .int("selected", selected as u64)
            .int("sketch_cols", sk.sketch_cols() as u64)
            .int("power_iters", sk.power_iters() as u64)
            .num("energy_capture", sk.energy_capture())
            .num("epsilon_r", epsilon_r)
            .nums("r_trace", &r_trace)
            .nums("epsilon_r_trace", &eps_trace);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approx_select, ApproxConfig};
    use crate::exact::exact_select;
    use crate::predictor::DEFAULT_KAPPA;
    use pathrep_linalg::Matrix;
    use rand::{Rng, SeedableRng};

    /// Dense low-effective-rank model (same shape as the approx.rs
    /// fixture) and its sparse mirror.
    fn model(n: usize, noise: f64) -> (Matrix, SparseMatrix, Vec<f64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let nx = n + 2;
        let a = Matrix::from_fn(n, nx, |i, j| {
            if j == 0 {
                8.0 * ((i as f64 * 0.3).sin() + 1.5)
            } else if j == 1 {
                6.0 * ((i as f64 * 0.7).cos() + 1.2)
            } else if j == i + 2 {
                noise * rng.gen_range(0.5..1.5)
            } else {
                0.0
            }
        });
        let sparse = SparseMatrix::from_dense(&a);
        let mu = (0..n).map(|i| 400.0 + i as f64).collect();
        (a, sparse, mu)
    }

    fn full_sketch(n: usize) -> SketchConfig {
        // Sketch wide enough to capture the whole spectrum: parity with
        // the dense path is then exact up to rounding.
        SketchConfig {
            sketch_cols: n,
            ..SketchConfig::default()
        }
    }

    #[test]
    fn exact_mode_matches_dense_exact_selection() {
        let (dense, sparse, mu) = model(30, 0.4);
        let d = exact_select(&dense, &mu, DEFAULT_KAPPA).unwrap();
        let s = sketch_exact_select(&sparse, &mu, DEFAULT_KAPPA, &full_sketch(30)).unwrap();
        assert_eq!(s.rank, d.rank, "sketch rank disagrees with dense rank");
        let mut ds = d.selected.clone();
        let mut ss = s.selected.clone();
        ds.sort_unstable();
        ss.sort_unstable();
        assert_eq!(ds, ss, "selection sets disagree");
        assert!(s.energy_capture > 0.999, "capture {}", s.energy_capture);
    }

    #[test]
    fn exact_mode_predicts_remaining_paths() {
        use pathrep_linalg::gauss;
        let (dense, sparse, mu) = model(20, 0.3);
        let s = sketch_exact_select(&sparse, &mu, DEFAULT_KAPPA, &full_sketch(20)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let mut x = vec![0.0; dense.ncols()];
            gauss::fill_standard_normal(&mut rng, &mut x);
            let d_all: Vec<f64> = (0..dense.nrows())
                .map(|i| mu[i] + pathrep_linalg::vecops::dot(dense.row(i), &x))
                .collect();
            let measured: Vec<f64> = s.selected.iter().map(|&i| d_all[i]).collect();
            let pred = s.predictor.predict(&measured).unwrap();
            for (k, &m) in s.remaining.iter().enumerate() {
                assert!(
                    (pred[k] - d_all[m]).abs() < 1e-6,
                    "path {m} predicted {} truth {}",
                    pred[k],
                    d_all[m]
                );
            }
        }
    }

    #[test]
    fn approx_mode_matches_dense_algorithm_one() {
        let (dense, sparse, mu) = model(40, 0.2);
        let dense_sel = approx_select(&dense, &mu, &ApproxConfig::new(0.05, 500.0)).unwrap();
        let mut cfg = SketchApproxConfig::new(0.05, 500.0);
        cfg.sketch = full_sketch(40);
        let sketch_sel = sketch_approx_select(&sparse, &mu, &cfg).unwrap();
        assert_eq!(
            sketch_sel.selected.len(),
            dense_sel.selected.len(),
            "selection sizes disagree (dense eps {}, sketch eps {})",
            dense_sel.epsilon_r,
            sketch_sel.epsilon_r
        );
        assert!(sketch_sel.epsilon_r <= 0.05 + 1e-12);
        assert!(
            (sketch_sel.epsilon_r - dense_sel.epsilon_r).abs() < 1e-6,
            "epsilon_r diverged: dense {} sketch {}",
            dense_sel.epsilon_r,
            sketch_sel.epsilon_r
        );
    }

    #[test]
    fn narrow_sketch_still_selects_within_tolerance() {
        // A sketch far below n still captures the two dominant directions,
        // so the tolerance is met with a handful of paths.
        let (_, sparse, mu) = model(60, 0.1);
        let mut cfg = SketchApproxConfig::new(0.05, 500.0);
        cfg.sketch = SketchConfig {
            sketch_cols: 12,
            ..SketchConfig::default()
        };
        let sel = sketch_approx_select(&sparse, &mu, &cfg).unwrap();
        assert!(sel.selected.len() <= 12);
        assert!(sel.epsilon_r <= 0.05 + 1e-12, "epsilon_r {}", sel.epsilon_r);
        assert!(sel.sketch_cols == 12);
    }

    #[test]
    fn deterministic_across_runs() {
        let (_, sparse, mu) = model(30, 0.3);
        let cfg = SketchApproxConfig::new(0.05, 500.0);
        let a = sketch_approx_select(&sparse, &mu, &cfg).unwrap();
        let b = sketch_approx_select(&sparse, &mu, &cfg).unwrap();
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.epsilon_r.to_bits(), b.epsilon_r.to_bits());
        assert_eq!(a.energy_capture.to_bits(), b.energy_capture.to_bits());
    }

    #[test]
    fn bad_config_rejected() {
        let (_, sparse, mu) = model(10, 0.2);
        assert!(sketch_approx_select(&sparse, &mu, &SketchApproxConfig::new(0.0, 500.0)).is_err());
        assert!(sketch_approx_select(&sparse, &mu, &SketchApproxConfig::new(0.05, 0.0)).is_err());
        let mut cfg = SketchApproxConfig::new(0.05, 500.0);
        cfg.kappa = -1.0;
        assert!(sketch_approx_select(&sparse, &mu, &cfg).is_err());
        assert!(sketch_approx_select(&sparse, &mu[..2], &SketchApproxConfig::new(0.05, 500.0))
            .is_err());
        assert!(sketch_exact_select(&sparse, &mu, -1.0, &SketchConfig::default()).is_err());
        assert!(sketch_exact_select(&sparse, &mu[..2], 3.0, &SketchConfig::default()).is_err());
    }

    #[test]
    fn env_knobs_override_defaults() {
        // Serialize against any other env-reading test via a named lock.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        let cols_var = pathrep_obs::config::ENV_SKETCH_COLS;
        let iters_var = pathrep_obs::config::ENV_SKETCH_ITERS;
        std::env::remove_var(cols_var);
        std::env::remove_var(iters_var);
        let base = sketch_config_from_env();
        assert_eq!(base, SketchConfig::default());
        std::env::set_var(cols_var, "48");
        std::env::set_var(iters_var, "0");
        let tuned = sketch_config_from_env();
        assert_eq!(tuned.sketch_cols, 48);
        assert_eq!(tuned.power_iters, 0, "zero power iterations is valid");
        // Zero / garbage sketch-cols fall back to the default.
        std::env::set_var(cols_var, "0");
        assert_eq!(sketch_config_from_env().sketch_cols, base.sketch_cols);
        std::env::set_var(cols_var, "lots");
        assert_eq!(sketch_config_from_env().sketch_cols, base.sketch_cols);
        std::env::remove_var(cols_var);
        std::env::remove_var(iters_var);
    }
}
