//! Section 6.3: guard-band analysis for post-silicon failure detection.
//!
//! For a predicted path delay `d̂ᵢ` with per-path relative error bound
//! `εᵢ` (so that `|d̂ᵢ − dᵢ| ≤ εᵢ·T_cons`... more precisely the paper uses
//! the multiplicative rule: path `i` is flagged as failing when
//! `d̂ᵢ / (1 − εᵢ) > T_cons`). The guard-band `φᵢ = εᵢ·T_cons` is the slack
//! one must keep to declare a *pass* with full confidence.

use serde::{Deserialize, Serialize};

/// One path's guard-banded classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardBandVerdict {
    /// Predicted delay clears the constraint even with the guard-band:
    /// confidently passing.
    Pass,
    /// Predicted delay violates the constraint by more than the guard-band:
    /// confidently failing.
    Fail,
    /// Within the guard-band: must be validated by direct measurement.
    Uncertain,
}

/// Classifies a predicted path delay with per-path relative error `eps_i`.
///
/// * `Fail` when `pred / (1 + eps_i) > t_cons` — even the most optimistic
///   true delay violates timing.
/// * `Pass` when `pred / (1 − eps_i) ≤ t_cons` — even the most pessimistic
///   true delay meets timing (the paper's flag rule, inverted).
/// * `Uncertain` otherwise.
///
/// # Panics
///
/// Panics unless `0 ≤ eps_i < 1` and `t_cons > 0`.
pub fn classify(pred: f64, eps_i: f64, t_cons: f64) -> GuardBandVerdict {
    assert!((0.0..1.0).contains(&eps_i), "eps_i must lie in [0,1)");
    assert!(t_cons > 0.0, "t_cons must be positive");
    if pred / (1.0 + eps_i) > t_cons {
        GuardBandVerdict::Fail
    } else if pred / (1.0 - eps_i) <= t_cons {
        GuardBandVerdict::Pass
    } else {
        GuardBandVerdict::Uncertain
    }
}

/// Aggregate outcome of validating guard-banded predictions against ground
/// truth over a set of paths × samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GuardBandOutcome {
    /// Confident verdicts that matched the truth.
    pub confident_correct: usize,
    /// Confident verdicts that contradicted the truth (should be ~0 when
    /// `eps_i` really bounds the error).
    pub confident_wrong: usize,
    /// Paths deferred to direct measurement.
    pub uncertain: usize,
}

impl GuardBandOutcome {
    /// Records one (prediction, truth) pair.
    pub fn record(&mut self, pred: f64, truth: f64, eps_i: f64, t_cons: f64) {
        let verdict = classify(pred, eps_i, t_cons);
        let fails = truth > t_cons;
        match verdict {
            GuardBandVerdict::Uncertain => self.uncertain += 1,
            GuardBandVerdict::Fail => {
                if fails {
                    self.confident_correct += 1;
                } else {
                    self.confident_wrong += 1;
                }
            }
            GuardBandVerdict::Pass => {
                if fails {
                    self.confident_wrong += 1;
                } else {
                    self.confident_correct += 1;
                }
            }
        }
    }

    /// Total classified pairs.
    pub fn total(&self) -> usize {
        self.confident_correct + self.confident_wrong + self.uncertain
    }

    /// Fraction of pairs resolved without direct measurement.
    pub fn decisiveness(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        1.0 - self.uncertain as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_cases() {
        // 10 % guard-band around T = 100.
        assert_eq!(classify(120.0, 0.1, 100.0), GuardBandVerdict::Fail);
        assert_eq!(classify(80.0, 0.1, 100.0), GuardBandVerdict::Pass);
        assert_eq!(classify(100.0, 0.1, 100.0), GuardBandVerdict::Uncertain);
    }

    #[test]
    fn zero_guardband_is_decisive() {
        assert_eq!(classify(100.1, 0.0, 100.0), GuardBandVerdict::Fail);
        assert_eq!(classify(99.9, 0.0, 100.0), GuardBandVerdict::Pass);
    }

    #[test]
    fn confident_verdicts_never_wrong_when_bound_holds() {
        // If |pred − truth| ≤ eps·T genuinely holds (multiplicatively:
        // truth ∈ [pred/(1+eps), pred/(1−eps)]), a confident verdict is
        // always correct.
        let t = 100.0;
        let eps = 0.05;
        let mut outcome = GuardBandOutcome::default();
        for k in 0..2000 {
            let truth = 80.0 + 0.02 * k as f64; // 80 .. 120
            // Worst-case adversarial predictions at both bound edges.
            for pred in [truth * (1.0 - eps), truth * (1.0 + eps)] {
                outcome.record(pred, truth, eps, t);
            }
        }
        assert_eq!(outcome.confident_wrong, 0, "guard-band failed: {outcome:?}");
        assert!(outcome.confident_correct > 0);
        assert!(outcome.uncertain > 0, "near-threshold cases must defer");
    }

    #[test]
    fn decisiveness_fraction() {
        let mut o = GuardBandOutcome::default();
        o.record(120.0, 121.0, 0.1, 100.0); // confident fail, correct
        o.record(100.0, 99.0, 0.1, 100.0); // uncertain
        assert_eq!(o.total(), 2);
        assert!((o.decisiveness() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "eps_i")]
    fn eps_domain_checked() {
        let _ = classify(1.0, 1.0, 100.0);
    }
}
