//! Shared factorizations of the sensitivity matrix `A`.
//!
//! Every selection algorithm needs the SVD of `A` (Algorithm 2, effective
//! rank) and the Gram matrix `A·Aᵀ` (Theorem-2 error evaluation). Both are
//! the most expensive computations in the whole pipeline, so they are
//! computed once here and shared across exact, approximate and hybrid
//! selection.

use crate::CoreError;
use pathrep_linalg::svd::Svd;
use pathrep_linalg::Matrix;

/// Precomputed SVD and Gram matrix of a sensitivity matrix `A`.
#[derive(Debug, Clone)]
pub struct ModelFactors {
    svd: Svd,
    gram: Matrix,
}

impl ModelFactors {
    /// Computes both factorizations.
    ///
    /// The SVD is left-only ([`Svd::compute_left`]): every selection
    /// algorithm reads the spectrum and pivots on `U`, but none touches
    /// `V`, so the right-hand accumulation is skipped. `U` and the
    /// singular values are bit-identical to the full decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Linalg`] on factorization failure.
    pub fn compute(a: &Matrix) -> Result<Self, CoreError> {
        let svd = Svd::compute_left(a)?;
        let gram = a.matmul(&a.transpose())?;
        Ok(ModelFactors { svd, gram })
    }

    /// The SVD of `A`.
    pub fn svd(&self) -> &Svd {
        &self.svd
    }

    /// The Gram matrix `A·Aᵀ`.
    pub fn gram(&self) -> &Matrix {
        &self.gram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let f = ModelFactors::compute(&a).unwrap();
        assert_eq!(f.gram().shape(), (3, 3));
        // Gram eigenvalues are squared singular values.
        let s = f.svd().singular_values();
        let tr: f64 = (0..3).map(|i| f.gram()[(i, i)]).sum();
        let ssq: f64 = s.iter().map(|x| x * x).sum();
        assert!((tr - ssq).abs() < 1e-10);
    }
}
