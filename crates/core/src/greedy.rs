//! Greedy representative-path selection — the natural baseline to the
//! paper's Algorithm 2.
//!
//! Instead of the SVD + QR-with-column-pivoting subset selection, greedily
//! add the path whose current prediction error is largest (equivalently,
//! whose delay the current representatives explain worst) until the
//! tolerance holds. Each step is optimal *myopically*; the paper's
//! rank-revealing selection optimizes the subspace jointly. The
//! `ablation_greedy` bench compares both on selection size and runtime.
//!
//! The incremental errors come from a Cholesky-style update of the
//! conditional variances: after adding path `j`, every remaining variance
//! shrinks by the squared normalized covariance with `j`'s residual —
//! an `O(n²)` sweep per step on the Gram matrix, no refactorization.

use crate::predictor::MeasurementPredictor;
use crate::CoreError;
use pathrep_linalg::Matrix;

/// Result of greedy selection.
#[derive(Debug, Clone)]
pub struct GreedySelection {
    /// Selected path indices, in pick order (most informative first).
    pub selected: Vec<usize>,
    /// Remaining (predicted) paths.
    pub remaining: Vec<usize>,
    /// Theorem-2 predictor from the selected to the remaining paths.
    pub predictor: MeasurementPredictor,
    /// Achieved worst-case error.
    pub epsilon_r: f64,
}

/// Greedily selects representative paths until `κ·std ≤ ε·T_cons` for every
/// remaining path (or everything is selected).
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for inconsistent inputs.
/// * [`CoreError::Linalg`] if the final predictor construction fails.
pub fn greedy_select(
    a: &Matrix,
    mu: &[f64],
    epsilon: f64,
    t_cons: f64,
    kappa: f64,
) -> Result<GreedySelection, CoreError> {
    let n = a.nrows();
    if mu.len() != n {
        return Err(CoreError::InvalidArgument {
            what: "mean vector must match the row count of A".into(),
        });
    }
    if epsilon <= 0.0 || t_cons <= 0.0 || kappa <= 0.0 {
        return Err(CoreError::InvalidArgument {
            what: "epsilon, t_cons and kappa must be positive".into(),
        });
    }
    let budget_var = (epsilon * t_cons / kappa).powi(2);

    // Residual covariance: starts at the Gram matrix; after selecting j,
    // C ← C − C_:j C_j: / C_jj (conditioning on path j's delay).
    let mut c = a.matmul(&a.transpose())?;
    let mut picked = vec![false; n];
    let mut selected: Vec<usize> = Vec::new();
    loop {
        // Worst-explained remaining path.
        let mut worst = None;
        let mut worst_var = budget_var;
        for i in 0..n {
            if !picked[i] && c[(i, i)] > worst_var {
                worst_var = c[(i, i)];
                worst = Some(i);
            }
        }
        let Some(j) = worst else { break };
        // Guard: a numerically zero pivot cannot reduce anything.
        let pivot = c[(j, j)];
        if pivot <= 1e-12 {
            break;
        }
        picked[j] = true;
        selected.push(j);
        if selected.len() == n {
            break;
        }
        // Rank-one conditioning update.
        let col: Vec<f64> = (0..n).map(|i| c[(i, j)]).collect();
        for (i, &ci) in col.iter().enumerate() {
            if ci == 0.0 {
                continue;
            }
            let scale = ci / pivot;
            for (k, &ck) in col.iter().enumerate() {
                c[(i, k)] -= scale * ck;
            }
        }
    }
    if selected.is_empty() {
        // Even with zero measurements every path is within budget; keep one
        // representative so the protocol is non-degenerate.
        selected.push(0);
    }

    let gram = a.matmul(&a.transpose())?;
    let (predictor, remaining) = MeasurementPredictor::from_gram(&gram, mu, &selected, kappa)?;
    let epsilon_r = if remaining.is_empty() {
        0.0
    } else {
        predictor.epsilon(t_cons)
    };
    Ok(GreedySelection {
        selected,
        remaining,
        predictor,
        epsilon_r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approx_select, ApproxConfig};
    use rand::{Rng, SeedableRng};

    fn random_model(n: usize, nx: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Two dominant shared directions plus per-path noise.
        let a = Matrix::from_fn(n, nx, |i, j| {
            if j == 0 {
                6.0 + (i as f64 * 0.3).sin()
            } else if j == 1 {
                4.0 * (i as f64 * 0.5).cos()
            } else if j == i % nx {
                rng.gen_range(0.3..1.5)
            } else {
                0.0
            }
        });
        let mu = (0..n).map(|i| 500.0 + i as f64).collect();
        (a, mu)
    }

    #[test]
    fn meets_the_tolerance() {
        let (a, mu) = random_model(20, 24, 1);
        let sel = greedy_select(&a, &mu, 0.05, 600.0, 3.0).unwrap();
        assert!(sel.epsilon_r <= 0.05 + 1e-9, "eps_r = {}", sel.epsilon_r);
        assert_eq!(sel.selected.len() + sel.remaining.len(), 20);
    }

    #[test]
    fn conditioning_update_matches_fresh_predictor() {
        // The greedy internal variances must agree with the Theorem-2
        // predictor built from scratch on the same selection.
        let (a, mu) = random_model(12, 15, 2);
        let sel = greedy_select(&a, &mu, 0.02, 600.0, 3.0).unwrap();
        // The reported epsilon comes from a fresh from_gram predictor; the
        // greedy loop stopped because all conditional stds were in budget.
        // Those two accountings must agree:
        assert!(sel.epsilon_r <= 0.02 + 1e-9);
    }

    #[test]
    fn comparable_to_algorithm_one() {
        // Greedy is myopic: it may pick more paths than Algorithm 1, but
        // should stay within a small factor on well-structured models.
        let (a, mu) = random_model(30, 34, 3);
        let greedy = greedy_select(&a, &mu, 0.05, 600.0, 3.0).unwrap();
        let algo1 = approx_select(&a, &mu, &ApproxConfig::new(0.05, 600.0)).unwrap();
        assert!(
            greedy.selected.len() <= 2 * algo1.selected.len() + 2,
            "greedy {} vs algo1 {}",
            greedy.selected.len(),
            algo1.selected.len()
        );
    }

    #[test]
    fn loose_tolerance_selects_one() {
        let (a, mu) = random_model(10, 14, 4);
        let sel = greedy_select(&a, &mu, 10.0, 600.0, 3.0).unwrap();
        assert_eq!(sel.selected.len(), 1);
    }

    #[test]
    fn pick_order_is_most_informative_first() {
        let (a, mu) = random_model(15, 18, 5);
        let sel = greedy_select(&a, &mu, 0.01, 600.0, 3.0).unwrap();
        // The first pick must be the largest-variance path.
        let gram = a.matmul(&a.transpose()).unwrap();
        let first_var = gram[(sel.selected[0], sel.selected[0])];
        for i in 0..15 {
            assert!(gram[(i, i)] <= first_var + 1e-9);
        }
    }

    #[test]
    fn input_validation() {
        let (a, mu) = random_model(5, 8, 6);
        assert!(greedy_select(&a, &mu[..2], 0.05, 600.0, 3.0).is_err());
        assert!(greedy_select(&a, &mu, 0.0, 600.0, 3.0).is_err());
        assert!(greedy_select(&a, &mu, 0.05, 0.0, 3.0).is_err());
    }
}
