//! Algorithm 1: approximate representative-path selection with tolerance ε.
//!
//! Starting from the exact size `r = rank(A)` (error 0), the algorithm
//! shrinks `r` as long as the analytic worst-case error `ε_r` (Theorem 2 /
//! Eqn 7) stays within the tolerance. The effective rank of `A` explains
//! *why* `r` can shrink far below `rank(A)`: when the singular values decay
//! fast, a few dominant directions carry almost all delay variance.
//!
//! Two search schedules are provided: the paper's decrement-by-one loop and
//! a bisection that exploits the (empirically monotone) error-vs-`r` curve,
//! reducing the number of error evaluations from `O(rank)` to `O(log rank)`.

use crate::exact::RANK_TOL;
use crate::factors::ModelFactors;
use crate::predictor::MeasurementPredictor;
use crate::subset::select_rows_with_svd;
use crate::CoreError;
use pathrep_linalg::Matrix;

/// Search schedule for Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// The paper's loop: decrement `r` by one until the tolerance breaks.
    DecrementByOne,
    /// Bisection on `r` (assumes the error is monotone in `r`; verified
    /// and repaired if the assumption fails at the answer).
    Bisection,
}

/// Result of approximate selection.
#[derive(Debug, Clone)]
pub struct ApproxSelection {
    /// Indices of the representative paths.
    pub selected: Vec<usize>,
    /// Indices of the remaining (predicted) paths.
    pub remaining: Vec<usize>,
    /// Theorem-2 predictor from representative to remaining paths.
    pub predictor: MeasurementPredictor,
    /// Achieved worst-case error `ε_r` (≤ the requested tolerance).
    pub epsilon_r: f64,
    /// `rank(A)` (the exact-selection size).
    pub rank: usize,
    /// Effective rank of `A` at the configured η.
    pub effective_rank: usize,
    /// `(r, ε_r)` pairs evaluated during the search, in evaluation order.
    pub trace: Vec<(usize, f64)>,
}

/// Configuration for [`approx_select`].
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxConfig {
    /// Error tolerance ε (fraction of `T_cons`), e.g. 0.05.
    pub epsilon: f64,
    /// Timing constraint `T_cons` (ps).
    pub t_cons: f64,
    /// Worst-case multiplier κ.
    pub kappa: f64,
    /// Search schedule.
    pub schedule: Schedule,
    /// Effective-rank energy threshold η (diagnostic only).
    pub eta: f64,
}

impl ApproxConfig {
    /// Paper-style defaults: κ = 3, bisection schedule, η = 5 %.
    pub fn new(epsilon: f64, t_cons: f64) -> Self {
        ApproxConfig {
            epsilon,
            t_cons,
            kappa: crate::predictor::DEFAULT_KAPPA,
            schedule: Schedule::Bisection,
            eta: 0.05,
        }
    }

    /// Sets the schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.epsilon <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "epsilon must be positive".into(),
            });
        }
        if self.t_cons <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "t_cons must be positive".into(),
            });
        }
        if self.kappa <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "kappa must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Runs Algorithm 1 on the delay model `(A, µ)`.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for bad configuration or mismatched
///   inputs.
/// * [`CoreError::Linalg`] on factorization failure.
pub fn approx_select(a: &Matrix, mu: &[f64], config: &ApproxConfig) -> Result<ApproxSelection, CoreError> {
    let factors = ModelFactors::compute(a)?;
    approx_select_with(a, mu, config, &factors)
}

/// [`approx_select`] with precomputed factorizations.
///
/// # Errors
///
/// Same as [`approx_select`].
pub fn approx_select_with(
    a: &Matrix,
    mu: &[f64],
    config: &ApproxConfig,
    factors: &ModelFactors,
) -> Result<ApproxSelection, CoreError> {
    let _span = pathrep_obs::span!("approx_select");
    config.validate()?;
    if mu.len() != a.nrows() {
        return Err(CoreError::InvalidArgument {
            what: "mean vector must match the row count of A".into(),
        });
    }
    let svd = factors.svd();
    let gram = factors.gram();
    let rank = svd.rank(RANK_TOL).max(1);
    let effective_rank = svd.effective_rank(config.eta)?;
    let mut trace: Vec<(usize, f64)> = Vec::new();

    // Evaluate one candidate r: Algorithm 2 selection + Theorem 2 error.
    let mut evaluate = |r: usize| -> Result<(Vec<usize>, MeasurementPredictor, Vec<usize>, f64), CoreError> {
        let _span = pathrep_obs::span!("evaluate_candidate");
        let selected = select_rows_with_svd(a, svd, r)?;
        let (predictor, remaining) =
            MeasurementPredictor::from_gram(gram, mu, &selected, config.kappa)?;
        let eps = if remaining.is_empty() {
            0.0
        } else {
            predictor.epsilon(config.t_cons)
        };
        trace.push((r, eps));
        pathrep_obs::counter_add("core.approx.evaluations", 1);
        pathrep_obs::histogram_record("core.approx.epsilon_r", eps);
        pathrep_obs::info("core.approx.trace", || format!("r={r} epsilon_r={eps:.6e}"));
        Ok((selected, predictor, remaining, eps))
    };

    let mut best = evaluate(rank)?;
    if best.3 > config.epsilon {
        // Even the exact-size selection misses the tolerance (possible only
        // through rank rounding); accept it as the most conservative answer.
        let (selected, predictor, remaining, epsilon_r) = best;
        pathrep_obs::warn("core.approx.tolerance_unmet", || {
            format!(
                "exact-size selection (r={rank}) already exceeds tolerance: \
                 epsilon_r={epsilon_r:.6e} > epsilon={:.6e}",
                config.epsilon
            )
        });
        record_outcome(rank, effective_rank, selected.len(), epsilon_r, config.epsilon, &trace, false);
        return Ok(ApproxSelection {
            selected,
            remaining,
            predictor,
            epsilon_r,
            rank,
            effective_rank,
            trace,
        });
    }

    match config.schedule {
        Schedule::DecrementByOne => {
            let mut r = rank;
            while r > 1 {
                let cand = evaluate(r - 1)?;
                if cand.3 <= config.epsilon {
                    best = cand;
                    r -= 1;
                } else {
                    break;
                }
            }
        }
        Schedule::Bisection => {
            let mut lo = 1usize;
            let mut hi = rank;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let cand = evaluate(mid)?;
                if cand.3 <= config.epsilon {
                    best = cand;
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            // Monotonicity repair: if the found r somehow violates the
            // tolerance (never observed), walk upward until it holds.
            while best.3 > config.epsilon && best.0.len() < rank {
                best = evaluate(best.0.len() + 1)?;
            }
        }
    }

    let (selected, predictor, remaining, epsilon_r) = best;
    record_outcome(rank, effective_rank, selected.len(), epsilon_r, config.epsilon, &trace, true);
    Ok(ApproxSelection {
        selected,
        remaining,
        predictor,
        epsilon_r,
        rank,
        effective_rank,
        trace,
    })
}

/// Final Algorithm-1 telemetry, shared by both exits. `accepted` says
/// whether the returned selection meets the pre-specified tolerance ε;
/// `trace` is the full `r`-decrement evaluation history `(r, ε_r)`.
fn record_outcome(
    rank: usize,
    effective_rank: usize,
    selected: usize,
    epsilon_r: f64,
    epsilon: f64,
    trace: &[(usize, f64)],
    accepted: bool,
) {
    pathrep_obs::counter_add("core.approx.selections", 1);
    pathrep_obs::gauge_set("core.approx.rank", rank as f64);
    pathrep_obs::gauge_set("core.approx.effective_rank", effective_rank as f64);
    pathrep_obs::gauge_set("core.approx.selected", selected as f64);
    pathrep_obs::gauge_set("core.approx.epsilon_r", epsilon_r);
    if !pathrep_obs::ledger::collecting() {
        return;
    }
    let r_trace: Vec<f64> = trace.iter().map(|&(r, _)| r as f64).collect();
    let eps_trace: Vec<f64> = trace.iter().map(|&(_, e)| e).collect();
    pathrep_obs::ledger::record("core", "approx_select", |f| {
        f.int("rank", rank as u64)
            .int("effective_rank", effective_rank as u64)
            .int("selected", selected as u64)
            .num("epsilon_r", epsilon_r)
            .num("epsilon", epsilon)
            .flag("accepted", accepted)
            .nums("r_trace", &r_trace)
            .nums("epsilon_r_trace", &eps_trace);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// A delay model with two dominant directions plus faint independent
    /// noise: rank is full but two measurements predict everything well.
    fn low_effective_rank_model(n: usize, noise: f64) -> (Matrix, Vec<f64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let nx = n + 2;
        let a = Matrix::from_fn(n, nx, |i, j| {
            if j == 0 {
                8.0 * ((i as f64 * 0.3).sin() + 1.5)
            } else if j == 1 {
                6.0 * ((i as f64 * 0.7).cos() + 1.2)
            } else if j == i + 2 {
                noise * rng.gen_range(0.5..1.5)
            } else {
                0.0
            }
        });
        let mu = (0..n).map(|i| 400.0 + i as f64).collect();
        (a, mu)
    }

    #[test]
    fn shrinks_far_below_rank() {
        let (a, mu) = low_effective_rank_model(40, 0.2);
        let cfg = ApproxConfig::new(0.05, 500.0);
        let sel = approx_select(&a, &mu, &cfg).unwrap();
        assert_eq!(sel.rank, 40);
        assert!(
            sel.selected.len() <= 6,
            "selected {} paths, expected a handful",
            sel.selected.len()
        );
        assert!(sel.epsilon_r <= 0.05);
    }

    #[test]
    fn schedules_agree() {
        let (a, mu) = low_effective_rank_model(25, 0.3);
        let cfg_b = ApproxConfig::new(0.05, 500.0);
        let cfg_d = ApproxConfig::new(0.05, 500.0).with_schedule(Schedule::DecrementByOne);
        let sb = approx_select(&a, &mu, &cfg_b).unwrap();
        let sd = approx_select(&a, &mu, &cfg_d).unwrap();
        assert_eq!(sb.selected.len(), sd.selected.len());
        // Bisection must evaluate far fewer candidates.
        assert!(sb.trace.len() < sd.trace.len());
    }

    #[test]
    fn tighter_tolerance_needs_more_paths() {
        let (a, mu) = low_effective_rank_model(30, 0.5);
        let loose = approx_select(&a, &mu, &ApproxConfig::new(0.10, 500.0)).unwrap();
        let tight = approx_select(&a, &mu, &ApproxConfig::new(0.005, 500.0)).unwrap();
        assert!(loose.selected.len() <= tight.selected.len());
    }

    #[test]
    fn achieved_error_within_tolerance() {
        let (a, mu) = low_effective_rank_model(30, 0.4);
        let cfg = ApproxConfig::new(0.03, 500.0);
        let sel = approx_select(&a, &mu, &cfg).unwrap();
        assert!(sel.epsilon_r <= 0.03 + 1e-12);
        // And the reported error matches the predictor's own accounting.
        assert!((sel.predictor.epsilon(500.0) - sel.epsilon_r).abs() < 1e-12);
    }

    #[test]
    fn effective_rank_reported() {
        let (a, mu) = low_effective_rank_model(40, 0.05);
        let sel = approx_select(&a, &mu, &ApproxConfig::new(0.05, 500.0)).unwrap();
        assert!(sel.effective_rank <= 4, "effective rank {}", sel.effective_rank);
        assert!(sel.effective_rank >= 1);
    }

    #[test]
    fn bad_config_rejected() {
        let (a, mu) = low_effective_rank_model(5, 0.1);
        assert!(approx_select(&a, &mu, &ApproxConfig::new(0.0, 500.0)).is_err());
        assert!(approx_select(&a, &mu, &ApproxConfig::new(0.05, 0.0)).is_err());
        let mut cfg = ApproxConfig::new(0.05, 500.0);
        cfg.kappa = -1.0;
        assert!(approx_select(&a, &mu, &cfg).is_err());
        assert!(approx_select(&a, &mu[..2], &ApproxConfig::new(0.05, 500.0)).is_err());
    }

    #[test]
    fn selection_never_empty() {
        let (a, mu) = low_effective_rank_model(10, 0.1);
        // A huge tolerance still keeps at least one representative path.
        let sel = approx_select(&a, &mu, &ApproxConfig::new(10.0, 500.0)).unwrap();
        assert_eq!(sel.selected.len(), 1);
    }
}
