//! Algorithm 3: hybrid path/segment selection.
//!
//! 1. Select representative paths `P_r1` exactly (zero error).
//! 2. Select representative segments `S_r1` that model `d_Pr1` within a
//!    tighter tolerance `ε′ < ε` — the convex `ℓ1/ℓ∞` program (Eqn 10)
//!    solved by `pathrep-convopt`.
//! 3. Model the whole target set from `d_Sr1`; collect the paths `P_r2`
//!    whose worst-case prediction error exceeds `ε`.
//! 4. Measure `S_r1 ∪ P_r2` jointly and predict the rest; if the joint
//!    error still exceeds `ε` (rare), greedily add the worst offender to
//!    `P_r2` until it holds.
//!
//! Since the design-stage selection can be parallelized, the paper sweeps
//! `ε′` and keeps the candidate minimizing `|P_r| + |S_r|`;
//! [`hybrid_select_sweep`] does the same.

use crate::exact::{exact_select_with, ExactSelection};
use crate::factors::ModelFactors;
use crate::predictor::MeasurementPredictor;
use crate::CoreError;
use pathrep_convopt::{solve_linearized_admm, AdmmConfig, GroupSelectProblem, GroupSelectSolution};
use pathrep_linalg::Matrix;

/// Convergence statistics of the Step-2 ADMM segment-selection solve,
/// surfaced so callers can audit a selection whose convex program stopped
/// on the iteration budget rather than the residual test.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmmStats {
    /// Iterations performed by the solver.
    pub iterations: usize,
    /// Whether the stopping criterion was met within the budget.
    pub converged: bool,
    /// Final primal residual (Frobenius, normalized).
    pub primal_residual: f64,
    /// Final dual residual (Frobenius, normalized).
    pub dual_residual: f64,
    /// Final `ℓ1/ℓ∞` objective value.
    pub objective: f64,
    /// Achieved `max_i ‖(g_i − b_i)Σ‖` against the ε′ radius.
    pub worst_row_std: f64,
}

impl From<&GroupSelectSolution> for AdmmStats {
    fn from(sol: &GroupSelectSolution) -> Self {
        AdmmStats {
            iterations: sol.iterations,
            converged: sol.converged,
            primal_residual: sol.primal_residual,
            dual_residual: sol.dual_residual,
            objective: sol.objective,
            worst_row_std: sol.worst_row_std,
        }
    }
}

/// Configuration for Algorithm 3.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridConfig {
    /// Overall error tolerance ε (fraction of `T_cons`).
    pub epsilon: f64,
    /// Segment-model tolerance ε′ (must be < ε).
    pub epsilon_prime: f64,
    /// Timing constraint `T_cons` (ps).
    pub t_cons: f64,
    /// Worst-case multiplier κ.
    pub kappa: f64,
    /// Convex-solver configuration.
    pub admm: AdmmConfig,
    /// Cap on greedy repair iterations in Step 4.
    pub max_repair: usize,
}

impl HybridConfig {
    /// Paper-style defaults (κ = 3).
    pub fn new(epsilon: f64, epsilon_prime: f64, t_cons: f64) -> Self {
        HybridConfig {
            epsilon,
            epsilon_prime,
            t_cons,
            kappa: crate::predictor::DEFAULT_KAPPA,
            admm: AdmmConfig::default(),
            max_repair: 64,
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        if !(self.epsilon > 0.0 && self.epsilon_prime > 0.0) {
            return Err(CoreError::InvalidArgument {
                what: "epsilon and epsilon_prime must be positive".into(),
            });
        }
        if self.epsilon_prime >= self.epsilon {
            return Err(CoreError::InvalidArgument {
                what: "epsilon_prime must be strictly below epsilon".into(),
            });
        }
        if !(self.t_cons > 0.0 && self.kappa > 0.0) {
            return Err(CoreError::InvalidArgument {
                what: "t_cons and kappa must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Result of hybrid selection. Post-silicon, the measurement vector is the
/// selected segment delays followed by the selected path delays, in the
/// stored index order.
#[derive(Debug, Clone)]
pub struct HybridSelection {
    /// Selected segment indices (`S_r`).
    pub segments: Vec<usize>,
    /// Selected (directly measured) path indices (`P_r`).
    pub paths: Vec<usize>,
    /// The remaining target-path indices, predicted by [`predictor`].
    ///
    /// [`predictor`]: HybridSelection::predictor
    pub remaining: Vec<usize>,
    /// Joint predictor: input `[d_Sr ; d_Pr]`, output `d` of `remaining`.
    pub predictor: MeasurementPredictor,
    /// Achieved worst-case error ε_r.
    pub epsilon_r: f64,
    /// Size of the exact path selection of Step 1 (`|P_r1| = rank(A)`).
    pub exact_size: usize,
    /// The ε′ used (useful when returned from a sweep).
    pub epsilon_prime: f64,
    /// Convergence statistics of the Step-2 segment-selection ADMM solve.
    pub admm_stats: AdmmStats,
}

impl HybridSelection {
    /// Total number of post-silicon measurements `|P_r| + |S_r|`.
    pub fn measurement_count(&self) -> usize {
        self.segments.len() + self.paths.len()
    }
}

/// The delay-model pieces Algorithm 3 consumes (all from
/// `pathrep_variation::DelayModel`, passed explicitly so this crate stays
/// decoupled from circuit construction).
#[derive(Debug, Clone)]
pub struct HybridInputs<'a> {
    /// Path/segment incidence `G` (n × n_S).
    pub g: &'a Matrix,
    /// Segment sensitivities `Σ` (n_S × |x|).
    pub sigma: &'a Matrix,
    /// Path sensitivities `A = G·Σ` (n × |x|).
    pub a: &'a Matrix,
    /// Nominal segment delays.
    pub mu_segments: &'a [f64],
    /// Nominal path delays.
    pub mu_paths: &'a [f64],
}

/// Runs Algorithm 3 for one ε′.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for inconsistent inputs or config.
/// * [`CoreError::Convopt`] if the segment-selection program fails.
/// * [`CoreError::Linalg`] on factorization failure.
pub fn hybrid_select(
    inputs: &HybridInputs<'_>,
    config: &HybridConfig,
) -> Result<HybridSelection, CoreError> {
    let factors = ModelFactors::compute(inputs.a)?;
    hybrid_select_with(inputs, config, &factors)
}

/// [`hybrid_select`] with precomputed factorizations of `A`.
///
/// # Errors
///
/// Same as [`hybrid_select`].
pub fn hybrid_select_with(
    inputs: &HybridInputs<'_>,
    config: &HybridConfig,
    factors: &ModelFactors,
) -> Result<HybridSelection, CoreError> {
    let _span = pathrep_obs::span!("hybrid_select");
    config.validate()?;
    let n = inputs.a.nrows();
    if inputs.g.nrows() != n
        || inputs.mu_paths.len() != n
        || inputs.g.ncols() != inputs.sigma.nrows()
        || inputs.mu_segments.len() != inputs.sigma.nrows()
    {
        return Err(CoreError::InvalidArgument {
            what: "inconsistent hybrid input dimensions".into(),
        });
    }

    // --- Step 1: exact path selection (zero error) ---
    let exact: ExactSelection =
        exact_select_with(inputs.a, inputs.mu_paths, config.kappa, factors)?;
    let p_r1 = &exact.selected;

    // --- Step 2: segment selection for the representative paths ---
    let problem = GroupSelectProblem {
        g_target: inputs.g.select_rows(p_r1),
        sigma: inputs.sigma.clone(),
        radius: config.epsilon_prime * config.t_cons / config.kappa,
    };
    let solution = solve_linearized_admm(&problem, &config.admm)?;
    let admm_stats = AdmmStats::from(&solution);
    if !admm_stats.converged {
        pathrep_obs::warn("core.hybrid.admm_unconverged", || {
            format!(
                "segment-selection ADMM stopped on the {}-iteration budget \
                 (primal {:.3e}, dual {:.3e}, worst {:.3e} vs radius {:.3e}); \
                 downstream error checks still apply",
                admm_stats.iterations,
                admm_stats.primal_residual,
                admm_stats.dual_residual,
                admm_stats.worst_row_std,
                problem.radius
            )
        });
    }
    let s_r1 = solution.selected;

    // --- Step 3: model all targets from the selected segments ---
    let threshold = config.epsilon * config.t_cons;
    let mut p_r2: Vec<usize> = if s_r1.is_empty() {
        // No segments: every path whose own κσ exceeds the budget must be
        // measured directly.
        (0..n)
            .filter(|&i| {
                let row = inputs.a.row(i);
                let sd: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
                config.kappa * sd > threshold
            })
            .collect()
    } else {
        let meas_sens = inputs.sigma.select_rows(&s_r1);
        let meas_mu: Vec<f64> = s_r1.iter().map(|&s| inputs.mu_segments[s]).collect();
        let seg_predictor = MeasurementPredictor::new(
            inputs.a,
            inputs.mu_paths,
            &meas_sens,
            &meas_mu,
            config.kappa,
        )?;
        seg_predictor
            .wc_errors()
            .iter()
            .enumerate()
            .filter(|&(_, &wc)| wc > threshold)
            .map(|(i, _)| i)
            .collect()
    };

    // --- Step 4: joint predictor, with greedy repair if needed ---
    let mut repair = 0usize;
    loop {
        let (predictor, remaining) = build_joint_predictor(inputs, &s_r1, &p_r2, config.kappa)?;
        let epsilon_r = if remaining.is_empty() {
            0.0
        } else {
            predictor.epsilon(config.t_cons)
        };
        if epsilon_r <= config.epsilon || repair >= config.max_repair || remaining.is_empty() {
            pathrep_obs::counter_add("core.hybrid.selections", 1);
            pathrep_obs::counter_add("core.hybrid.segments_selected", s_r1.len() as u64);
            pathrep_obs::counter_add("core.hybrid.paths_selected", p_r2.len() as u64);
            pathrep_obs::counter_add("core.hybrid.repair_iterations", repair as u64);
            pathrep_obs::gauge_set("core.hybrid.epsilon_r", epsilon_r);
            pathrep_obs::ledger::record("core", "hybrid_select", |f| {
                f.int("segments", s_r1.len() as u64)
                    .int("paths", p_r2.len() as u64)
                    .int("remaining", remaining.len() as u64)
                    .int("exact_size", exact.rank as u64)
                    .int("repair_iterations", repair as u64)
                    .num("epsilon_r", epsilon_r)
                    .num("epsilon", config.epsilon)
                    .num("epsilon_prime", config.epsilon_prime)
                    .flag("admm_converged", admm_stats.converged);
            });
            return Ok(HybridSelection {
                segments: s_r1,
                paths: p_r2,
                remaining,
                predictor,
                epsilon_r,
                exact_size: exact.rank,
                epsilon_prime: config.epsilon_prime,
                admm_stats,
            });
        }
        // Add the worst-predicted remaining path to the measurement set.
        let worst = predictor
            .stds()
            .iter()
            .enumerate()
            .max_by(|a, b| pathrep_linalg::vecops::cmp_nan_smallest(*a.1, *b.1))
            .map(|(k, _)| remaining[k])
            .expect("remaining non-empty");
        p_r2.push(worst);
        p_r2.sort_unstable();
        repair += 1;
    }
}

/// Builds the joint `[segments ; paths] → remaining paths` predictor.
fn build_joint_predictor(
    inputs: &HybridInputs<'_>,
    segments: &[usize],
    paths: &[usize],
    kappa: f64,
) -> Result<(MeasurementPredictor, Vec<usize>), CoreError> {
    let n = inputs.a.nrows();
    let measured_paths: std::collections::HashSet<usize> = paths.iter().copied().collect();
    let remaining: Vec<usize> = (0..n).filter(|i| !measured_paths.contains(i)).collect();

    let mut meas_rows = Vec::with_capacity(segments.len() + paths.len());
    let mut meas_mu = Vec::with_capacity(segments.len() + paths.len());
    let seg_sens = inputs.sigma.select_rows(segments);
    for (k, &s) in segments.iter().enumerate() {
        meas_rows.push(seg_sens.row(k).to_vec());
        meas_mu.push(inputs.mu_segments[s]);
    }
    let path_sens = inputs.a.select_rows(paths);
    for (k, &p) in paths.iter().enumerate() {
        meas_rows.push(path_sens.row(k).to_vec());
        meas_mu.push(inputs.mu_paths[p]);
    }
    let nx = inputs.sigma.ncols();
    let meas_sens = if meas_rows.is_empty() {
        Matrix::zeros(1, nx) // degenerate: predict by the mean only
    } else {
        let refs: Vec<&[f64]> = meas_rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)?
    };
    let meas_mu_final = if meas_rows.is_empty() {
        vec![0.0]
    } else {
        meas_mu
    };
    let target_sens = inputs.a.select_rows(&remaining);
    let target_mu: Vec<f64> = remaining.iter().map(|&i| inputs.mu_paths[i]).collect();
    let predictor = if remaining.is_empty() {
        // All paths measured: a trivial predictor over an empty target set
        // cannot be represented; build a 1-target dummy is wrong. Instead
        // keep an empty-target predictor via a zero-row matrix.
        MeasurementPredictor::new(
            &Matrix::zeros(0, nx).add(&Matrix::zeros(0, nx))?,
            &[],
            &meas_sens,
            &meas_mu_final,
            kappa,
        )?
    } else {
        MeasurementPredictor::new(&target_sens, &target_mu, &meas_sens, &meas_mu_final, kappa)?
    };
    Ok((predictor, remaining))
}

/// Sweeps ε′ candidates (all strictly below ε) and returns the selection
/// with the fewest total measurements; ties break toward the smaller
/// achieved error.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] when no candidate is valid.
/// * First solver error if every candidate fails.
pub fn hybrid_select_sweep(
    inputs: &HybridInputs<'_>,
    base: &HybridConfig,
    eps_prime_candidates: &[f64],
) -> Result<HybridSelection, CoreError> {
    let factors = ModelFactors::compute(inputs.a)?;
    hybrid_select_sweep_with(inputs, base, eps_prime_candidates, &factors)
}

/// [`hybrid_select_sweep`] with precomputed factorizations of `A`.
///
/// # Errors
///
/// Same as [`hybrid_select_sweep`].
pub fn hybrid_select_sweep_with(
    inputs: &HybridInputs<'_>,
    base: &HybridConfig,
    eps_prime_candidates: &[f64],
    factors: &ModelFactors,
) -> Result<HybridSelection, CoreError> {
    let _span = pathrep_obs::span!("hybrid_sweep");
    let mut best: Option<HybridSelection> = None;
    let mut first_err: Option<CoreError> = None;
    for &ep in eps_prime_candidates {
        if !(ep > 0.0 && ep < base.epsilon) {
            continue;
        }
        let config = HybridConfig {
            epsilon_prime: ep,
            ..base.clone()
        };
        match hybrid_select_with(inputs, &config, factors) {
            Ok(sol) => {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        sol.measurement_count() < b.measurement_count()
                            || (sol.measurement_count() == b.measurement_count()
                                && sol.epsilon_r < b.epsilon_r)
                    }
                };
                if better {
                    best = Some(sol);
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match best {
        Some(b) => Ok(b),
        None => Err(first_err.unwrap_or(CoreError::InvalidArgument {
            what: "no valid epsilon_prime candidate (need 0 < eps' < eps)".into(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure-1-like model: 4 paths over 4 segments, 9 gate variables.
    fn toy_inputs() -> (Matrix, Matrix, Matrix, Vec<f64>, Vec<f64>) {
        let g = Matrix::from_rows(&[
            &[1.0, 0.0, 1.0, 0.0],
            &[1.0, 0.0, 0.0, 1.0],
            &[0.0, 1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0, 0.0],
        ])
        .unwrap();
        // Segments: A=[g0,g2], B=[g1,g3], C=[g4,g6,g8], D=[g4,g5,g7].
        let seg = |gates: &[usize], w: f64| {
            let mut row = vec![0.0; 9];
            for &gt in gates {
                row[gt] = w;
            }
            row
        };
        let srows = [
            seg(&[0, 2], 3.0),
            seg(&[1, 3], 3.0),
            seg(&[4, 6, 8], 2.0),
            seg(&[4, 5, 7], 2.0),
        ];
        let sigma =
            Matrix::from_rows(&[&srows[0], &srows[1], &srows[2], &srows[3]]).unwrap();
        let a = g.matmul(&sigma).unwrap();
        let mu_seg = vec![50.0, 52.0, 70.0, 71.0];
        let mu_paths = g.matvec(&mu_seg).unwrap();
        (g, sigma, a, mu_seg, mu_paths)
    }

    #[test]
    fn hybrid_meets_tolerance() {
        let (g, sigma, a, mu_seg, mu_paths) = toy_inputs();
        let inputs = HybridInputs {
            g: &g,
            sigma: &sigma,
            a: &a,
            mu_segments: &mu_seg,
            mu_paths: &mu_paths,
        };
        let cfg = HybridConfig::new(0.08, 0.04, 130.0);
        let sol = hybrid_select(&inputs, &cfg).unwrap();
        assert!(sol.epsilon_r <= 0.08 + 1e-9);
        assert!(sol.measurement_count() >= 1);
        assert_eq!(
            sol.remaining.len() + sol.paths.len(),
            4,
            "every path is measured or predicted"
        );
    }

    #[test]
    fn zero_like_tolerance_measures_enough_for_exactness() {
        let (g, sigma, a, mu_seg, mu_paths) = toy_inputs();
        let inputs = HybridInputs {
            g: &g,
            sigma: &sigma,
            a: &a,
            mu_segments: &mu_seg,
            mu_paths: &mu_paths,
        };
        // Tiny ε: the repair loop must end with ε_r ≤ ε by measuring paths
        // directly (or everything).
        let cfg = HybridConfig::new(1e-6, 5e-7, 130.0);
        let sol = hybrid_select(&inputs, &cfg).unwrap();
        assert!(sol.epsilon_r <= 1e-6 + 1e-12 || sol.remaining.is_empty());
    }

    #[test]
    fn joint_predictor_uses_segments_then_paths() {
        let (g, sigma, a, mu_seg, mu_paths) = toy_inputs();
        let inputs = HybridInputs {
            g: &g,
            sigma: &sigma,
            a: &a,
            mu_segments: &mu_seg,
            mu_paths: &mu_paths,
        };
        let cfg = HybridConfig::new(0.08, 0.02, 130.0);
        let sol = hybrid_select(&inputs, &cfg).unwrap();
        assert_eq!(
            sol.predictor.measurement_count(),
            sol.measurement_count().max(1)
        );
    }

    #[test]
    fn sweep_picks_cheapest() {
        let (g, sigma, a, mu_seg, mu_paths) = toy_inputs();
        let inputs = HybridInputs {
            g: &g,
            sigma: &sigma,
            a: &a,
            mu_segments: &mu_seg,
            mu_paths: &mu_paths,
        };
        let base = HybridConfig::new(0.08, 0.04, 130.0);
        let sweep =
            hybrid_select_sweep(&inputs, &base, &[0.01, 0.02, 0.04, 0.06]).unwrap();
        for &ep in &[0.01, 0.02, 0.04, 0.06] {
            let cfg = HybridConfig::new(0.08, ep, 130.0);
            let sol = hybrid_select(&inputs, &cfg).unwrap();
            assert!(sweep.measurement_count() <= sol.measurement_count());
        }
    }

    #[test]
    fn sweep_rejects_empty_candidates() {
        let (g, sigma, a, mu_seg, mu_paths) = toy_inputs();
        let inputs = HybridInputs {
            g: &g,
            sigma: &sigma,
            a: &a,
            mu_segments: &mu_seg,
            mu_paths: &mu_paths,
        };
        let base = HybridConfig::new(0.08, 0.04, 130.0);
        assert!(hybrid_select_sweep(&inputs, &base, &[0.5]).is_err());
    }

    #[test]
    fn config_validation() {
        let (g, sigma, a, mu_seg, mu_paths) = toy_inputs();
        let inputs = HybridInputs {
            g: &g,
            sigma: &sigma,
            a: &a,
            mu_segments: &mu_seg,
            mu_paths: &mu_paths,
        };
        // ε′ ≥ ε rejected.
        let bad = HybridConfig::new(0.05, 0.05, 130.0);
        assert!(hybrid_select(&inputs, &bad).is_err());
    }
}
