//! Section 4.4's scalability device: "if the number of target paths is very
//! large, we can apply a clustering procedure to form clusters of paths of
//! smaller size for speedup".
//!
//! Paths are clustered by segment overlap (paths sharing logic belong
//! together), Algorithm 1 runs independently inside each cluster — cubing
//! the cost of SVD/Gram work down from `n³` to `Σ nᵢ³` — and the union of
//! per-cluster representatives feeds one joint Theorem-2 predictor over the
//! full target set. A final greedy repair enforces the global tolerance if
//! the union alone misses it (cross-cluster correlation the per-cluster
//! runs could not see).

use crate::approx::{approx_select, ApproxConfig};
use crate::predictor::MeasurementPredictor;
use crate::CoreError;
use pathrep_linalg::Matrix;

/// Configuration for [`clustered_select`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Algorithm-1 configuration applied inside each cluster.
    pub approx: ApproxConfig,
    /// Upper bound on paths per cluster.
    pub max_cluster_size: usize,
    /// Cap on global greedy-repair iterations.
    pub max_repair: usize,
}

impl ClusterConfig {
    /// Creates a config with the given per-cluster Algorithm-1 settings.
    pub fn new(approx: ApproxConfig, max_cluster_size: usize) -> Self {
        ClusterConfig {
            approx,
            max_cluster_size,
            max_repair: 64,
        }
    }
}

/// Result of clustered selection.
#[derive(Debug, Clone)]
pub struct ClusteredSelection {
    /// Path clusters (indices into the target set).
    pub clusters: Vec<Vec<usize>>,
    /// The union of per-cluster representative paths (global indices).
    pub selected: Vec<usize>,
    /// Remaining (predicted) target paths.
    pub remaining: Vec<usize>,
    /// Joint predictor from the union to the remaining paths.
    pub predictor: MeasurementPredictor,
    /// Achieved global worst-case error.
    pub epsilon_r: f64,
}

impl ClusteredSelection {
    /// Number of clusters formed.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }
}

/// Greedy segment-overlap clustering: paths are assigned, in order, to the
/// non-full cluster whose accumulated segment set they overlap most.
fn cluster_paths(g: &Matrix, max_size: usize) -> Vec<Vec<usize>> {
    let n = g.nrows();
    let ns = g.ncols();
    let k = n.div_ceil(max_size);
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut segment_sets: Vec<Vec<bool>> = vec![vec![false; ns]; k];
    for p in 0..n {
        let row = g.row(p);
        // `None` until the first non-full candidate: a sentinel score would
        // lose to zero-overlap clusters and silently overfill `clusters[0]`.
        let mut best: Option<usize> = None;
        let mut best_score = i64::MIN;
        for (c, cluster) in clusters.iter().enumerate() {
            if cluster.len() >= max_size {
                continue;
            }
            let overlap: i64 = row
                .iter()
                .enumerate()
                .filter(|&(s, &v)| v != 0.0 && segment_sets[c][s])
                .map(|_| 1)
                .sum();
            // Ties break toward the emptiest cluster for balance.
            let score = overlap * (max_size as i64 + 1) - cluster.len() as i64;
            if best.is_none() || score > best_score {
                best_score = score;
                best = Some(c);
            }
        }
        let best = best.expect("k*max_size >= n guarantees a non-full cluster");
        clusters[best].push(p);
        for (s, &v) in row.iter().enumerate() {
            if v != 0.0 {
                segment_sets[best][s] = true;
            }
        }
    }
    clusters.retain(|c| !c.is_empty());
    clusters
}

/// Runs clustered approximate selection (Section 4.4).
///
/// `g` is the path/segment incidence used for the overlap clustering; `a`
/// and `mu` are the full delay model.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for inconsistent inputs.
/// * Any error from the per-cluster Algorithm-1 runs.
pub fn clustered_select(
    a: &Matrix,
    mu: &[f64],
    g: &Matrix,
    config: &ClusterConfig,
) -> Result<ClusteredSelection, CoreError> {
    let _span = pathrep_obs::span!("clustered_select");
    let n = a.nrows();
    if mu.len() != n || g.nrows() != n {
        return Err(CoreError::InvalidArgument {
            what: "A, mu and G must agree on the path count".into(),
        });
    }
    if config.max_cluster_size == 0 {
        return Err(CoreError::InvalidArgument {
            what: "max_cluster_size must be positive".into(),
        });
    }
    let clusters = cluster_paths(g, config.max_cluster_size);

    // Algorithm 1 inside each cluster.
    let mut selected: Vec<usize> = Vec::new();
    for cluster in &clusters {
        let sub_a = a.select_rows(cluster);
        let sub_mu: Vec<f64> = cluster.iter().map(|&i| mu[i]).collect();
        let sel = approx_select(&sub_a, &sub_mu, &config.approx)?;
        selected.extend(sel.selected.iter().map(|&local| cluster[local]));
    }
    selected.sort_unstable();
    selected.dedup();

    // Joint predictor over the union, with global repair.
    let mut repair = 0usize;
    loop {
        let is_sel: std::collections::HashSet<usize> = selected.iter().copied().collect();
        let remaining: Vec<usize> = (0..n).filter(|i| !is_sel.contains(i)).collect();
        let meas = a.select_rows(&selected);
        let meas_mu: Vec<f64> = selected.iter().map(|&i| mu[i]).collect();
        let target = a.select_rows(&remaining);
        let target_mu: Vec<f64> = remaining.iter().map(|&i| mu[i]).collect();
        let predictor = if remaining.is_empty() {
            MeasurementPredictor::new(
                &Matrix::zeros(0, a.ncols()),
                &[],
                &meas,
                &meas_mu,
                config.approx.kappa,
            )?
        } else {
            MeasurementPredictor::new(&target, &target_mu, &meas, &meas_mu, config.approx.kappa)?
        };
        let epsilon_r = if remaining.is_empty() {
            0.0
        } else {
            predictor.epsilon(config.approx.t_cons)
        };
        if epsilon_r <= config.approx.epsilon || remaining.is_empty() || repair >= config.max_repair
        {
            return Ok(ClusteredSelection {
                clusters,
                selected,
                remaining,
                predictor,
                epsilon_r,
            });
        }
        // Add the worst-predicted path and retry.
        let worst = predictor
            .stds()
            .iter()
            .enumerate()
            .max_by(|a, b| pathrep_linalg::vecops::cmp_nan_smallest(*a.1, *b.1))
            .map(|(k, _)| remaining[k])
            .expect("remaining non-empty");
        selected.push(worst);
        selected.sort_unstable();
        repair += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Two independent path "blocks" over disjoint segments + variables,
    /// the natural clustering structure.
    fn two_block_model(block: usize) -> (Matrix, Vec<f64>, Matrix) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let n = 2 * block;
        let ns = 8;
        let nx = 12;
        let g = Matrix::from_fn(n, ns, |i, s| {
            let base = if i < block { 0 } else { 4 };
            let in_block = s >= base && s < base + 4;
            // Anchor one guaranteed segment per path so no path is left
            // segmentless (a degenerate, blockless row) by the random draw.
            let anchor = s == base + i % 4;
            if in_block && (anchor || rng.gen_bool(0.6)) {
                1.0
            } else {
                0.0
            }
        });
        let sigma = Matrix::from_fn(ns, nx, |s, j| {
            let in_block = if s < 4 { j < 6 } else { j >= 6 };
            if in_block {
                rng.gen_range(0.5..2.0)
            } else {
                0.0
            }
        });
        let a = g.matmul(&sigma).unwrap();
        let mu = (0..n).map(|i| 500.0 + i as f64).collect();
        (a, mu, g)
    }

    #[test]
    fn clustering_respects_cap_and_covers_everything() {
        let (a, mu, g) = two_block_model(10);
        let cfg = ClusterConfig::new(ApproxConfig::new(0.05, 600.0), 10);
        let sel = clustered_select(&a, &mu, &g, &cfg).unwrap();
        assert!(sel.cluster_count() >= 2);
        let mut all: Vec<usize> = sel.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        for c in &sel.clusters {
            assert!(c.len() <= 10);
        }
    }

    #[test]
    fn overlap_clustering_separates_blocks() {
        let (a, mu, g) = two_block_model(10);
        let cfg = ClusterConfig::new(ApproxConfig::new(0.05, 600.0), 10);
        let sel = clustered_select(&a, &mu, &g, &cfg).unwrap();
        // Each cluster must be block-pure: all indices on one side.
        for c in &sel.clusters {
            let in_first = c.iter().filter(|&&i| i < 10).count();
            assert!(
                in_first == 0 || in_first == c.len(),
                "cluster mixes blocks: {c:?}"
            );
        }
    }

    #[test]
    fn global_tolerance_met() {
        let (a, mu, g) = two_block_model(12);
        let cfg = ClusterConfig::new(ApproxConfig::new(0.05, 600.0), 8);
        let sel = clustered_select(&a, &mu, &g, &cfg).unwrap();
        assert!(
            sel.epsilon_r <= 0.05 + 1e-9,
            "global epsilon {} exceeds tolerance",
            sel.epsilon_r
        );
        assert_eq!(sel.selected.len() + sel.remaining.len(), 24);
    }

    #[test]
    fn clustered_cost_close_to_global() {
        // The union must not be wildly larger than the single global run.
        let (a, mu, g) = two_block_model(12);
        let approx_cfg = ApproxConfig::new(0.05, 600.0);
        let global = approx_select(&a, &mu, &approx_cfg).unwrap();
        let cfg = ClusterConfig::new(approx_cfg, 12);
        let clustered = clustered_select(&a, &mu, &g, &cfg).unwrap();
        assert!(
            clustered.selected.len() <= 3 * global.selected.len().max(2),
            "clustered {} vs global {}",
            clustered.selected.len(),
            global.selected.len()
        );
    }

    #[test]
    fn input_validation() {
        let (a, mu, g) = two_block_model(4);
        let cfg = ClusterConfig::new(ApproxConfig::new(0.05, 600.0), 0);
        assert!(clustered_select(&a, &mu, &g, &cfg).is_err());
        let cfg = ClusterConfig::new(ApproxConfig::new(0.05, 600.0), 4);
        assert!(clustered_select(&a, &mu[..2], &g, &cfg).is_err());
    }
}
