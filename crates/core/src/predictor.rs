//! Theorem 2: the optimal linear predictor and its analytic error.
//!
//! With all variables standard normal, the minimum-mean-square-error linear
//! predictor of the unmeasured delays `d_m` from measured delays `d_r` is
//!
//! ```text
//! d̂_m = µ_m + A_m A_rᵀ (A_r A_rᵀ)⁺ (d_r − µ_r)
//! ```
//!
//! and the prediction error `Δ = d̂_m − d_m = Ω x` is zero-mean Gaussian
//! with per-path standard deviation given by the rows of
//! `Ω = coef·A_r − A_m`. The worst case used for guard-banding is
//! `WC(Δᵢ) = κ·std(Δᵢ)` (the paper's `WC(·)`; κ = 3 by default).

use crate::CoreError;
use pathrep_linalg::cholesky::Cholesky;
use pathrep_linalg::lstsq;
use pathrep_linalg::{vecops, Matrix};

/// Default worst-case multiplier κ (three-sigma, 99.87 % one-sided).
pub const DEFAULT_KAPPA: f64 = 3.0;

/// Relative singular-value cutoff for the pseudo-inverse.
const PINV_TOL: f64 = 1e-10;

/// Solves `X·G = R` (i.e. `X = R·G⁻¹`) for a symmetric PSD `G`, using a
/// jittered Cholesky factorization and falling back to the SVD
/// pseudo-inverse when `G` is numerically singular beyond the jitter's
/// reach. This is the hot kernel of Algorithm 1's per-candidate error
/// evaluation, where an SVD per candidate would dominate the runtime.
fn solve_right_psd(gram: &Matrix, rhs: &Matrix) -> Result<Matrix, CoreError> {
    let n = gram.nrows();
    let mean_diag = (0..n).map(|i| gram[(i, i)].abs()).sum::<f64>() / n.max(1) as f64;
    let jitter = 1e-10 * mean_diag.max(1e-30);
    match Cholesky::compute_with_jitter(gram, jitter, 6) {
        Ok(ch) => {
            // X·G = R ⟺ G·Xᵀ = Rᵀ (G symmetric).
            let xt = ch.solve_matrix(&rhs.transpose())?;
            Ok(xt.transpose())
        }
        Err(_) => {
            let pinv = lstsq::pseudo_inverse(gram, PINV_TOL)?;
            Ok(rhs.matmul(&pinv)?)
        }
    }
}

/// Optimal linear predictor from a set of measured delays to a set of
/// target (unmeasured) delays.
#[derive(Debug, Clone)]
pub struct MeasurementPredictor {
    coef: Matrix,
    meas_mu: Vec<f64>,
    target_mu: Vec<f64>,
    stds: Vec<f64>,
    kappa: f64,
}

impl MeasurementPredictor {
    /// Builds the predictor from explicit sensitivity matrices:
    /// targets have `d_t = target_mu + target_sens·x`, measurements
    /// `d_m = meas_mu + meas_sens·x`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidArgument`] on dimension mismatches or κ ≤ 0.
    /// * [`CoreError::Linalg`] if the pseudo-inverse fails.
    pub fn new(
        target_sens: &Matrix,
        target_mu: &[f64],
        meas_sens: &Matrix,
        meas_mu: &[f64],
        kappa: f64,
    ) -> Result<Self, CoreError> {
        if kappa <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "kappa must be positive".into(),
            });
        }
        if target_sens.ncols() != meas_sens.ncols() {
            return Err(CoreError::InvalidArgument {
                what: "target and measurement sensitivities must share the variable space".into(),
            });
        }
        if target_mu.len() != target_sens.nrows() || meas_mu.len() != meas_sens.nrows() {
            return Err(CoreError::InvalidArgument {
                what: "mean vectors must match sensitivity row counts".into(),
            });
        }
        // coef = A_t Mᵀ (M Mᵀ)⁺
        let cross = target_sens.matmul(&meas_sens.transpose())?;
        let gram = meas_sens.matmul(&meas_sens.transpose())?;
        let coef = solve_right_psd(&gram, &cross)?;
        // Ω = coef·M − A_t; per-row std.
        let omega = coef.matmul(meas_sens)?.sub(target_sens)?;
        let stds: Vec<f64> = (0..omega.nrows())
            .map(|i| vecops::norm2(omega.row(i)))
            .collect();
        Ok(MeasurementPredictor {
            coef,
            meas_mu: meas_mu.to_vec(),
            target_mu: target_mu.to_vec(),
            stds,
            kappa,
        })
    }

    /// Builds the predictor under *noisy measurement*: each measured delay
    /// carries iid Gaussian noise of standard deviation `noise_sigma` ps
    /// (the paper assumes exact measurement; real scan structures do not
    /// deliver it). The MMSE coefficients become
    /// `A_t Mᵀ (M Mᵀ + σ²I)⁺` and the prediction error gains the
    /// propagated-noise term `σ²‖coef row‖²`.
    ///
    /// With `noise_sigma = 0` this reduces exactly to [`MeasurementPredictor::new`].
    ///
    /// # Errors
    ///
    /// Same as [`MeasurementPredictor::new`], plus
    /// [`CoreError::InvalidArgument`] for a negative `noise_sigma`.
    pub fn new_with_noise(
        target_sens: &Matrix,
        target_mu: &[f64],
        meas_sens: &Matrix,
        meas_mu: &[f64],
        kappa: f64,
        noise_sigma: f64,
    ) -> Result<Self, CoreError> {
        if noise_sigma < 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "noise_sigma must be non-negative".into(),
            });
        }
        if noise_sigma == 0.0 {
            return Self::new(target_sens, target_mu, meas_sens, meas_mu, kappa);
        }
        if kappa <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "kappa must be positive".into(),
            });
        }
        if target_sens.ncols() != meas_sens.ncols() {
            return Err(CoreError::InvalidArgument {
                what: "target and measurement sensitivities must share the variable space".into(),
            });
        }
        if target_mu.len() != target_sens.nrows() || meas_mu.len() != meas_sens.nrows() {
            return Err(CoreError::InvalidArgument {
                what: "mean vectors must match sensitivity row counts".into(),
            });
        }
        let cross = target_sens.matmul(&meas_sens.transpose())?;
        let mut gram = meas_sens.matmul(&meas_sens.transpose())?;
        for i in 0..gram.nrows() {
            gram[(i, i)] += noise_sigma * noise_sigma;
        }
        let coef = solve_right_psd(&gram, &cross)?;
        // Var(Δᵢ) = ‖row(coef·M − A_t)‖² + σ²‖row(coef)‖².
        let omega = coef.matmul(meas_sens)?.sub(target_sens)?;
        let stds: Vec<f64> = (0..omega.nrows())
            .map(|i| {
                let model = vecops::norm2(omega.row(i)).powi(2);
                let noise = (noise_sigma * vecops::norm2(coef.row(i))).powi(2);
                (model + noise).sqrt()
            })
            .collect();
        Ok(MeasurementPredictor {
            coef,
            meas_mu: meas_mu.to_vec(),
            target_mu: target_mu.to_vec(),
            stds,
            kappa,
        })
    }

    /// Builds the path-subset predictor (Theorem 2 exactly) from the
    /// precomputed Gram matrix `G = A·Aᵀ` of the *full* target set, the
    /// full mean vector, and the selected row indices.
    ///
    /// This avoids touching `A` itself: everything Algorithm 1 needs per
    /// candidate `r` comes from sub-blocks of `G`, which is computed once.
    /// The resulting predictor maps measured delays (in `selected` order)
    /// to the *remaining* paths, whose indices are returned alongside.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidArgument`] on bad indices / κ.
    /// * [`CoreError::Linalg`] if the pseudo-inverse fails.
    pub fn from_gram(
        gram: &Matrix,
        mu: &[f64],
        selected: &[usize],
        kappa: f64,
    ) -> Result<(Self, Vec<usize>), CoreError> {
        if kappa <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "kappa must be positive".into(),
            });
        }
        let n = gram.nrows();
        if !gram.is_square() || mu.len() != n {
            return Err(CoreError::InvalidArgument {
                what: "gram must be square and match the mean vector".into(),
            });
        }
        let mut is_sel = vec![false; n];
        for &s in selected {
            if s >= n {
                return Err(CoreError::InvalidArgument {
                    what: format!("selected index {s} out of range"),
                });
            }
            if std::mem::replace(&mut is_sel[s], true) {
                return Err(CoreError::InvalidArgument {
                    what: format!("selected index {s} repeated"),
                });
            }
        }
        let remaining: Vec<usize> = (0..n).filter(|&i| !is_sel[i]).collect();
        // Sub-blocks of the Gram matrix.
        let g_rr = gram.select_rows(selected).select_cols(selected);
        let g_mr = gram.select_rows(&remaining).select_cols(selected);
        let coef = solve_right_psd(&g_rr, &g_mr)?;
        // std_i² = G_mm[i,i] − coef_i · G_mr_i (see module docs: the cross
        // and quadratic terms coincide through the pseudo-inverse).
        let stds: Vec<f64> = remaining
            .iter()
            .enumerate()
            .map(|(k, &mi)| {
                let quad = vecops::dot(coef.row(k), g_mr.row(k));
                (gram[(mi, mi)] - quad).max(0.0).sqrt()
            })
            .collect();
        let meas_mu: Vec<f64> = selected.iter().map(|&i| mu[i]).collect();
        let target_mu: Vec<f64> = remaining.iter().map(|&i| mu[i]).collect();
        Ok((
            MeasurementPredictor {
                coef,
                meas_mu,
                target_mu,
                stds,
                kappa,
            },
            remaining,
        ))
    }

    /// Builds the path-subset predictor from the *thin* cross-Gram block
    /// `C = A·A_selᵀ` (`n × r`, columns in `selected` order) plus the
    /// diagonal of the full Gram (`diag[i] = ‖row i of A‖²`). This is the
    /// sketched-pipeline analogue of [`MeasurementPredictor::from_gram`]:
    /// the full `n × n` Gram is never materialized, only the `n × r`
    /// slab against the selected rows.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidArgument`] on bad indices / shapes / κ.
    /// * [`CoreError::Linalg`] if the pseudo-inverse fails.
    pub fn from_cross_gram(
        cross: &Matrix,
        diag: &[f64],
        mu: &[f64],
        selected: &[usize],
        kappa: f64,
    ) -> Result<(Self, Vec<usize>), CoreError> {
        if kappa <= 0.0 {
            return Err(CoreError::InvalidArgument {
                what: "kappa must be positive".into(),
            });
        }
        let n = cross.nrows();
        if cross.ncols() != selected.len() {
            return Err(CoreError::InvalidArgument {
                what: format!(
                    "cross-gram has {} columns but {} selected rows",
                    cross.ncols(),
                    selected.len()
                ),
            });
        }
        if mu.len() != n || diag.len() != n {
            return Err(CoreError::InvalidArgument {
                what: "cross-gram rows must match the mean and diagonal vectors".into(),
            });
        }
        let mut is_sel = vec![false; n];
        for &s in selected {
            if s >= n {
                return Err(CoreError::InvalidArgument {
                    what: format!("selected index {s} out of range"),
                });
            }
            if std::mem::replace(&mut is_sel[s], true) {
                return Err(CoreError::InvalidArgument {
                    what: format!("selected index {s} repeated"),
                });
            }
        }
        let remaining: Vec<usize> = (0..n).filter(|&i| !is_sel[i]).collect();
        // G_rr and G_mr are row-slices of the thin cross block: column j of
        // `cross` is already G[·, selected[j]].
        let g_rr = cross.select_rows(selected);
        let g_mr = cross.select_rows(&remaining);
        let coef = solve_right_psd(&g_rr, &g_mr)?;
        let stds: Vec<f64> = remaining
            .iter()
            .enumerate()
            .map(|(k, &mi)| {
                let quad = vecops::dot(coef.row(k), g_mr.row(k));
                (diag[mi] - quad).max(0.0).sqrt()
            })
            .collect();
        let meas_mu: Vec<f64> = selected.iter().map(|&i| mu[i]).collect();
        let target_mu: Vec<f64> = remaining.iter().map(|&i| mu[i]).collect();
        Ok((
            MeasurementPredictor {
                coef,
                meas_mu,
                target_mu,
                stds,
                kappa,
            },
            remaining,
        ))
    }

    /// Reassembles a predictor from previously serialized parts (the
    /// model-artifact store in `pathrep-serve`). The inverse of reading
    /// [`MeasurementPredictor::coef`] / [`MeasurementPredictor::meas_mu`] /
    /// [`MeasurementPredictor::target_mu`] / [`MeasurementPredictor::stds`]
    /// back out; no factorization is repeated.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] on inconsistent dimensions, κ ≤ 0, or
    /// a non-finite/negative prediction std.
    pub fn from_parts(
        coef: Matrix,
        meas_mu: Vec<f64>,
        target_mu: Vec<f64>,
        stds: Vec<f64>,
        kappa: f64,
    ) -> Result<Self, CoreError> {
        if kappa <= 0.0 || !kappa.is_finite() {
            return Err(CoreError::InvalidArgument {
                what: "kappa must be positive and finite".into(),
            });
        }
        if coef.nrows() != target_mu.len() || coef.ncols() != meas_mu.len() {
            return Err(CoreError::InvalidArgument {
                what: format!(
                    "coefficient matrix is {}×{} but there are {} targets and {} measurements",
                    coef.nrows(),
                    coef.ncols(),
                    target_mu.len(),
                    meas_mu.len()
                ),
            });
        }
        if stds.len() != target_mu.len() {
            return Err(CoreError::InvalidArgument {
                what: "per-target stds must match the target count".into(),
            });
        }
        if stds.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(CoreError::InvalidArgument {
                what: "prediction stds must be finite and non-negative".into(),
            });
        }
        if coef.as_slice().iter().any(|c| !c.is_finite())
            || meas_mu.iter().chain(target_mu.iter()).any(|m| !m.is_finite())
        {
            return Err(CoreError::InvalidArgument {
                what: "predictor coefficients and means must be finite".into(),
            });
        }
        Ok(MeasurementPredictor {
            coef,
            meas_mu,
            target_mu,
            stds,
            kappa,
        })
    }

    /// The MMSE coefficient matrix (targets × measurements).
    pub fn coef(&self) -> &Matrix {
        &self.coef
    }

    /// Mean delays of the measured paths (ps), in measurement order.
    pub fn meas_mu(&self) -> &[f64] {
        &self.meas_mu
    }

    /// Mean delays of the target paths (ps), in target order.
    pub fn target_mu(&self) -> &[f64] {
        &self.target_mu
    }

    /// Predicts the target delays from measured delays (same order as the
    /// measurement set the predictor was built with).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] on a wrong-length input.
    pub fn predict(&self, measured: &[f64]) -> Result<Vec<f64>, CoreError> {
        if measured.len() != self.meas_mu.len() {
            return Err(CoreError::InvalidArgument {
                what: format!(
                    "expected {} measurements, got {}",
                    self.meas_mu.len(),
                    measured.len()
                ),
            });
        }
        let centered = vecops::sub(measured, &self.meas_mu);
        let mut out = self.coef.matvec(&centered)?;
        for (o, mu) in out.iter_mut().zip(self.target_mu.iter()) {
            *o += mu;
        }
        Ok(out)
    }

    /// Predicts a whole batch of measurement vectors in one fused kernel:
    /// row `q` of `measured` is one request, row `q` of the result its
    /// predicted target delays.
    ///
    /// The batch is fanned across the `pathrep-par` pool, but every output
    /// element is computed by **exactly** the floating-point operation
    /// sequence of [`MeasurementPredictor::predict`] (one centered
    /// subtraction, one `vecops::dot` per target, one mean addition), so
    /// the result rows are bit-identical to per-request `predict` calls at
    /// any worker count and any batch grouping. `pathrep-serve` relies on
    /// this to micro-batch concurrent requests without changing a single
    /// answer byte.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] when the batch width does not
    /// match the measurement count.
    pub fn predict_batch(&self, measured: &Matrix) -> Result<Matrix, CoreError> {
        if measured.ncols() != self.meas_mu.len() {
            return Err(CoreError::InvalidArgument {
                what: format!(
                    "expected {} measurements per request, got {}",
                    self.meas_mu.len(),
                    measured.ncols()
                ),
            });
        }
        let k = measured.nrows();
        let t = self.target_mu.len();
        if k == 0 || t == 0 {
            return Ok(Matrix::zeros(k, t));
        }
        let mut out = Matrix::zeros(k, t);
        // Keep each worker busy for ~a quarter-million flops before fanning
        // out; below that the batch stays inline on the calling thread.
        let row_flops = 2 * t * self.meas_mu.len();
        let min_rows = (1 << 18) / row_flops.max(1) + 1;
        pathrep_par::for_each_unit_chunk_mut(out.as_mut_slice(), t, min_rows, |first, block| {
            for (dq, out_row) in block.chunks_exact_mut(t).enumerate() {
                let centered = vecops::sub(measured.row(first + dq), &self.meas_mu);
                for (i, (o, mu)) in out_row.iter_mut().zip(self.target_mu.iter()).enumerate() {
                    *o = vecops::dot(self.coef.row(i), &centered) + mu;
                }
            }
        });
        Ok(out)
    }

    /// Per-target prediction standard deviation (ps).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Per-target worst-case error `κ·std` (ps) — the paper's `WC(Δᵢ)`.
    pub fn wc_errors(&self) -> Vec<f64> {
        self.stds.iter().map(|s| self.kappa * s).collect()
    }

    /// The paper's aggregate error `ε_r = max_i WC(Δᵢ)/T_cons` (Eqn 7).
    ///
    /// # Panics
    ///
    /// Panics if `t_cons` is not positive.
    pub fn epsilon(&self, t_cons: f64) -> f64 {
        assert!(t_cons > 0.0, "timing constraint must be positive");
        self.stds
            .iter()
            .map(|s| self.kappa * s / t_cons)
            .fold(0.0, f64::max)
    }

    /// Number of measurements the predictor consumes.
    pub fn measurement_count(&self) -> usize {
        self.meas_mu.len()
    }

    /// Number of targets the predictor produces.
    pub fn target_count(&self) -> usize {
        self.target_mu.len()
    }

    /// The worst-case multiplier κ.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-1 structure in sensitivity space: 4 paths over segments
    /// A=[g1,g3], B=[g2,g4], C=[g5,g7,g9], D=[g5,g6,g8], with variables
    /// being the per-gate randoms (spatial dropped for clarity).
    fn figure1_a() -> (Matrix, Vec<f64>) {
        // Variables: one per gate g1..g9 (index 0..9), coefficient 1.
        let seg = |gates: &[usize]| {
            let mut row = vec![0.0; 9];
            for &g in gates {
                row[g] = 1.0;
            }
            row
        };
        let a_seg = [seg(&[0, 2]), seg(&[1, 3]), seg(&[4, 6, 8]), seg(&[4, 5, 7])];
        // Paths: p1 = A+C, p2 = A+D, p3 = B+D, p4 = B+C.
        let combine = |x: &[f64], y: &[f64]| -> Vec<f64> {
            x.iter().zip(y.iter()).map(|(&a, &b)| a + b).collect()
        };
        let rows = [
            combine(&a_seg[0], &a_seg[2]),
            combine(&a_seg[0], &a_seg[3]),
            combine(&a_seg[1], &a_seg[3]),
            combine(&a_seg[1], &a_seg[2]),
        ];
        let a = Matrix::from_rows(&[&rows[0], &rows[1], &rows[2], &rows[3]]).unwrap();
        let mu = vec![100.0, 101.0, 102.0, 103.0];
        (a, mu)
    }

    #[test]
    fn from_cross_gram_matches_from_gram_bitwise() {
        // The thin cross-Gram path must reproduce the full-Gram path
        // exactly: same sub-blocks reach the same solver in the same
        // order, so every output is bit-identical.
        let (a, mu) = figure1_a();
        let gram = a.matmul(&a.transpose()).unwrap();
        let selected = [1usize, 3];
        let (pg, rem_g) =
            MeasurementPredictor::from_gram(&gram, &mu, &selected, DEFAULT_KAPPA).unwrap();
        let cross = gram.select_cols(&selected);
        let diag: Vec<f64> = (0..gram.nrows()).map(|i| gram[(i, i)]).collect();
        let (pc, rem_c) =
            MeasurementPredictor::from_cross_gram(&cross, &diag, &mu, &selected, DEFAULT_KAPPA)
                .unwrap();
        assert_eq!(rem_g, rem_c);
        let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(pg.coef().as_slice()), bits(pc.coef().as_slice()));
        assert_eq!(bits(pg.stds()), bits(pc.stds()));
        assert_eq!(pg.meas_mu(), pc.meas_mu());
        assert_eq!(pg.target_mu(), pc.target_mu());
    }

    #[test]
    fn from_cross_gram_rejects_inconsistent_shapes() {
        let (a, mu) = figure1_a();
        let gram = a.matmul(&a.transpose()).unwrap();
        let cross = gram.select_cols(&[1, 3]);
        let diag: Vec<f64> = (0..gram.nrows()).map(|i| gram[(i, i)]).collect();
        // Column count must match the selected count.
        assert!(
            MeasurementPredictor::from_cross_gram(&cross, &diag, &mu, &[1], DEFAULT_KAPPA).is_err()
        );
        // Diagonal must cover every row.
        assert!(MeasurementPredictor::from_cross_gram(
            &cross,
            &diag[..2],
            &mu,
            &[1, 3],
            DEFAULT_KAPPA
        )
        .is_err());
        // Out-of-range and repeated indices rejected.
        assert!(
            MeasurementPredictor::from_cross_gram(&cross, &diag, &mu, &[1, 9], DEFAULT_KAPPA)
                .is_err()
        );
        assert!(
            MeasurementPredictor::from_cross_gram(&cross, &diag, &mu, &[1, 1], DEFAULT_KAPPA)
                .is_err()
        );
    }

    #[test]
    fn exact_recovery_with_rank_many_measurements() {
        // rank(A) = 3: measuring paths 2, 3, 4 predicts path 1 exactly
        // (d_p1 = d_p2 − d_p3 + d_p4).
        let (a, mu) = figure1_a();
        let meas = a.select_rows(&[1, 2, 3]);
        let meas_mu = [mu[1], mu[2], mu[3]];
        let target = a.select_rows(&[0]);
        let p =
            MeasurementPredictor::new(&target, &mu[..1], &meas, &meas_mu, DEFAULT_KAPPA).unwrap();
        assert!(p.stds()[0] < 1e-9, "prediction must be exact");
        // Check the coefficients reproduce the identity +1, −1, +1.
        let d = p.predict(&[meas_mu[0] + 2.0, meas_mu[1] - 1.0, meas_mu[2] + 0.5]).unwrap();
        assert!((d[0] - (mu[0] + 2.0 + 1.0 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn gram_constructor_matches_direct() {
        let (a, mu) = figure1_a();
        let gram = a.matmul(&a.transpose()).unwrap();
        let (pg, remaining) =
            MeasurementPredictor::from_gram(&gram, &mu, &[1, 3], DEFAULT_KAPPA).unwrap();
        assert_eq!(remaining, vec![0, 2]);
        let meas = a.select_rows(&[1, 3]);
        let target = a.select_rows(&[0, 2]);
        let pd = MeasurementPredictor::new(
            &target,
            &[mu[0], mu[2]],
            &meas,
            &[mu[1], mu[3]],
            DEFAULT_KAPPA,
        )
        .unwrap();
        for (s1, s2) in pg.stds().iter().zip(pd.stds().iter()) {
            assert!((s1 - s2).abs() < 1e-9, "stds disagree: {s1} vs {s2}");
        }
        let m = [mu[1] + 1.0, mu[3] - 2.0];
        let d1 = pg.predict(&m).unwrap();
        let d2 = pd.predict(&m).unwrap();
        for (x, y) in d1.iter().zip(d2.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn predictor_is_unbiased_and_mmse_against_monte_carlo() {
        use pathrep_linalg::gauss;
        use rand::SeedableRng;
        let (a, mu) = figure1_a();
        // Measure only path 2: prediction of the others is inexact.
        let meas = a.select_rows(&[1]);
        let targets = a.select_rows(&[0, 2, 3]);
        let tmu = [mu[0], mu[2], mu[3]];
        let p = MeasurementPredictor::new(&targets, &tmu, &meas, &mu[1..2], DEFAULT_KAPPA).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let n = 50_000;
        let mut err_sum = [0.0; 3];
        let mut err_sq = [0.0; 3];
        for _ in 0..n {
            let mut x = vec![0.0; 9];
            gauss::fill_standard_normal(&mut rng, &mut x);
            let dm = mu[1] + vecops::dot(meas.row(0), &x);
            let pred = p.predict(&[dm]).unwrap();
            for (k, t) in [0usize, 2, 3].iter().enumerate() {
                let truth = mu[*t] + vecops::dot(a.row(*t), &x);
                let e = pred[k] - truth;
                err_sum[k] += e;
                err_sq[k] += e * e;
            }
        }
        for k in 0..3 {
            let mean = err_sum[k] / n as f64;
            let std = (err_sq[k] / n as f64 - mean * mean).sqrt();
            assert!(mean.abs() < 0.05, "bias {mean} at target {k}");
            assert!(
                (std - p.stds()[k]).abs() < 0.05 * p.stds()[k].max(0.1),
                "MC std {std} vs analytic {}",
                p.stds()[k]
            );
        }
    }

    #[test]
    fn epsilon_is_max_wc_over_tcons() {
        let (a, mu) = figure1_a();
        let meas = a.select_rows(&[1]);
        let targets = a.select_rows(&[0, 2]);
        let p = MeasurementPredictor::new(&targets, &mu[..2], &meas, &mu[1..2], 3.0).unwrap();
        let eps = p.epsilon(200.0);
        let expect = p.stds().iter().fold(0.0_f64, |m, &s| m.max(3.0 * s)) / 200.0;
        assert!((eps - expect).abs() < 1e-12);
    }

    #[test]
    fn dimension_checks() {
        let (a, mu) = figure1_a();
        let meas = a.select_rows(&[1]);
        assert!(MeasurementPredictor::new(&a, &mu, &meas, &mu[1..2], 0.0).is_err());
        assert!(MeasurementPredictor::new(&a, &mu[..2], &meas, &mu[1..2], 3.0).is_err());
        let gram = a.matmul(&a.transpose()).unwrap();
        assert!(MeasurementPredictor::from_gram(&gram, &mu, &[9], 3.0).is_err());
        assert!(MeasurementPredictor::from_gram(&gram, &mu, &[1, 1], 3.0).is_err());
        let p = MeasurementPredictor::new(
            &a.select_rows(&[0]),
            &mu[..1],
            &meas,
            &mu[1..2],
            3.0,
        )
        .unwrap();
        assert!(p.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn noise_aware_predictor_reduces_to_exact_at_zero() {
        let (a, mu) = figure1_a();
        let meas = a.select_rows(&[1, 2]);
        let tgt = a.select_rows(&[0, 3]);
        let p0 = MeasurementPredictor::new(&tgt, &mu[..2], &meas, &mu[1..3], 3.0).unwrap();
        let pz = MeasurementPredictor::new_with_noise(&tgt, &mu[..2], &meas, &mu[1..3], 3.0, 0.0)
            .unwrap();
        for (a, b) in p0.stds().iter().zip(pz.stds().iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_increases_error_and_shrinks_coefficients() {
        let (a, mu) = figure1_a();
        let meas = a.select_rows(&[1, 2, 3]);
        let tgt = a.select_rows(&[0]);
        let clean =
            MeasurementPredictor::new(&tgt, &mu[..1], &meas, &mu[1..4], 3.0).unwrap();
        let noisy = MeasurementPredictor::new_with_noise(
            &tgt, &mu[..1], &meas, &mu[1..4], 3.0, 0.5,
        )
        .unwrap();
        assert!(noisy.stds()[0] > clean.stds()[0]);
        // Huge noise ⇒ coefficients shrink toward zero, prediction toward
        // the mean, error toward the prior σ.
        let huge = MeasurementPredictor::new_with_noise(
            &tgt, &mu[..1], &meas, &mu[1..4], 3.0, 1e6,
        )
        .unwrap();
        let d = huge
            .predict(&[mu[1] + 10.0, mu[2] - 10.0, mu[3] + 10.0])
            .unwrap();
        assert!((d[0] - mu[0]).abs() < 1e-3, "huge noise must predict the mean");
        let prior_sigma = vecops::norm2(a.row(0));
        assert!((huge.stds()[0] - prior_sigma).abs() < 1e-3 * prior_sigma);
    }

    #[test]
    fn noise_aware_validated_by_monte_carlo() {
        use pathrep_linalg::gauss;
        use rand::SeedableRng;
        let (a, mu) = figure1_a();
        let meas = a.select_rows(&[1, 2]);
        let tgt = a.select_rows(&[0]);
        let sigma_m = 1.5;
        let p = MeasurementPredictor::new_with_noise(
            &tgt, &mu[..1], &meas, &mu[1..3], 3.0, sigma_m,
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let n = 60_000;
        let mut sq = 0.0;
        for _ in 0..n {
            let mut x = vec![0.0; 9];
            gauss::fill_standard_normal(&mut rng, &mut x);
            let m: Vec<f64> = [1usize, 2]
                .iter()
                .map(|&i| {
                    mu[i] + vecops::dot(a.row(i), &x)
                        + sigma_m * gauss::sample_standard_normal(&mut rng)
                })
                .collect();
            let pred = p.predict(&m).unwrap();
            let truth = mu[0] + vecops::dot(a.row(0), &x);
            sq += (pred[0] - truth) * (pred[0] - truth);
        }
        let mc_std = (sq / n as f64).sqrt();
        assert!(
            (mc_std - p.stds()[0]).abs() < 0.03 * p.stds()[0],
            "MC std {mc_std} vs analytic {}",
            p.stds()[0]
        );
    }

    #[test]
    fn negative_noise_rejected() {
        let (a, mu) = figure1_a();
        let meas = a.select_rows(&[1]);
        assert!(MeasurementPredictor::new_with_noise(
            &a.select_rows(&[0]),
            &mu[..1],
            &meas,
            &mu[1..2],
            3.0,
            -1.0
        )
        .is_err());
    }

    #[test]
    fn predict_batch_is_bitwise_identical_to_predict() {
        let (a, mu) = figure1_a();
        let meas = a.select_rows(&[1, 2]);
        let tgt = a.select_rows(&[0, 3]);
        let p = MeasurementPredictor::new(&tgt, &[mu[0], mu[3]], &meas, &mu[1..3], 3.0).unwrap();
        // A batch with enough rows that the pool actually splits it.
        let batch = Matrix::from_fn(37, 2, |q, j| {
            mu[1 + j] + ((q * 2 + j) as f64 * 0.37).sin() * 4.0
        });
        for threads in [1, 4] {
            pathrep_par::set_threads(threads);
            let out = p.predict_batch(&batch).unwrap();
            for q in 0..batch.nrows() {
                let single = p.predict(batch.row(q)).unwrap();
                for (x, y) in out.row(q).iter().zip(single.iter()) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "batch row {q} differs from predict at threads={threads}"
                    );
                }
            }
        }
        pathrep_par::set_threads(0);
        // Shape errors surface, and degenerate batches stay well-formed.
        assert!(p.predict_batch(&Matrix::zeros(3, 5)).is_err());
        let empty = p.predict_batch(&Matrix::zeros(0, 2)).unwrap();
        assert_eq!(empty.shape(), (0, 2));
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let (a, mu) = figure1_a();
        let meas = a.select_rows(&[1, 2]);
        let tgt = a.select_rows(&[0, 3]);
        let p = MeasurementPredictor::new(&tgt, &[mu[0], mu[3]], &meas, &mu[1..3], 3.0).unwrap();
        let back = MeasurementPredictor::from_parts(
            p.coef().clone(),
            p.meas_mu().to_vec(),
            p.target_mu().to_vec(),
            p.stds().to_vec(),
            p.kappa(),
        )
        .unwrap();
        let m = [mu[1] + 0.7, mu[2] - 1.1];
        assert_eq!(p.predict(&m).unwrap(), back.predict(&m).unwrap());
        assert_eq!(p.stds(), back.stds());
        // Validation: dimension mismatch, bad kappa, non-finite std.
        assert!(MeasurementPredictor::from_parts(
            p.coef().clone(),
            vec![0.0; 3],
            p.target_mu().to_vec(),
            p.stds().to_vec(),
            3.0
        )
        .is_err());
        assert!(MeasurementPredictor::from_parts(
            p.coef().clone(),
            p.meas_mu().to_vec(),
            p.target_mu().to_vec(),
            p.stds().to_vec(),
            0.0
        )
        .is_err());
        assert!(MeasurementPredictor::from_parts(
            p.coef().clone(),
            p.meas_mu().to_vec(),
            p.target_mu().to_vec(),
            vec![f64::NAN, 1.0],
            3.0
        )
        .is_err());
    }

    #[test]
    fn measuring_everything_gives_zero_error() {
        let (a, mu) = figure1_a();
        let gram = a.matmul(&a.transpose()).unwrap();
        let (p, remaining) =
            MeasurementPredictor::from_gram(&gram, &mu, &[0, 1, 2], DEFAULT_KAPPA).unwrap();
        // Path 3 = p1 − p2 + p3 wait: d_p4 = d_p1 − d_p2 + d_p3.
        assert_eq!(remaining, vec![3]);
        assert!(p.stds()[0] < 1e-6);
    }
}
