//! Algorithm 2: subset selection by SVD + QR with column pivoting.
//!
//! To pick `r` rows of `A` that are "as linearly independent as possible",
//! compute the SVD `A = U·Σ·Vᵀ`, take the leading `r` columns of `U`
//! (the dominant left subspace), and run QR with column pivoting on
//! `U_rᵀ`: the first `r` pivot columns correspond to the rows of `A` whose
//! span best captures that subspace (Golub & Van Loan's subset-selection
//! procedure, the same `svd()` + `qr()` pipeline the paper uses).

use crate::CoreError;
use pathrep_linalg::qr::Qr;
use pathrep_linalg::svd::Svd;
use pathrep_linalg::Matrix;

/// Selects `r` row indices of `a` via SVD + QR-CP (Algorithm 2).
///
/// Returns the indices in pivot order (most independent first).
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] when `r` is zero or exceeds the row
///   count.
/// * [`CoreError::Linalg`] if a factorization fails.
pub fn select_rows(a: &Matrix, r: usize) -> Result<Vec<usize>, CoreError> {
    let svd = Svd::compute(a)?;
    select_rows_with_svd(a, &svd, r)
}

/// [`select_rows`] with a precomputed SVD of `a` — Algorithm 1 calls this
/// once per candidate `r`, so recomputing the SVD would dominate.
///
/// # Errors
///
/// Same as [`select_rows`].
pub fn select_rows_with_svd(a: &Matrix, svd: &Svd, r: usize) -> Result<Vec<usize>, CoreError> {
    select_rows_from_left(svd, a.nrows(), r)
}

/// [`select_rows_with_svd`] from the left factor alone: pivots on the
/// leading `r` columns of `svd.u()` without ever touching `A`. This is
/// the entry point for the sketched pipeline, where `A` is sparse and
/// the (approximate) left subspace comes from a randomized range-finder;
/// `n` is the row count of the original matrix (`== svd.u().nrows()`).
///
/// # Errors
///
/// Same as [`select_rows`].
pub fn select_rows_from_left(svd: &Svd, n: usize, r: usize) -> Result<Vec<usize>, CoreError> {
    let _span = pathrep_obs::span!("subset_select");
    pathrep_obs::counter_add("core.subset.calls", 1);
    if r == 0 || r > n {
        return Err(CoreError::InvalidArgument {
            what: format!("subset size r={r} must lie in 1..={n}"),
        });
    }
    let k = svd.singular_values().len();
    if r > k {
        return Err(CoreError::InvalidArgument {
            what: format!("subset size r={r} exceeds min(n, |x|)={k}"),
        });
    }
    // U_r: the first r columns of U (n × r); pivot on its transpose.
    let ur_t = Matrix::from_fn(r, n, |i, j| svd.u()[(j, i)]);
    let qr = Qr::compute_pivoted(&ur_t)?;
    Ok(qr.perm()[..r].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_requested_count_without_duplicates() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[1.0, 0.1, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0],
        ])
        .unwrap();
        let sel = select_rows(&a, 3).unwrap();
        assert_eq!(sel.len(), 3);
        let mut s = sel.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3, "duplicate selection");
    }

    #[test]
    fn full_rank_selection_spans_all_rows() {
        // With r = rank(A), the selected rows must span the row space: the
        // residual of projecting every row onto the selected ones is zero.
        let a = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[2.0, 1.0, 1.0], // = row0 + row1
        ])
        .unwrap();
        let svd = Svd::compute(&a).unwrap();
        let rank = svd.rank(1e-10);
        assert_eq!(rank, 3);
        let sel = select_rows_with_svd(&a, &svd, rank).unwrap();
        let ar = a.select_rows(&sel);
        // Row space check: rank([A; A_r]) == rank(A_r).
        let stacked = a.vstack(&ar).unwrap();
        assert_eq!(Svd::compute(&stacked).unwrap().rank(1e-10), rank);
    }

    #[test]
    fn avoids_nearly_dependent_pairs() {
        // Rows 0 and 1 are nearly identical; selecting two rows should
        // avoid taking both.
        let a = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[1.0, 1e-9],
            &[0.0, 1.0],
        ])
        .unwrap();
        let sel = select_rows(&a, 2).unwrap();
        let both_dupes = sel.contains(&0) && sel.contains(&1);
        assert!(!both_dupes, "selected the nearly-dependent pair {sel:?}");
    }

    #[test]
    fn selected_rows_well_conditioned() {
        // Compare smallest singular value of the selected r×m block against
        // picking the first r rows on a matrix designed to punish that.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        // Rows 0..5 all nearly parallel; rows 5..10 diverse.
        let base: Vec<f64> = (0..6).map(|j| (j as f64 + 1.0).sin()).collect();
        let a = Matrix::from_fn(10, 6, |i, j| {
            if i < 5 {
                base[j] + 1e-6 * rng.gen_range(-1.0..1.0)
            } else {
                rng.gen_range(-1.0..1.0)
            }
        });
        let sel = select_rows(&a, 4).unwrap();
        let smin_sel = *Svd::compute(&a.select_rows(&sel))
            .unwrap()
            .singular_values()
            .last()
            .unwrap();
        let smin_first = *Svd::compute(&a.select_rows(&[0, 1, 2, 3]))
            .unwrap()
            .singular_values()
            .last()
            .unwrap();
        assert!(
            smin_sel > 100.0 * smin_first,
            "pivoted selection ({smin_sel:e}) no better than naive ({smin_first:e})"
        );
    }

    #[test]
    fn rejects_bad_r() {
        let a = Matrix::identity(3);
        assert!(select_rows(&a, 0).is_err());
        assert!(select_rows(&a, 4).is_err());
        assert!(select_rows(&a, 3).is_ok());
    }

    #[test]
    fn r_exceeding_variable_count_rejected() {
        // 4 rows but only 2 variables: r = 3 > min(n, |x|) is invalid.
        let a = Matrix::from_fn(4, 2, |i, j| (i + j) as f64 + 1.0);
        assert!(select_rows(&a, 3).is_err());
    }
}
