//! Theorem 1: exact representative-path selection with `r = rank(A)`.

use crate::factors::ModelFactors;
use crate::predictor::MeasurementPredictor;
use crate::subset::select_rows_with_svd;
use crate::CoreError;
use pathrep_linalg::Matrix;

/// Relative singular-value cutoff used for the numerical rank of `A`.
pub const RANK_TOL: f64 = 1e-9;

/// Result of exact selection.
#[derive(Debug, Clone)]
pub struct ExactSelection {
    /// Indices of the representative paths (into the target set).
    pub selected: Vec<usize>,
    /// Indices of the remaining (predicted) paths.
    pub remaining: Vec<usize>,
    /// The Theorem-2 predictor from the representative to the remaining
    /// paths (error is zero up to rounding).
    pub predictor: MeasurementPredictor,
    /// `rank(A)` used for the selection.
    pub rank: usize,
}

/// Exact selection: pick `rank(A)` rows of `A` (Algorithm 2) so that every
/// remaining target path is an exact linear combination of them.
///
/// # Errors
///
/// * [`CoreError::Linalg`] on factorization failure.
/// * [`CoreError::InvalidArgument`] if `mu` does not match `a`.
pub fn exact_select(a: &Matrix, mu: &[f64], kappa: f64) -> Result<ExactSelection, CoreError> {
    let factors = ModelFactors::compute(a)?;
    exact_select_with(a, mu, kappa, &factors)
}

/// [`exact_select`] with precomputed factorizations (shared with
/// Algorithms 1 and 3, whose front-ends already paid for them).
///
/// # Errors
///
/// Same as [`exact_select`].
pub fn exact_select_with(
    a: &Matrix,
    mu: &[f64],
    kappa: f64,
    factors: &ModelFactors,
) -> Result<ExactSelection, CoreError> {
    let _span = pathrep_obs::span!("exact_select");
    if mu.len() != a.nrows() {
        return Err(CoreError::InvalidArgument {
            what: "mean vector must match the row count of A".into(),
        });
    }
    let rank = factors.svd().rank(RANK_TOL).max(1);
    pathrep_obs::counter_add("core.exact.selections", 1);
    pathrep_obs::gauge_set("core.exact.rank", rank as f64);
    let selected = select_rows_with_svd(a, factors.svd(), rank)?;
    let (predictor, remaining) =
        MeasurementPredictor::from_gram(factors.gram(), mu, &selected, kappa)?;
    pathrep_obs::ledger::record("core", "exact_select", |f| {
        f.int("paths", a.nrows() as u64)
            .int("rank", rank as u64)
            .int("selected", selected.len() as u64)
            .int("remaining", remaining.len() as u64);
    });
    Ok(ExactSelection {
        selected,
        remaining,
        predictor,
        rank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::DEFAULT_KAPPA;

    fn rank_deficient_a() -> (Matrix, Vec<f64>) {
        // 5 paths in a 4-dimensional variable space with rank 3.
        let a = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0, 0.0],
            &[0.0, 1.0, 1.0, 0.0],
            &[1.0, 0.0, -1.0, 0.0], // row0 − row1
            &[0.0, 0.0, 0.0, 2.0],
            &[1.0, 1.0, 0.0, 2.0], // row0 + row3
        ])
        .unwrap();
        let mu = vec![10.0, 11.0, 12.0, 13.0, 14.0];
        (a, mu)
    }

    #[test]
    fn selects_rank_many_paths() {
        let (a, mu) = rank_deficient_a();
        let sel = exact_select(&a, &mu, DEFAULT_KAPPA).unwrap();
        assert_eq!(sel.rank, 3);
        assert_eq!(sel.selected.len(), 3);
        assert_eq!(sel.remaining.len(), 2);
    }

    #[test]
    fn prediction_error_is_zero() {
        let (a, mu) = rank_deficient_a();
        let sel = exact_select(&a, &mu, DEFAULT_KAPPA).unwrap();
        for &s in sel.predictor.stds() {
            assert!(s < 1e-6, "exact selection must have zero error, got {s}");
        }
    }

    #[test]
    fn exact_recovery_on_random_realizations() {
        use pathrep_linalg::gauss;
        use rand::SeedableRng;
        let (a, mu) = rank_deficient_a();
        let sel = exact_select(&a, &mu, DEFAULT_KAPPA).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let mut x = vec![0.0; 4];
            gauss::fill_standard_normal(&mut rng, &mut x);
            let d_all: Vec<f64> = (0..5)
                .map(|i| mu[i] + pathrep_linalg::vecops::dot(a.row(i), &x))
                .collect();
            let measured: Vec<f64> = sel.selected.iter().map(|&i| d_all[i]).collect();
            let pred = sel.predictor.predict(&measured).unwrap();
            for (k, &m) in sel.remaining.iter().enumerate() {
                assert!(
                    (pred[k] - d_all[m]).abs() < 1e-8,
                    "path {m} predicted {} truth {}",
                    pred[k],
                    d_all[m]
                );
            }
        }
    }

    #[test]
    fn full_rank_selects_min_of_paths_and_vars() {
        // Full-rank wide A: rank = number of paths.
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).unwrap();
        let sel = exact_select(&a, &[1.0, 2.0], DEFAULT_KAPPA).unwrap();
        assert_eq!(sel.rank, 2);
        assert!(sel.remaining.is_empty());
    }

    #[test]
    fn mu_length_checked() {
        let a = Matrix::identity(3);
        assert!(exact_select(&a, &[1.0], DEFAULT_KAPPA).is_err());
    }
}
