//! Representative path and segment selection for post-silicon timing
//! prediction — the core contribution of Xie & Davoodi (DAC 2010).
//!
//! Given the linear delay model `d_Ptar = mu + A*x` built by
//! `pathrep-variation`, this crate selects a small set of *representative*
//! paths (and optionally segments) whose measured post-silicon delays
//! predict every remaining target path within a worst-case tolerance:
//!
//! * [`subset`] — Algorithm 2: SVD + QR-with-column-pivoting subset
//!   selection of `r` maximally independent rows of `A`;
//! * [`predictor`] — Theorem 2: the optimal (conditional-mean) linear
//!   predictor from measured delays to unmeasured ones, with the analytic
//!   worst-case prediction error of Eqns 6-7;
//! * [`exact`] — Theorem 1: exact selection with `r = rank(A)`;
//! * [`approx`] — Algorithm 1: approximate selection under an error
//!   tolerance `epsilon`, driven by the effective rank of `A`;
//! * [`hybrid`] — Algorithm 3: hybrid path/segment selection using the
//!   convex group-selection program of `pathrep-convopt`;
//! * [`guardband`] — Section 6.3: guard-band analysis for post-silicon
//!   failure detection.

pub mod approx;
pub mod cluster;
pub mod diagnosis;
pub mod greedy;
pub mod error;
pub mod factors;
pub mod exact;
pub mod guardband;
pub mod hybrid;
pub mod predictor;
pub mod sketch;
pub mod subset;

pub use approx::{approx_select, ApproxSelection, Schedule};
pub use cluster::{clustered_select, ClusterConfig, ClusteredSelection};
pub use diagnosis::{Diagnoser, VariationDiagnosis};
pub use error::CoreError;
pub use greedy::{greedy_select, GreedySelection};
pub use factors::ModelFactors;
pub use exact::{exact_select, ExactSelection};
pub use hybrid::{hybrid_select, hybrid_select_sweep, AdmmStats, HybridConfig, HybridSelection};
pub use predictor::MeasurementPredictor;
pub use sketch::{
    sketch_approx_select, sketch_config_from_env, sketch_exact_select, SketchApproxConfig,
    SketchSelection,
};
