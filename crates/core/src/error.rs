//! Error type for the selection algorithms.

use pathrep_convopt::ConvoptError;
use pathrep_linalg::LinalgError;
use std::fmt;

/// Error returned by the selection algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A parameter is outside its valid domain.
    InvalidArgument {
        /// What was wrong.
        what: String,
    },
    /// The requested tolerance cannot be met (e.g. `ε` below the exact
    /// selection's zero only at `r = rank(A)` but a smaller `r` was forced).
    Infeasible {
        /// What failed.
        what: String,
    },
    /// An underlying matrix routine failed.
    Linalg(LinalgError),
    /// The convex segment-selection solver failed.
    Convopt(ConvoptError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
            CoreError::Infeasible { what } => write!(f, "selection infeasible: {what}"),
            CoreError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CoreError::Convopt(e) => write!(f, "convex solver failure: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<ConvoptError> for CoreError {
    fn from(e: ConvoptError) -> Self {
        CoreError::Convopt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = LinalgError::Singular.into();
        assert!(e.to_string().contains("singular"));
        let e: CoreError = ConvoptError::InvalidArgument { what: "radius" }.into();
        assert!(e.to_string().contains("radius"));
    }
}
