//! Cross-shard mailbox: a mutex-guarded message queue paired with a
//! [`WakePipe`](crate::WakePipe) so senders on other threads can interrupt
//! a reactor blocked in poll.
//!
//! The design keeps the hot path cheap: `send` takes the lock, pushes, and
//! writes the wake byte only when the previous state was "no wake pending"
//! — so under a burst of sends the pipe carries at most one byte and the
//! reactor does exactly one drain.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::wake::WakePipe;

struct Inner<M> {
    queue: Mutex<Vec<M>>,
    wake: WakePipe,
    wake_pending: AtomicBool,
}

/// Receiving end of a mailbox, owned by one reactor thread.
pub struct Mailbox<M> {
    inner: Arc<Inner<M>>,
}

/// Cloneable sending end; safe to use from any thread.
pub struct MailboxSender<M> {
    inner: Arc<Inner<M>>,
}

impl<M> Clone for MailboxSender<M> {
    fn clone(&self) -> Self {
        MailboxSender { inner: Arc::clone(&self.inner) }
    }
}

impl<M> Mailbox<M> {
    /// Create a mailbox and its first sender.
    pub fn new() -> io::Result<(Mailbox<M>, MailboxSender<M>)> {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Vec::new()),
            wake: WakePipe::new()?,
            wake_pending: AtomicBool::new(false),
        });
        Ok((Mailbox { inner: Arc::clone(&inner) }, MailboxSender { inner }))
    }

    /// The wake pipe's read fd; register it with the poller under
    /// [`Token::WAKE`](crate::Token::WAKE).
    pub fn wake_fd(&self) -> RawFd {
        self.inner.wake.read_fd()
    }

    /// Drain every queued message into `out` and reset the wake state.
    /// Call after poll reports the wake fd readable (spurious calls are fine).
    pub fn drain_into(&self, out: &mut Vec<M>) {
        self.inner.wake.drain();
        // Clear the flag *before* swapping the queue: a sender racing this
        // drain either lands its message in the swap (seen now) or pushes
        // after it and re-arms the wake (seen next poll). Either way no
        // message waits without a wake byte behind it.
        self.inner.wake_pending.store(false, Ordering::SeqCst);
        let mut queue = self.inner.queue.lock().unwrap();
        out.append(&mut queue);
    }
}

impl<M> MailboxSender<M> {
    /// Enqueue a message and wake the owning reactor.
    pub fn send(&self, msg: M) {
        self.inner.queue.lock().unwrap().push(msg);
        if !self.inner.wake_pending.swap(true, Ordering::SeqCst) {
            self.inner.wake.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys;

    #[test]
    fn messages_survive_a_sender_burst_and_drain_in_order() {
        let (mailbox, sender) = Mailbox::<usize>::new().unwrap();
        let senders: Vec<_> = (0..4).map(|_| sender.clone()).collect();
        let handles: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(t, s)| {
                std::thread::spawn(move || {
                    for i in 0..250 {
                        s.send(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        mailbox.drain_into(&mut got);
        assert_eq!(got.len(), 1000);
        // Per-sender order is preserved even though interleaving is free.
        for t in 0..4 {
            let per: Vec<_> = got.iter().filter(|&&m| m / 1000 == t).collect();
            assert!(per.windows(2).all(|w| w[0] < w[1]));
        }
        // After drain the pipe is empty and the flag re-arms on next send.
        let mut buf = [0u8; 8];
        assert!(sys::read_fd(mailbox.wake_fd(), &mut buf).is_err());
        sender.send(42);
        assert_eq!(sys::read_fd(mailbox.wake_fd(), &mut buf).unwrap(), 1);
    }
}
