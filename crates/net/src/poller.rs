//! Readiness poller: a thin, uniform wrapper over `epoll` (Linux) or
//! `poll` (other unix).
//!
//! The poller maps raw fds to caller-chosen [`Token`]s and reports which
//! tokens became readable/writable. It is level-triggered on every backend:
//! an event repeats on the next wait until the caller drains the condition,
//! which keeps the reactor loop free of edge-trigger starvation bugs.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

/// Opaque per-registration identifier chosen by the caller.
///
/// The reactor uses slab slot indices; [`Token::WAKE`] is reserved for the
/// cross-thread wake pipe so it can never collide with a connection slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Token(pub usize);

impl Token {
    /// Reserved token for the shard's wake pipe.
    pub const WAKE: Token = Token(usize::MAX);
}

/// Which readiness conditions a registration wants to be told about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd can accept more bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Both directions.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness event reported by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Token supplied at registration time.
    pub token: Token,
    /// Bytes (or EOF/hangup) are waiting to be read.
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The kernel flagged an error or hangup; the owner should tear down.
    pub error: bool,
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 0 < t < 1ms timeout doesn't busy-spin.
        Some(d) => d.as_millis().min(i32::MAX as u128).max(u128::from(d.as_nanos() > 0)) as i32,
    }
}

// ---------------------------------------------------------------------------
// Linux backend: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub use linux_impl::Poller;

#[cfg(target_os = "linux")]
mod linux_impl {
    use super::*;

    /// Readiness poller backed by `epoll`.
    pub struct Poller {
        epfd: RawFd,
        scratch: Vec<sys::EpollEvent>,
    }

    impl Poller {
        /// Create a new empty poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: sys::epoll_create()?,
                scratch: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = sys::EPOLLRDHUP;
            if interest.readable {
                m |= sys::EPOLLIN;
            }
            if interest.writable {
                m |= sys::EPOLLOUT;
            }
            m
        }

        /// Add `fd` to the interest set under `token`.
        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            sys::epoll_add(self.epfd, fd, Self::mask(interest), token.0 as u64)
        }

        /// Change the interest set of an already-registered fd.
        pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            sys::epoll_mod(self.epfd, fd, Self::mask(interest), token.0 as u64)
        }

        /// Remove `fd` from the interest set.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            sys::epoll_del(self.epfd, fd)
        }

        /// Block until at least one event arrives (or the timeout lapses)
        /// and append the events to `out`. Returns how many were appended.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let n = sys::epoll_wait_events(self.epfd, &mut self.scratch, timeout_ms(timeout))?;
            for ev in &self.scratch[..n] {
                // Copy out of the packed struct before touching the fields.
                let mask = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: Token(data as usize),
                    readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                    writable: mask & sys::EPOLLOUT != 0,
                    error: mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------------
// Fallback backend: poll(2) with an internal registration table
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
pub use fallback_impl::Poller;

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback_impl {
    use super::*;

    /// Readiness poller backed by `poll(2)`; keeps its own fd table since
    /// `poll` has no persistent interest set.
    pub struct Poller {
        entries: Vec<(RawFd, Token, Interest)>,
    }

    impl Poller {
        /// Create a new empty poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { entries: Vec::new() })
        }

        /// Add `fd` to the interest set under `token`.
        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.entries.push((fd, token, interest));
            Ok(())
        }

        /// Change the interest set of an already-registered fd.
        pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            for e in &mut self.entries {
                if e.0 == fd {
                    *e = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        /// Remove `fd` from the interest set.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.entries.retain(|e| e.0 != fd);
            Ok(())
        }

        /// Block until at least one event arrives (or the timeout lapses).
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let mut fds: Vec<sys::PollFd> = self
                .entries
                .iter()
                .map(|&(fd, _, interest)| sys::PollFd {
                    fd,
                    events: (if interest.readable { sys::POLLIN } else { 0 })
                        | (if interest.writable { sys::POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            let n = sys::poll_fds(&mut fds, timeout_ms(timeout))?;
            for (pfd, &(_, token, _)) in fds.iter().zip(self.entries.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                    writable: pfd.revents & sys::POLLOUT != 0,
                    error: pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wake::WakePipe;

    #[test]
    fn wake_pipe_readiness_round_trips_through_the_poller() {
        let mut poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.register(pipe.read_fd(), Token::WAKE, Interest::READ).unwrap();

        // Nothing pending: a zero timeout returns no events.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.iter().all(|e| e.token != Token::WAKE || !e.readable));

        pipe.wake();
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().any(|e| e.token == Token::WAKE && e.readable));

        // Level-triggered: still readable until drained.
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().any(|e| e.token == Token::WAKE && e.readable));

        pipe.drain();
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
        assert!(events.iter().all(|e| e.token != Token::WAKE || !e.readable));
    }
}
