//! Consistent-hash ring for routing model ids to shards.
//!
//! Each shard contributes a fixed number of virtual points hashed onto a
//! `u64` ring; a key routes to the first point clockwise from its own hash.
//! Virtual points smooth the load split, and consistency means adding or
//! removing a shard only remaps the keys adjacent to its points — the
//! property that keeps same-model batches pinned to one shard's queue as
//! the fleet resizes.
//!
//! Hashing is FNV-1a, matching the artifact-id hash used elsewhere in the
//! repo: deterministic across runs and platforms, no RandomState involved.

/// Default number of virtual points per shard.
pub const DEFAULT_REPLICAS: usize = 64;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A consistent-hash ring over `shards` shards.
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Build a ring with [`DEFAULT_REPLICAS`] virtual points per shard.
    pub fn new(shards: usize) -> HashRing {
        HashRing::with_replicas(shards, DEFAULT_REPLICAS)
    }

    /// Build a ring with an explicit virtual-point count per shard.
    pub fn with_replicas(shards: usize, replicas: usize) -> HashRing {
        assert!(shards > 0, "hash ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * replicas);
        for shard in 0..shards {
            for replica in 0..replicas {
                let label = format!("shard-{shard}-vp-{replica}");
                points.push((fnv1a(label.as_bytes()), shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Route a key to its owning shard.
    pub fn shard_for(&self, key: &str) -> usize {
        let h = fnv1a(key.as_bytes());
        let idx = match self.points.binary_search(&(h, usize::MAX)) {
            Ok(i) => i,
            Err(i) => i,
        };
        // Walk clockwise, wrapping past the top of the ring.
        self.points[idx % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_spreads_keys() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4096 {
            let key = format!("model-{i:016x}");
            let s = ring.shard_for(&key);
            assert_eq!(s, ring.shard_for(&key), "same key, same shard");
            counts[s] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > 4096 / 16,
                "shard {shard} got {c}/4096 keys — virtual points failed to spread load"
            );
        }
    }

    #[test]
    fn resizing_moves_only_a_fraction_of_keys() {
        let before = HashRing::new(4);
        let after = HashRing::new(5);
        let moved = (0..4096)
            .filter(|i| {
                let key = format!("model-{i:016x}");
                before.shard_for(&key) != after.shard_for(&key)
            })
            .count();
        // Naive modulo hashing would move ~80% of keys; consistent hashing
        // should move roughly 1/5. Allow generous slack.
        assert!(
            moved < 4096 / 2,
            "adding a shard moved {moved}/4096 keys — not consistent"
        );
    }

    #[test]
    fn single_shard_ring_routes_everything_to_shard_zero() {
        let ring = HashRing::new(1);
        for i in 0..64 {
            assert_eq!(ring.shard_for(&format!("m{i}")), 0);
        }
    }
}
