//! Raw syscall bindings for the readiness loop.
//!
//! `pathrep-net` deliberately avoids external async runtimes and FFI crates:
//! the handful of syscalls a readiness loop needs (`epoll` on Linux, `poll`
//! elsewhere, plus a non-blocking pipe for wakeups) are declared here against
//! the C library that `std` already links. Everything is wrapped into safe
//! `io::Result` helpers so the rest of the crate never touches `unsafe`.

#![allow(non_camel_case_types)]

use std::io;
use std::os::unix::io::RawFd;

type c_int = i32;

// ---------------------------------------------------------------------------
// Shared: pipes, close, read, write
// ---------------------------------------------------------------------------

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    #[cfg(target_os = "linux")]
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    #[cfg(not(target_os = "linux"))]
    fn pipe(fds: *mut c_int) -> c_int;
    #[cfg(not(target_os = "linux"))]
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
}

#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(target_os = "linux")]
const O_CLOEXEC: c_int = 0o2000000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;
#[cfg(not(target_os = "linux"))]
const F_GETFL: c_int = 3;
#[cfg(not(target_os = "linux"))]
const F_SETFL: c_int = 4;

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Create a non-blocking pipe; returns `(read_end, write_end)`.
pub fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0 as c_int; 2];
    #[cfg(target_os = "linux")]
    {
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    }
    #[cfg(not(target_os = "linux"))]
    {
        cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
        for fd in fds {
            let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
            cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
        }
    }
    Ok((fds[0], fds[1]))
}

/// Close a raw file descriptor, ignoring errors (used on teardown paths).
pub fn close_fd(fd: RawFd) {
    unsafe {
        close(fd);
    }
}

/// Read up to `buf.len()` bytes from a raw fd.
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Write bytes to a raw fd, returning how many were accepted.
pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

// ---------------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use super::{c_int, cvt};
    use std::io;
    use std::os::unix::io::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;

    /// Kernel `epoll_event`. On x86 the ABI packs the 64-bit data field
    /// directly after the 32-bit mask, hence `repr(packed)` there.
    #[cfg_attr(
        any(target_arch = "x86_64", target_arch = "x86"),
        repr(C, packed)
    )]
    #[cfg_attr(
        not(any(target_arch = "x86_64", target_arch = "x86")),
        repr(C)
    )]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
    }

    /// Create an epoll instance with close-on-exec set.
    pub fn epoll_create() -> io::Result<RawFd> {
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    fn ctl(epfd: RawFd, op: c_int, fd: RawFd, mask: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: mask, data };
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with the given readiness mask and user data word.
    pub fn epoll_add(epfd: RawFd, fd: RawFd, mask: u32, data: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_ADD, fd, mask, data)
    }

    /// Re-arm `fd` with a new readiness mask.
    pub fn epoll_mod(epfd: RawFd, fd: RawFd, mask: u32, data: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_MOD, fd, mask, data)
    }

    /// Drop `fd` from the interest set.
    pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness events; `timeout_ms < 0` blocks indefinitely.
    /// Retries on `EINTR` so callers never see spurious interrupt errors.
    pub fn epoll_wait_events(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Non-Linux unix: poll(2)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
pub use fallback::*;

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback {
    use super::c_int;
    use std::io;

    pub const POLLIN: i16 = 0x0001;
    pub const POLLOUT: i16 = 0x0004;
    pub const POLLERR: i16 = 0x0008;
    pub const POLLHUP: i16 = 0x0010;

    /// C `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: c_int) -> c_int;
    }

    /// Wait for readiness on the given fd set; retries on `EINTR`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        loop {
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!("pathrep-net needs a unix host: the readiness loop is built on epoll/poll");
