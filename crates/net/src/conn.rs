//! Non-blocking buffered connection.
//!
//! [`NbConn`] owns a non-blocking `TcpStream` plus two byte buffers: an
//! inbound accumulation buffer that frame decoders scan without copying,
//! and an outbound queue flushed opportunistically whenever the socket is
//! writable. The reactor never blocks on a socket — `fill` and `flush`
//! both stop at `WouldBlock` and rely on the poller to re-arm.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};

/// Compact the read buffer once this many consumed bytes accumulate at the
/// front; amortizes the memmove across many small frames.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// A non-blocking TCP connection with buffered frame I/O.
pub struct NbConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rstart: usize,
    wbuf: Vec<u8>,
    wstart: usize,
    eof: bool,
}

impl NbConn {
    /// Wrap a freshly-accepted stream: switches it to non-blocking mode and
    /// disables Nagle so single-frame replies leave immediately.
    pub fn new(stream: TcpStream) -> io::Result<NbConn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(NbConn {
            stream,
            rbuf: Vec::new(),
            rstart: 0,
            wbuf: Vec::new(),
            wstart: 0,
            eof: false,
        })
    }

    /// Raw fd for poller registration.
    pub fn raw_fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Read everything currently available on the socket into the inbound
    /// buffer. Returns `Ok(true)` once the peer has closed its write side.
    pub fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(true);
                }
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(self.eof),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Unconsumed inbound bytes (zero or more whole/partial frames).
    pub fn data(&self) -> &[u8] {
        &self.rbuf[self.rstart..]
    }

    /// Discard `n` bytes from the front of the inbound buffer after a frame
    /// decoder has accepted them.
    pub fn consume(&mut self, n: usize) {
        self.rstart += n;
        debug_assert!(self.rstart <= self.rbuf.len());
        if self.rstart == self.rbuf.len() {
            self.rbuf.clear();
            self.rstart = 0;
        } else if self.rstart >= COMPACT_THRESHOLD {
            self.rbuf.drain(..self.rstart);
            self.rstart = 0;
        }
    }

    /// True once the peer closed its write side (EOF seen by `fill`).
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Queue bytes for transmission; call [`NbConn::flush`] to push them out.
    pub fn queue_write(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    /// Push queued bytes to the socket until it would block. Returns
    /// `Ok(true)` when the outbound queue is fully drained.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wstart < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wstart..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "socket write returned 0"))
                }
                Ok(n) => self.wstart += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wstart = 0;
        Ok(true)
    }

    /// True while queued bytes remain unsent; the reactor keeps write
    /// interest armed exactly while this holds.
    pub fn wants_write(&self) -> bool {
        self.wstart < self.wbuf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn fill_consume_and_flush_round_trip_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = NbConn::new(server_side).unwrap();

        client.write_all(b"hello frame").unwrap();
        // Non-blocking read may race the kernel delivering bytes; spin briefly.
        for _ in 0..1000 {
            conn.fill().unwrap();
            if conn.data().len() >= 11 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(conn.data(), b"hello frame");
        conn.consume(6);
        assert_eq!(conn.data(), b"frame");
        conn.consume(5);
        assert!(conn.data().is_empty());

        conn.queue_write(b"reply ");
        conn.queue_write(b"bytes");
        assert!(conn.wants_write());
        while !conn.flush().unwrap() {}
        assert!(!conn.wants_write());
        let mut got = [0u8; 11];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"reply bytes");

        drop(client);
        for _ in 0..1000 {
            if conn.fill().unwrap() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(conn.is_eof());
    }
}
