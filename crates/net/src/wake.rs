//! Cross-thread wakeup pipe.
//!
//! A reactor blocked in `Poller::wait` has no way to notice work queued by
//! another thread; the classic fix is a self-pipe registered alongside the
//! sockets. [`WakePipe`] wraps a non-blocking pipe pair: any thread calls
//! [`WakePipe::wake`] to make the reactor's poll return, and the reactor
//! calls [`WakePipe::drain`] once it has picked up the pending work.
//!
//! `wake` writes a single byte and treats `EAGAIN` as success — a full pipe
//! means a wake is already pending, so the edge is never lost and the pipe
//! can never grow without bound.

use std::io;
use std::os::unix::io::RawFd;

use crate::sys;

/// A non-blocking self-pipe used to interrupt a blocked poller.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Create a fresh pipe pair with both ends non-blocking.
    pub fn new() -> io::Result<WakePipe> {
        let (read_fd, write_fd) = sys::nonblocking_pipe()?;
        Ok(WakePipe { read_fd, write_fd })
    }

    /// The readable end; register this with the poller under [`crate::Token::WAKE`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Interrupt the poller. Safe to call from any thread, any number of
    /// times; redundant wakes coalesce into the bytes already in the pipe.
    pub fn wake(&self) {
        // EAGAIN means the pipe already holds unread wake bytes — the
        // reactor is guaranteed to wake, so dropping this byte is correct.
        let _ = sys::write_fd(self.write_fd, &[1u8]);
    }

    /// Consume all pending wake bytes. Call from the reactor after poll
    /// reports the wake token readable, before draining the mailbox.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match sys::read_fd(self.read_fd, &mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break, // EAGAIN: drained
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

// The fds are plain integers owned by this struct; both ends are safe to
// use from multiple threads (wake from senders, drain from the reactor).
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_is_idempotent_and_drain_empties_the_pipe() {
        let pipe = WakePipe::new().unwrap();
        for _ in 0..10_000 {
            pipe.wake(); // must never block even when the pipe fills
        }
        pipe.drain();
        let mut buf = [0u8; 8];
        assert!(sys::read_fd(pipe.read_fd(), &mut buf).is_err(), "pipe should be empty");
    }
}
