//! One reactor shard: poller + connection registry + wake hookup.
//!
//! A [`Shard`] owns everything one reactor thread needs: the readiness
//! poller, a slab of buffered non-blocking connections (each carrying a
//! caller-supplied state value `D`), and an optional wake fd for mailbox
//! interrupts. The API is an explicit poll loop rather than callbacks —
//! the caller drives:
//!
//! ```text
//! loop {
//!     let woken = shard.poll(&mut events, timeout)?;
//!     if woken { /* drain the mailbox */ }
//!     for ev in &events { /* fill/parse or flush the conn */ }
//! }
//! ```
//!
//! keeping borrow scopes trivial and the control flow readable in one
//! screen of the serving code.

use std::io;
use std::net::TcpStream;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::conn::NbConn;
use crate::poller::{Event, Interest, Poller, Token};
use crate::registry::Registry;

/// A single-threaded reactor core; `D` is per-connection caller state.
pub struct Shard<D> {
    poller: Poller,
    conns: Registry<(NbConn, D)>,
    scratch: Vec<Event>,
}

impl<D> Shard<D> {
    /// Create an empty shard.
    pub fn new() -> io::Result<Shard<D>> {
        Ok(Shard { poller: Poller::new()?, conns: Registry::new(), scratch: Vec::new() })
    }

    /// Register a wake fd (see [`crate::Mailbox::wake_fd`]) under the
    /// reserved [`Token::WAKE`]; its readability is reported via the
    /// `woken` flag of [`Shard::poll`], never as a connection event.
    pub fn attach_wake(&mut self, fd: RawFd) -> io::Result<()> {
        self.poller.register(fd, Token::WAKE, Interest::READ)
    }

    /// Adopt a stream into the shard with read interest armed.
    pub fn add_conn(&mut self, stream: TcpStream, data: D) -> io::Result<Token> {
        let conn = NbConn::new(stream)?;
        let fd = conn.raw_fd();
        let token = self.conns.insert((conn, data));
        if let Err(e) = self.poller.register(fd, token, Interest::READ) {
            self.conns.remove(token);
            return Err(e);
        }
        Ok(token)
    }

    /// Exclusive access to a connection and its state.
    pub fn conn_mut(&mut self, token: Token) -> Option<(&mut NbConn, &mut D)> {
        self.conns.get_mut(token).map(|(c, d)| (c, d))
    }

    /// Re-arm a connection's poller interest. The serving loop arms write
    /// interest only while the conn has queued bytes, and drops read
    /// interest to exert backpressure while a request is in flight.
    pub fn set_interest(&mut self, token: Token, interest: Interest) -> io::Result<()> {
        let fd = match self.conns.get(token) {
            Some((c, _)) => c.raw_fd(),
            None => return Err(io::Error::new(io::ErrorKind::NotFound, "no such conn token")),
        };
        self.poller.reregister(fd, token, interest)
    }

    /// Deregister and return a connection (dropping it closes the socket).
    pub fn remove_conn(&mut self, token: Token) -> Option<(NbConn, D)> {
        let entry = self.conns.remove(token)?;
        let _ = self.poller.deregister(entry.0.raw_fd());
        Some(entry)
    }

    /// Number of live connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Tokens of all live connections (snapshot).
    pub fn tokens(&self) -> Vec<Token> {
        self.conns.tokens()
    }

    /// Wait for readiness. Connection events are appended to `out`
    /// (cleared first); returns `true` if the wake fd fired, in which case
    /// the caller should drain its mailbox before touching connections.
    pub fn poll(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        out.clear();
        self.scratch.clear();
        self.poller.wait(&mut self.scratch, timeout)?;
        let mut woken = false;
        for ev in &self.scratch {
            if ev.token == Token::WAKE {
                woken = true;
            } else {
                out.push(*ev);
            }
        }
        Ok(woken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::Mailbox;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// End-to-end reactor smoke test: echo frames through a shard while a
    /// second thread interrupts it through the mailbox.
    #[test]
    fn shard_echoes_bytes_and_honors_mailbox_wakeups() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (mailbox, sender) = Mailbox::<&'static str>::new().unwrap();

        let reactor = std::thread::spawn(move || {
            let mut shard: Shard<()> = Shard::new().unwrap();
            shard.attach_wake(mailbox.wake_fd()).unwrap();
            let (stream, _) = listener.accept().unwrap();
            shard.add_conn(stream, ()).unwrap();

            let mut events = Vec::new();
            let mut mail = Vec::new();
            let mut saw_note = false;
            loop {
                let woken = shard.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
                if woken {
                    mailbox.drain_into(&mut mail);
                    saw_note |= mail.drain(..).any(|m| m == "note");
                }
                let mut closed = Vec::new();
                for ev in events.clone() {
                    let (conn, _) = match shard.conn_mut(ev.token) {
                        Some(c) => c,
                        None => continue,
                    };
                    if ev.readable {
                        let eof = conn.fill().unwrap();
                        let pending = conn.data().to_vec();
                        conn.consume(pending.len());
                        conn.queue_write(&pending);
                        if eof && !conn.wants_write() {
                            closed.push(ev.token);
                        }
                    }
                    if conn.wants_write() {
                        let drained = conn.flush().unwrap();
                        let interest =
                            if drained { Interest::READ } else { Interest::BOTH };
                        shard.set_interest(ev.token, interest).unwrap();
                    }
                    if let Some((conn, _)) = shard.conn_mut(ev.token) {
                        if conn.is_eof() && !conn.wants_write() {
                            closed.push(ev.token);
                        }
                    }
                }
                for t in closed {
                    shard.remove_conn(t);
                }
                if shard.conn_count() == 0 {
                    break;
                }
            }
            saw_note
        });

        let mut client = TcpStream::connect(addr).unwrap();
        sender.send("note");
        client.write_all(b"ping-1").unwrap();
        let mut buf = [0u8; 6];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping-1");
        client.write_all(b"ping-2").unwrap();
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping-2");
        drop(client);

        assert!(reactor.join().unwrap(), "mailbox note was delivered through the wake pipe");
    }
}
