//! `pathrep-net` — a minimal readiness-loop runtime for the pathrep
//! serving plane.
//!
//! The crate provides exactly the pieces a sharded, non-blocking server
//! needs and nothing more — no external async runtime, no futures, no FFI
//! crates; just the handful of syscalls a reactor is made of:
//!
//! - [`Poller`] — level-triggered readiness (epoll on Linux, `poll(2)`
//!   elsewhere) mapping fds to caller [`Token`]s.
//! - [`WakePipe`] — a coalescing self-pipe so other threads can interrupt
//!   a blocked poll.
//! - [`NbConn`] — a non-blocking `TcpStream` with inbound accumulation and
//!   outbound queue buffers for frame I/O.
//! - [`Registry`] — a slab mapping tokens to per-connection state.
//! - [`Mailbox`]/[`MailboxSender`] — cross-shard message passing fused
//!   with the wake pipe (at most one wake byte in flight).
//! - [`Shard`] — the composite a reactor thread drives with an explicit
//!   poll loop.
//! - [`HashRing`] — FNV-1a consistent hashing of model ids to shards so
//!   same-model traffic batches locally.
//!
//! Everything is deterministic where it can be (hashing, token
//! assignment) and the crate holds the repo-wide line that concurrency
//! must never change results: `pathrep-net` moves bytes and wakeups, it
//! never touches an `f64`.

#![deny(missing_docs)]

mod conn;
mod mailbox;
mod poller;
mod registry;
mod ring;
mod shard;
mod sys;
mod wake;

pub use conn::NbConn;
pub use mailbox::{Mailbox, MailboxSender};
pub use poller::{Event, Interest, Poller, Token};
pub use registry::Registry;
pub use ring::{HashRing, DEFAULT_REPLICAS};
pub use shard::Shard;
pub use wake::WakePipe;
