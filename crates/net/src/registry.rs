//! Slab-style connection registry.
//!
//! Maps dense [`Token`] indices to per-connection state. Slots are recycled
//! through a free list so tokens stay small and the poller's user-data word
//! is always a valid slab index (or [`Token::WAKE`], which is reserved and
//! never handed out).

use crate::poller::Token;

/// Dense token-indexed storage with O(1) insert/remove.
pub struct Registry<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Registry<T> {
    /// Empty registry.
    pub fn new() -> Registry<T> {
        Registry { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Insert a value and return its token.
    pub fn insert(&mut self, value: T) -> Token {
        self.len += 1;
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(value);
                Token(idx)
            }
            None => {
                self.slots.push(Some(value));
                Token(self.slots.len() - 1)
            }
        }
    }

    /// Shared access to a slot.
    pub fn get(&self, token: Token) -> Option<&T> {
        self.slots.get(token.0).and_then(|s| s.as_ref())
    }

    /// Exclusive access to a slot.
    pub fn get_mut(&mut self, token: Token) -> Option<&mut T> {
        self.slots.get_mut(token.0).and_then(|s| s.as_mut())
    }

    /// Remove and return a slot's value, recycling the token.
    pub fn remove(&mut self, token: Token) -> Option<T> {
        let value = self.slots.get_mut(token.0).and_then(|s| s.take());
        if value.is_some() {
            self.free.push(token.0);
            self.len -= 1;
        }
        value
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over `(token, value)` pairs of live entries.
    pub fn iter(&self) -> impl Iterator<Item = (Token, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (Token(i), v)))
    }

    /// Tokens of all live entries (snapshot, so callers can mutate while walking).
    pub fn tokens(&self) -> Vec<Token> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| Token(i)))
            .collect()
    }
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_recycled_through_the_free_list() {
        let mut reg: Registry<&str> = Registry::new();
        let a = reg.insert("a");
        let b = reg.insert("b");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.remove(a), Some("a"));
        assert_eq!(reg.remove(a), None, "double remove is a no-op");
        let c = reg.insert("c");
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(reg.get(b), Some(&"b"));
        assert_eq!(reg.get(c), Some(&"c"));
        assert_eq!(reg.tokens().len(), 2);
    }
}
