//! Global variable indexing over a whole circuit.
//!
//! [`crate::sensitivity::DelayModel`] compacts the variable space to the
//! covered subcircuit (as the paper's `A` does). The SSTA substrate instead
//! works over the *whole* circuit, so it needs a fixed, dense numbering of
//! every possible variable: all region components of both parameters first,
//! then one random variable per gate.

use crate::model::{Parameter, Variable, VariationModel};
use serde::{Deserialize, Serialize};

/// Dense index space over all variables of a circuit with `n_gates` gates
/// under a given region hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariableSpace {
    region_count: usize,
    n_gates: usize,
}

impl VariableSpace {
    /// Builds the space for `model` and a circuit of `n_gates` gates.
    pub fn new(model: &VariationModel, n_gates: usize) -> Self {
        VariableSpace {
            region_count: model.hierarchy().region_count(),
            n_gates,
        }
    }

    /// Total number of variables: `2·R + n_gates`.
    pub fn len(&self) -> usize {
        2 * self.region_count + self.n_gates
    }

    /// `true` when the space is empty (never for a real circuit).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dense index of `variable`.
    ///
    /// # Panics
    ///
    /// Panics if the variable is out of this space's range.
    pub fn index_of(&self, variable: Variable) -> usize {
        match variable {
            Variable::Region { param, region_flat } => {
                assert!(region_flat < self.region_count, "region out of range");
                let p = match param {
                    Parameter::Leff => 0,
                    Parameter::Vt => 1,
                };
                p * self.region_count + region_flat
            }
            Variable::GateRandom { gate } => {
                assert!(gate < self.n_gates, "gate out of range");
                2 * self.region_count + gate
            }
        }
    }

    /// The variable at dense index `idx` (inverse of [`index_of`]).
    ///
    /// [`index_of`]: VariableSpace::index_of
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn variable_at(&self, idx: usize) -> Variable {
        assert!(idx < self.len(), "variable index out of range");
        if idx < self.region_count {
            Variable::Region {
                param: Parameter::Leff,
                region_flat: idx,
            }
        } else if idx < 2 * self.region_count {
            Variable::Region {
                param: Parameter::Vt,
                region_flat: idx - self.region_count,
            }
        } else {
            Variable::GateRandom {
                gate: idx - 2 * self.region_count,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_indices() {
        let model = VariationModel::three_level();
        let vs = VariableSpace::new(&model, 17);
        assert_eq!(vs.len(), 2 * 21 + 17);
        for idx in 0..vs.len() {
            assert_eq!(vs.index_of(vs.variable_at(idx)), idx);
        }
    }

    #[test]
    fn params_do_not_collide() {
        let model = VariationModel::three_level();
        let vs = VariableSpace::new(&model, 4);
        let a = vs.index_of(Variable::Region {
            param: Parameter::Leff,
            region_flat: 5,
        });
        let b = vs.index_of(Variable::Region {
            param: Parameter::Vt,
            region_flat: 5,
        });
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "gate out of range")]
    fn gate_bound_checked() {
        let model = VariationModel::three_level();
        let vs = VariableSpace::new(&model, 4);
        let _ = vs.index_of(Variable::GateRandom { gate: 4 });
    }
}
