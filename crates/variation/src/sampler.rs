//! Seeded Monte-Carlo sampling of the standardized variation vector.

use pathrep_linalg::gauss;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws iid standard-normal variation vectors `x ~ N(0, I)`.
///
/// All entries of the paper's `x` are independent by construction (the
/// hierarchical model has already decorrelated the spatial components), so
/// sampling is a plain iid draw.
///
/// # Example
///
/// ```
/// use pathrep_variation::sampler::VariationSampler;
///
/// let mut sampler = VariationSampler::new(3, 42);
/// let x = sampler.draw();
/// assert_eq!(x.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct VariationSampler {
    dim: usize,
    rng: StdRng,
}

impl VariationSampler {
    /// Creates a sampler for `dim`-dimensional variation vectors.
    pub fn new(dim: usize, seed: u64) -> Self {
        VariationSampler {
            dim,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Dimension of the sampled vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draws the next variation vector.
    pub fn draw(&mut self) -> Vec<f64> {
        let mut x = vec![0.0; self.dim];
        gauss::fill_standard_normal(&mut self.rng, &mut x);
        x
    }

    /// Draws `n` vectors as rows of a flat buffer (`n × dim`, row-major).
    pub fn draw_many(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.draw()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = VariationSampler::new(5, 1);
        let mut b = VariationSampler::new(5, 1);
        assert_eq!(a.draw(), b.draw());
        assert_eq!(a.draw_many(3), b.draw_many(3));
    }

    #[test]
    fn seeds_differ() {
        let mut a = VariationSampler::new(5, 1);
        let mut b = VariationSampler::new(5, 2);
        assert_ne!(a.draw(), b.draw());
    }

    #[test]
    fn moments_are_standard() {
        let mut s = VariationSampler::new(4, 99);
        let n = 20_000;
        let mut sum = [0.0; 4];
        let mut sumsq = [0.0; 4];
        for _ in 0..n {
            let x = s.draw();
            for j in 0..4 {
                sum[j] += x[j];
                sumsq[j] += x[j] * x[j];
            }
        }
        for j in 0..4 {
            let mean = sum[j] / n as f64;
            let var = sumsq[j] / n as f64 - mean * mean;
            assert!(mean.abs() < 0.05);
            assert!((var - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn cross_coordinate_independence() {
        let mut s = VariationSampler::new(2, 7);
        let n = 20_000;
        let mut cross = 0.0;
        for _ in 0..n {
            let x = s.draw();
            cross += x[0] * x[1];
        }
        assert!((cross / n as f64).abs() < 0.05);
    }
}
