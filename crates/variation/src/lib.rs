//! Process-variation substrate for the `pathrep` workspace.
//!
//! Models the paper's variation setting (Section 6):
//!
//! * two varying parameters, effective channel length `L_eff` and zero-bias
//!   threshold voltage `V_t`, Gaussian with sigma = 10 % of nominal;
//! * spatial correlation via the **hierarchical model** of Agarwal/Blaauw —
//!   a quad-tree of rectangular regions (3 levels = 21 regions for small
//!   circuits, 5 levels = 341 for large ones), see [`regions`];
//! * a **per-gate independent random** component carrying 6 % of the total
//!   delay variance, see [`model`];
//! * construction of the linear delay model `d = mu + A*x` with
//!   `A = G*Sigma` factored through segment delays, see [`sensitivity`];
//! * seeded Monte-Carlo sampling of the standardized variation vector `x`,
//!   see [`sampler`].
//!
//! # Example
//!
//! ```
//! use pathrep_circuit::generator::{CircuitGenerator, GeneratorConfig};
//! use pathrep_circuit::paths::{decompose_into_segments, Path};
//! use pathrep_variation::model::VariationModel;
//! use pathrep_variation::sensitivity::DelayModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = CircuitGenerator::new(GeneratorConfig::new(60, 8, 4).with_seed(1)).generate()?;
//! // One trivial path: any source gate followed along first fanouts.
//! let g0 = circuit.graph().sources()[0];
//! let mut gates = vec![g0];
//! while let Some(&next) = circuit.graph().fanouts(*gates.last().unwrap()).first() {
//!     gates.push(next);
//! }
//! let paths = vec![Path::new(gates)?];
//! let dec = decompose_into_segments(&paths)?;
//! let model = VariationModel::three_level();
//! let dm = DelayModel::build(&circuit, &paths, &dec, &model)?;
//! assert_eq!(dm.a().nrows(), 1);
//! # Ok(())
//! # }
//! ```

pub mod catalog;
pub mod model;
pub mod regions;
pub mod sampler;
pub mod sensitivity;

pub use model::VariationModel;
pub use sensitivity::DelayModel;
