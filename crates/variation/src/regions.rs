//! Hierarchical spatial-correlation regions (Agarwal/Blaauw quad-tree).
//!
//! Level 0 is the whole die (the die-to-die component); level `l` splits the
//! die into a `2^l × 2^l` grid. A model with `L` levels has
//! `(4^L − 1) / 3` regions in total — 21 for `L = 3`, 341 for `L = 5`,
//! exactly the `|R|` column of the paper's tables. A gate's parameter value
//! is the weighted sum of the region variables containing it, one per level,
//! which induces spatial correlation that decays with distance.

use serde::{Deserialize, Serialize};

/// Identifier of one region: its level and flat grid index within the level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId {
    /// Quad-tree level, 0-based (0 = whole die).
    pub level: usize,
    /// Row-major cell index within the `2^level × 2^level` grid.
    pub cell: usize,
}

/// The quad-tree region hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionHierarchy {
    levels: usize,
}

impl RegionHierarchy {
    /// Creates a hierarchy with `levels` levels (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `levels > 12` (4^12 cells would overflow
    /// any practical use).
    pub fn new(levels: usize) -> Self {
        assert!((1..=12).contains(&levels), "levels must lie in 1..=12");
        RegionHierarchy { levels }
    }

    /// Number of quad-tree levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Total number of regions across all levels: `(4^L − 1) / 3`.
    pub fn region_count(&self) -> usize {
        ((4usize.pow(self.levels as u32)) - 1) / 3
    }

    /// Number of cells at `level`.
    pub fn cells_at(&self, level: usize) -> usize {
        4usize.pow(level as u32)
    }

    /// The region containing `(x, y)` at `level`. Coordinates are clamped
    /// into the unit die.
    pub fn region_at(&self, level: usize, x: f64, y: f64) -> RegionId {
        debug_assert!(level < self.levels);
        let side = 1usize << level;
        let ix = ((x.clamp(0.0, 1.0) * side as f64) as usize).min(side - 1);
        let iy = ((y.clamp(0.0, 1.0) * side as f64) as usize).min(side - 1);
        RegionId {
            level,
            cell: iy * side + ix,
        }
    }

    /// All regions containing `(x, y)`, one per level (die-to-die first).
    pub fn regions_containing(&self, x: f64, y: f64) -> Vec<RegionId> {
        (0..self.levels).map(|l| self.region_at(l, x, y)).collect()
    }

    /// Flat index of a region across all levels (level-0 region is 0, then
    /// level-1's cells, ...). Suitable for variable numbering.
    pub fn flat_index(&self, id: RegionId) -> usize {
        debug_assert!(id.level < self.levels);
        let offset = ((4usize.pow(id.level as u32)) - 1) / 3;
        offset + id.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_counts_match_paper() {
        assert_eq!(RegionHierarchy::new(3).region_count(), 21);
        assert_eq!(RegionHierarchy::new(5).region_count(), 341);
        assert_eq!(RegionHierarchy::new(1).region_count(), 1);
    }

    #[test]
    fn level0_is_whole_die() {
        let h = RegionHierarchy::new(3);
        let a = h.region_at(0, 0.05, 0.05);
        let b = h.region_at(0, 0.95, 0.95);
        assert_eq!(a, b);
        assert_eq!(a.cell, 0);
    }

    #[test]
    fn deeper_levels_separate_distant_gates() {
        let h = RegionHierarchy::new(3);
        let a = h.region_at(2, 0.05, 0.05);
        let b = h.region_at(2, 0.95, 0.95);
        assert_ne!(a, b);
    }

    #[test]
    fn nearby_gates_share_all_regions() {
        let h = RegionHierarchy::new(5);
        let ra = h.regions_containing(0.301, 0.702);
        let rb = h.regions_containing(0.302, 0.703);
        assert_eq!(ra, rb);
    }

    #[test]
    fn flat_indices_are_unique_and_dense() {
        let h = RegionHierarchy::new(3);
        let mut seen = vec![false; h.region_count()];
        for level in 0..3 {
            for cell in 0..h.cells_at(level) {
                let idx = h.flat_index(RegionId { level, cell });
                assert!(idx < h.region_count());
                assert!(!seen[idx], "duplicate flat index {idx}");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn boundary_coordinates_clamp() {
        let h = RegionHierarchy::new(4);
        let r = h.region_at(3, 1.0, 1.0);
        assert_eq!(r.cell, 63); // last cell of the 8×8 grid
        let r = h.region_at(3, -0.2, 1.7);
        assert_eq!(r.cell, 56); // bottom-left x, top y ⇒ row 7, col 0
    }

    #[test]
    #[should_panic(expected = "levels must lie")]
    fn zero_levels_rejected() {
        let _ = RegionHierarchy::new(0);
    }
}
