//! The variation model: parameters, variance budget, spatial weights.

use crate::regions::RegionHierarchy;
use serde::{Deserialize, Serialize};

/// A varying process parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parameter {
    /// Effective channel length.
    Leff,
    /// Zero-bias threshold voltage.
    Vt,
}

impl Parameter {
    /// Both parameters, in a fixed order.
    pub const ALL: [Parameter; 2] = [Parameter::Leff, Parameter::Vt];
}

/// One independent standard-normal variable of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variable {
    /// A spatial (die-to-die or within-die) component of one parameter:
    /// `region_flat` is the flat region index of [`RegionHierarchy`].
    Region {
        /// Which parameter this component perturbs.
        param: Parameter,
        /// Flat index of the region (see [`RegionHierarchy::flat_index`]).
        region_flat: usize,
    },
    /// The per-gate independent random component (one per gate, shared
    /// across parameters, as in the paper's variable accounting).
    GateRandom {
        /// Gate index ([`pathrep_circuit::netlist::GateId::index`]).
        gate: usize,
    },
}

/// The full variation model: region hierarchy, per-level variance split,
/// and random-component fraction.
///
/// The paper's configuration: parameters at σ = 10 % of mean (already folded
/// into the cell library's ps-per-σ sensitivities), a 3-level model
/// (21 regions) for small circuits and a 5-level model (341 regions) for
/// large ones, and a per-gate random term carrying 6 % of total variance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    hierarchy: RegionHierarchy,
    /// Per-level standard-deviation weights `w_l` with `Σ w_l² = 1`.
    level_weights: Vec<f64>,
    /// Fraction of total delay variance assigned to the per-gate random
    /// component.
    random_fraction: f64,
    /// Extra multiplier on the per-gate random σ (1.0 = the calibrated
    /// budget; > 1 models technology scaling growing the *extent* of
    /// independent random variation, the paper's Figure-2(b)/Section-5
    /// regime).
    random_scale: f64,
}

impl VariationModel {
    /// Builds a model with an equal variance split across levels.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ random_fraction < 1`.
    pub fn new(levels: usize, random_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&random_fraction),
            "random_fraction must lie in [0,1)"
        );
        let w = (1.0 / levels as f64).sqrt();
        VariationModel {
            hierarchy: RegionHierarchy::new(levels),
            level_weights: vec![w; levels],
            random_fraction,
            random_scale: 1.0,
        }
    }

    /// Scales the per-gate random σ by `scale` (growing the total variance;
    /// the spatial budget is untouched).
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0`.
    pub fn with_random_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "random scale must be positive");
        self.random_scale = scale;
        self
    }

    /// The per-gate random σ multiplier.
    pub fn random_scale(&self) -> f64 {
        self.random_scale
    }

    /// The paper's small-circuit model: 3 levels (21 regions), 6 % random.
    pub fn three_level() -> Self {
        Self::new(3, 0.06)
    }

    /// The paper's large-circuit model: 5 levels (341 regions), 6 % random.
    pub fn five_level() -> Self {
        Self::new(5, 0.06)
    }

    /// The region hierarchy.
    pub fn hierarchy(&self) -> &RegionHierarchy {
        &self.hierarchy
    }

    /// Per-level σ-weights (`Σ w_l² = 1`).
    pub fn level_weights(&self) -> &[f64] {
        &self.level_weights
    }

    /// Variance fraction of the per-gate random component.
    pub fn random_fraction(&self) -> f64 {
        self.random_fraction
    }

    /// Overrides the per-level weights.
    ///
    /// # Panics
    ///
    /// Panics if the weight count differs from the level count or the
    /// squared weights do not sum to 1 within 1e-9.
    pub fn with_level_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.hierarchy.levels());
        let ssq: f64 = weights.iter().map(|w| w * w).sum();
        assert!(
            (ssq - 1.0).abs() < 1e-9,
            "squared level weights must sum to 1, got {ssq}"
        );
        self.level_weights = weights;
        self
    }

    /// Scale applied to spatial (per-parameter) sensitivities so that the
    /// random fraction claims its variance share: `sqrt(1 − f)`.
    pub fn spatial_scale(&self) -> f64 {
        (1.0 - self.random_fraction).sqrt()
    }

    /// Correlation between one parameter's value at two die locations —
    /// the hierarchical model's spatial kernel: locations sharing deeper
    /// quad-tree regions correlate more, die-to-die alone gives the floor
    /// `w_0²`. (The per-gate random component is excluded: it is
    /// gate-specific, not location-specific.)
    pub fn spatial_correlation(&self, a: (f64, f64), b: (f64, f64)) -> f64 {
        let ha = self.hierarchy.regions_containing(a.0, a.1);
        let hb = self.hierarchy.regions_containing(b.0, b.1);
        let shared: f64 = ha
            .iter()
            .zip(hb.iter())
            .zip(self.level_weights.iter())
            .filter(|((ra, rb), _)| ra == rb)
            .map(|(_, &w)| w * w)
            .sum();
        // Both parameter values have unit variance (Σ w² = 1), so the
        // covariance over shared regions *is* the correlation.
        shared
    }

    /// The per-gate random σ (in ps) for a gate whose per-parameter
    /// sensitivities are `sens` (in ps per σ):
    /// `random_scale · sqrt(f · Σ s_p²)`.
    ///
    /// At `random_scale = 1` the gate's total delay variance is preserved:
    /// `(1−f)·Σs² + f·Σs² = Σs²`.
    pub fn random_sigma(&self, sens: &[f64]) -> f64 {
        let total: f64 = sens.iter().map(|s| s * s).sum();
        self.random_scale * (self.random_fraction * total).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_region_counts() {
        assert_eq!(VariationModel::three_level().hierarchy().region_count(), 21);
        assert_eq!(VariationModel::five_level().hierarchy().region_count(), 341);
    }

    #[test]
    fn default_weights_are_unit_energy() {
        let m = VariationModel::three_level();
        let ssq: f64 = m.level_weights().iter().map(|w| w * w).sum();
        assert!((ssq - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_budget_balances() {
        let m = VariationModel::new(4, 0.06);
        let sens = [8.0, 5.0]; // ps per σ for Leff, Vt
        let total: f64 = sens.iter().map(|s| s * s).sum();
        let spatial: f64 = sens
            .iter()
            .map(|s| (s * m.spatial_scale()).powi(2))
            .sum();
        let random = m.random_sigma(&sens).powi(2);
        assert!((spatial + random - total).abs() < 1e-9 * total);
        assert!((random / total - 0.06).abs() < 1e-12);
    }

    #[test]
    fn custom_weights_validated() {
        let w = vec![0.8, 0.6];
        let m = VariationModel::new(2, 0.1).with_level_weights(w);
        assert_eq!(m.level_weights(), &[0.8, 0.6]);
    }

    #[test]
    #[should_panic]
    fn bad_weights_rejected() {
        let _ = VariationModel::new(2, 0.1).with_level_weights(vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "random_fraction")]
    fn bad_fraction_rejected() {
        let _ = VariationModel::new(3, 1.0);
    }

    #[test]
    fn spatial_correlation_decays_with_distance() {
        let m = VariationModel::five_level();
        let a = (0.30, 0.30);
        let same = m.spatial_correlation(a, (0.30, 0.30));
        let near = m.spatial_correlation(a, (0.31, 0.31));
        let mid = m.spatial_correlation(a, (0.40, 0.40));
        let far = m.spatial_correlation(a, (0.95, 0.95));
        assert!((same - 1.0).abs() < 1e-12, "self-correlation must be 1");
        assert!(near >= mid && mid >= far, "correlation must decay: {near} {mid} {far}");
        // Die-to-die floor: even opposite corners share level 0.
        let w0 = m.level_weights()[0];
        assert!((far - w0 * w0).abs() < 1e-12 || far >= w0 * w0);
        assert!(far > 0.0);
    }

    #[test]
    fn spatial_correlation_is_symmetric() {
        let m = VariationModel::three_level();
        let a = (0.1, 0.8);
        let b = (0.7, 0.2);
        assert_eq!(m.spatial_correlation(a, b), m.spatial_correlation(b, a));
    }

    #[test]
    fn zero_random_fraction_allowed() {
        let m = VariationModel::new(3, 0.0);
        assert_eq!(m.random_sigma(&[8.0, 5.0]), 0.0);
        assert!((m.spatial_scale() - 1.0).abs() < 1e-15);
    }
}
