//! Construction of the linear delay model `d_Ptar = µ + A·x`, factored
//! through segments as `A = G·Σ` (paper Eqn 1–2).

use crate::model::{Parameter, Variable, VariationModel};
use pathrep_circuit::generator::PlacedCircuit;
use pathrep_circuit::netlist::GateId;
use pathrep_circuit::paths::{Path, SegmentDecomposition};
use pathrep_linalg::{LinalgError, Matrix};
use std::collections::HashMap;
use std::fmt;

/// Error from delay-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum VariationError {
    /// The path set and decomposition disagree.
    Inconsistent {
        /// What was inconsistent.
        what: &'static str,
    },
    /// An underlying matrix operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for VariationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariationError::Inconsistent { what } => {
                write!(f, "inconsistent delay-model inputs: {what}")
            }
            VariationError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for VariationError {}

impl From<LinalgError> for VariationError {
    fn from(e: LinalgError) -> Self {
        VariationError::Linalg(e)
    }
}

/// Per-gate first-order contribution terms: which model [`Variable`]s a
/// gate's delay depends on and with what ps-per-σ coefficient.
///
/// Shared by [`DelayModel::build`] and the SSTA substrate so both use one
/// definition of the variance budget.
pub fn gate_contribution_terms(
    circuit: &PlacedCircuit,
    model: &VariationModel,
    gate: GateId,
) -> Vec<(Variable, f64)> {
    let timing = circuit.gate_timing(gate);
    let (x, y) = circuit.placement().location(gate);
    let hierarchy = model.hierarchy();
    let sens = [timing.leff_sens_ps, timing.vt_sens_ps];
    let spatial_scale = model.spatial_scale();
    let mut terms = Vec::with_capacity(2 * model.level_weights().len() + 1);
    for (param, s_raw) in Parameter::ALL.into_iter().zip(sens) {
        let s = s_raw * spatial_scale;
        for (level, &w) in model.level_weights().iter().enumerate() {
            let region = hierarchy.region_at(level, x, y);
            terms.push((
                Variable::Region {
                    param,
                    region_flat: hierarchy.flat_index(region),
                },
                s * w,
            ));
        }
    }
    let r = model.random_sigma(&sens);
    if r > 0.0 {
        terms.push((Variable::GateRandom { gate: gate.index() }, r));
    }
    terms
}

/// Standard deviation of a single gate's delay under `model`.
///
/// At the calibrated budget (`random_scale = 1`) this equals
/// `sqrt(s_Leff² + s_Vt²)`; a larger random scale grows it accordingly.
pub fn gate_delay_sigma(circuit: &PlacedCircuit, model: &VariationModel, gate: GateId) -> f64 {
    let t = circuit.gate_timing(gate);
    let total = t.leff_sens_ps * t.leff_sens_ps + t.vt_sens_ps * t.vt_sens_ps;
    let spatial = total * model.spatial_scale().powi(2);
    let random = model.random_sigma(&[t.leff_sens_ps, t.vt_sens_ps]).powi(2);
    (spatial + random).sqrt()
}

/// The assembled linear delay model for one target-path set.
///
/// All quantities are in ps; the variation vector `x` is standard normal.
#[derive(Debug, Clone)]
pub struct DelayModel {
    variables: Vec<Variable>,
    /// Path/segment incidence (`n` × `n_S`, 0/1).
    g: Matrix,
    /// Segment sensitivities (`n_S` × `|x|`).
    sigma: Matrix,
    /// `A = G·Σ` (`n` × `|x|`).
    a: Matrix,
    mu_segments: Vec<f64>,
    mu_paths: Vec<f64>,
    covered_regions: usize,
}

impl DelayModel {
    /// Builds the delay model for `paths` (already decomposed into `dec`)
    /// on `circuit` under `model`.
    ///
    /// # Errors
    ///
    /// * [`VariationError::Inconsistent`] when `paths` and `dec` disagree.
    /// * [`VariationError::Linalg`] on (impossible in practice) shape errors.
    pub fn build(
        circuit: &PlacedCircuit,
        paths: &[Path],
        dec: &SegmentDecomposition,
        model: &VariationModel,
    ) -> Result<Self, VariationError> {
        if paths.len() != dec.path_count() {
            return Err(VariationError::Inconsistent {
                what: "path count differs between paths and decomposition",
            });
        }
        let _span = pathrep_obs::span!("delay_model_build");

        // --- Variable catalog over the covered subcircuit ---
        let hierarchy = model.hierarchy();
        let mut var_index: HashMap<Variable, usize> = HashMap::new();
        let mut variables: Vec<Variable> = Vec::new();
        let mut covered_region_flats: Vec<usize> = Vec::new();
        let mut intern = |v: Variable, variables: &mut Vec<Variable>| -> usize {
            *var_index.entry(v).or_insert_with(|| {
                variables.push(v);
                variables.len() - 1
            })
        };
        // First pass: region variables (per parameter) then gate randoms,
        // in covered-gate order, for a stable catalog.
        for &g in dec.covered_gates() {
            let (x, y) = circuit.placement().location(g);
            for region in hierarchy.regions_containing(x, y) {
                let flat = hierarchy.flat_index(region);
                covered_region_flats.push(flat);
                for param in Parameter::ALL {
                    intern(
                        Variable::Region {
                            param,
                            region_flat: flat,
                        },
                        &mut variables,
                    );
                }
            }
        }
        covered_region_flats.sort_unstable();
        covered_region_flats.dedup();
        let covered_regions = covered_region_flats.len();
        for &g in dec.covered_gates() {
            intern(Variable::GateRandom { gate: g.index() }, &mut variables);
        }

        // --- Per-gate sensitivity rows, accumulated into segments ---
        let n_vars = variables.len();
        let n_seg = dec.segment_count();
        let mut sigma = Matrix::zeros(n_seg, n_vars);
        let mut mu_segments = vec![0.0; n_seg];
        for (si, seg) in dec.segments().iter().enumerate() {
            for &g in seg.gates() {
                mu_segments[si] += circuit.nominal_delay(g);
                for (var, coeff) in gate_contribution_terms(circuit, model, g) {
                    sigma[(si, var_index[&var])] += coeff;
                }
            }
        }

        // --- Incidence and products ---
        let mut g_mat = Matrix::zeros(paths.len(), n_seg);
        for p in 0..paths.len() {
            for &s in dec.path_segments(p) {
                g_mat[(p, s)] = 1.0;
            }
        }
        {
            // Assembly work: one accumulation per (gate, contribution
            // term) while building Σ. The G·Σ product and G·μ records
            // come from the matmul/matvec kernels themselves.
            let terms: u64 = dec
                .segments()
                .iter()
                .map(|s| s.gates().len() as u64)
                .sum();
            let sig = (n_seg * n_vars) as u64;
            pathrep_obs::work::record("delay_model_build", 7 * terms, 8 * sig, sig);
            pathrep_obs::counter_add("variation.model.variables", n_vars as u64);
            pathrep_obs::counter_add("variation.model.segments", n_seg as u64);
        }
        let a = g_mat.matmul(&sigma)?;
        let mu_paths = g_mat.matvec(&mu_segments)?;
        Ok(DelayModel {
            variables,
            g: g_mat,
            sigma,
            a,
            mu_segments,
            mu_paths,
            covered_regions,
        })
    }

    /// The variable catalog (columns of `Σ` and `A`).
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Dimension of the variation vector `x`.
    pub fn variable_count(&self) -> usize {
        self.variables.len()
    }

    /// Path/segment incidence matrix `G`.
    pub fn g(&self) -> &Matrix {
        &self.g
    }

    /// Segment sensitivity matrix `Σ`.
    pub fn sigma(&self) -> &Matrix {
        &self.sigma
    }

    /// Path sensitivity matrix `A = G·Σ`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Nominal segment delays `µ_S`.
    pub fn mu_segments(&self) -> &[f64] {
        &self.mu_segments
    }

    /// Nominal path delays `µ_Ptar = G·µ_S`.
    pub fn mu_paths(&self) -> &[f64] {
        &self.mu_paths
    }

    /// Number of distinct covered regions (the tables' `|R_C|`).
    pub fn covered_region_count(&self) -> usize {
        self.covered_regions
    }

    /// Path delays for a realization `x`: `µ + A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::Linalg`] when `x` has the wrong length.
    pub fn path_delays(&self, x: &[f64]) -> Result<Vec<f64>, VariationError> {
        let mut d = self.a.matvec(x)?;
        for (di, mu) in d.iter_mut().zip(self.mu_paths.iter()) {
            *di += mu;
        }
        Ok(d)
    }

    /// Segment delays for a realization `x`: `µ_S + Σ·x`.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::Linalg`] when `x` has the wrong length.
    pub fn segment_delays(&self, x: &[f64]) -> Result<Vec<f64>, VariationError> {
        let mut d = self.sigma.matvec(x)?;
        for (di, mu) in d.iter_mut().zip(self.mu_segments.iter()) {
            *di += mu;
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrep_circuit::cell::{CellKind, CellLibrary};
    use pathrep_circuit::netlist::{Netlist, Signal};
    use pathrep_circuit::paths::decompose_into_segments;
    use pathrep_circuit::placement::Placement;

    /// The Figure-1 circuit with all gates placed at one point (so spatial
    /// variables collapse to shared regions).
    fn figure1_model() -> (PlacedCircuit, Vec<Path>, SegmentDecomposition) {
        let mut nl = Netlist::new(2);
        let g1 = nl.add_gate(CellKind::Buf, vec![Signal::Input(0)]).unwrap();
        let g2 = nl.add_gate(CellKind::Buf, vec![Signal::Input(1)]).unwrap();
        let g3 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g1)]).unwrap();
        let g4 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g2)]).unwrap();
        let g5 = nl
            .add_gate(CellKind::Nand2, vec![Signal::Gate(g3), Signal::Gate(g4)])
            .unwrap();
        let g6 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)]).unwrap();
        let g7 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)]).unwrap();
        let g8 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g6)]).unwrap();
        let g9 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g7)]).unwrap();
        nl.mark_output(g8).unwrap();
        nl.mark_output(g9).unwrap();
        let placement = Placement::new(vec![(0.5, 0.5); 9]);
        let circuit =
            PlacedCircuit::from_parts(nl, placement, CellLibrary::synthetic_90nm());
        let paths = vec![
            Path::new(vec![g1, g3, g5, g7, g9]).unwrap(),
            Path::new(vec![g1, g3, g5, g6, g8]).unwrap(),
            Path::new(vec![g2, g4, g5, g6, g8]).unwrap(),
            Path::new(vec![g2, g4, g5, g7, g9]).unwrap(),
        ];
        let dec = decompose_into_segments(&paths).unwrap();
        (circuit, paths, dec)
    }

    #[test]
    fn a_equals_g_sigma() {
        let (c, paths, dec) = figure1_model();
        let dm = DelayModel::build(&c, &paths, &dec, &VariationModel::three_level()).unwrap();
        let gs = dm.g().matmul(dm.sigma()).unwrap();
        assert!(gs.approx_eq(dm.a(), 1e-12));
    }

    #[test]
    fn variable_accounting_matches_paper_formula() {
        // |x| = 2·(covered regions) + (covered gates).
        let (c, paths, dec) = figure1_model();
        let dm = DelayModel::build(&c, &paths, &dec, &VariationModel::three_level()).unwrap();
        // All gates at one point ⇒ one region per level ⇒ 3 covered regions.
        assert_eq!(dm.covered_region_count(), 3);
        assert_eq!(dm.variable_count(), 2 * 3 + 9);
    }

    #[test]
    fn nominal_paths_are_gate_delay_sums() {
        let (c, paths, dec) = figure1_model();
        let dm = DelayModel::build(&c, &paths, &dec, &VariationModel::three_level()).unwrap();
        for (p, path) in paths.iter().enumerate() {
            let direct: f64 = path.gates().iter().map(|&g| c.nominal_delay(g)).sum();
            assert!((dm.mu_paths()[p] - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn motivating_identity_holds_for_realizations() {
        // d_p1 = d_p2 − d_p3 + d_p4 for every realization (paper Section 2).
        let (c, paths, dec) = figure1_model();
        let dm = DelayModel::build(&c, &paths, &dec, &VariationModel::three_level()).unwrap();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let x: Vec<f64> = (0..dm.variable_count())
                .map(|_| rng.gen_range(-2.0..2.0))
                .collect();
            let d = dm.path_delays(&x).unwrap();
            assert!(
                (d[0] - (d[1] - d[2] + d[3])).abs() < 1e-9,
                "identity violated"
            );
        }
    }

    #[test]
    fn path_delay_equals_sum_of_its_segment_delays() {
        let (c, paths, dec) = figure1_model();
        let dm = DelayModel::build(&c, &paths, &dec, &VariationModel::three_level()).unwrap();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let x: Vec<f64> = (0..dm.variable_count())
            .map(|_| rng.gen_range(-2.0..2.0))
            .collect();
        let dp = dm.path_delays(&x).unwrap();
        let ds = dm.segment_delays(&x).unwrap();
        for (p, &d) in dp.iter().enumerate().take(paths.len()) {
            let via: f64 = dec.path_segments(p).iter().map(|&s| ds[s]).sum();
            assert!((d - via).abs() < 1e-9);
        }
    }

    #[test]
    fn gate_variance_budget_preserved() {
        // A single-gate path: total delay variance must equal Σ sens².
        let mut nl = Netlist::new(1);
        let g = nl.add_gate(CellKind::Nand2, vec![Signal::Input(0), Signal::Input(0)]);
        // Nand2 needs 2 fanins; reuse input 0 twice.
        let g = g.unwrap();
        nl.mark_output(g).unwrap();
        let circuit = PlacedCircuit::from_parts(
            nl,
            Placement::new(vec![(0.25, 0.75)]),
            CellLibrary::synthetic_90nm(),
        );
        let paths = vec![Path::new(vec![g]).unwrap()];
        let dec = decompose_into_segments(&paths).unwrap();
        let model = VariationModel::three_level();
        let dm = DelayModel::build(&circuit, &paths, &dec, &model).unwrap();
        // Row of A for the single path: variance = Σ a_j².
        let var: f64 = dm.a().row(0).iter().map(|a| a * a).sum();
        let t = circuit.library().timing(CellKind::Nand2);
        let expected = t.leff_sens_ps.powi(2) + t.vt_sens_ps.powi(2);
        assert!(
            (var - expected).abs() < 1e-9 * expected,
            "variance {var} != {expected}"
        );
    }

    #[test]
    fn inconsistent_inputs_rejected() {
        let (c, paths, dec) = figure1_model();
        let err = DelayModel::build(&c, &paths[..2], &dec, &VariationModel::three_level());
        assert!(matches!(err, Err(VariationError::Inconsistent { .. })));
    }

    #[test]
    fn wrong_x_length_rejected() {
        let (c, paths, dec) = figure1_model();
        let dm = DelayModel::build(&c, &paths, &dec, &VariationModel::three_level()).unwrap();
        assert!(dm.path_delays(&[0.0; 3]).is_err());
    }
}
