//! Property-based tests for the variation substrate.

use pathrep_circuit::generator::{CircuitGenerator, GeneratorConfig};
use pathrep_circuit::paths::{decompose_into_segments, Path};
use pathrep_variation::catalog::VariableSpace;
use pathrep_variation::model::VariationModel;
use pathrep_variation::regions::RegionHierarchy;
use pathrep_variation::sensitivity::{gate_contribution_terms, gate_delay_sigma, DelayModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn regions_nest_properly(x in 0.0..1.0f64, y in 0.0..1.0f64, levels in 2usize..6) {
        // A gate's region at level l+1 must lie inside its level-l region:
        // the cell index halves consistently.
        let h = RegionHierarchy::new(levels);
        let regions = h.regions_containing(x, y);
        prop_assert_eq!(regions.len(), levels);
        for w in regions.windows(2) {
            let side = 1usize << w[1].level;
            let (cx, cy) = (w[1].cell % side, w[1].cell / side);
            let parent_side = 1usize << w[0].level;
            let (px, py) = (w[0].cell % parent_side, w[0].cell / parent_side);
            prop_assert_eq!(cx / 2, px);
            prop_assert_eq!(cy / 2, py);
        }
    }

    #[test]
    fn variable_space_round_trips(levels in 1usize..6, gates in 1usize..50) {
        let model = VariationModel::new(levels, 0.06);
        let vs = VariableSpace::new(&model, gates);
        for idx in 0..vs.len() {
            prop_assert_eq!(vs.index_of(vs.variable_at(idx)), idx);
        }
    }

    #[test]
    fn gate_variance_matches_contribution_terms(seed in 0u64..200, scale in 0.5..4.0f64) {
        // The sum of squared contribution coefficients must equal the
        // gate's σ² as reported by gate_delay_sigma, for any random scale.
        let c = CircuitGenerator::new(GeneratorConfig::new(80, 8, 6).with_seed(seed))
            .generate()
            .expect("generate");
        let model = VariationModel::three_level().with_random_scale(scale);
        for g in c.netlist().gate_ids().take(10) {
            let terms = gate_contribution_terms(&c, &model, g);
            let var: f64 = terms.iter().map(|&(_, v)| v * v).sum();
            let sigma = gate_delay_sigma(&c, &model, g);
            prop_assert!(
                (var.sqrt() - sigma).abs() < 1e-9 * sigma.max(1e-9),
                "terms give {} vs sigma {}",
                var.sqrt(),
                sigma
            );
        }
    }

    #[test]
    fn delay_model_is_consistent(seed in 0u64..100) {
        let c = CircuitGenerator::new(GeneratorConfig::new(100, 10, 8).with_seed(seed))
            .generate()
            .expect("generate");
        // A couple of first-fanout walks as target paths.
        let graph = c.graph();
        let mut paths = Vec::new();
        for (k, &s) in graph.sources().iter().take(3).enumerate() {
            let mut gate = s;
            let mut gates = vec![gate];
            loop {
                let fo = graph.fanouts(gate);
                if fo.is_empty() {
                    break;
                }
                gate = fo[k % fo.len()];
                gates.push(gate);
            }
            paths.push(Path::new(gates).expect("non-empty"));
        }
        paths.dedup();
        let dec = decompose_into_segments(&paths).expect("decompose");
        let model = VariationModel::three_level();
        let dm = DelayModel::build(&c, &paths, &dec, &model).expect("model");
        // A = G·Σ exactly.
        let gs = dm.g().matmul(dm.sigma()).expect("matmul");
        prop_assert!(gs.approx_eq(dm.a(), 1e-9));
        // µ_P = G·µ_S exactly.
        let mu = dm.g().matvec(dm.mu_segments()).expect("matvec");
        for (a, b) in mu.iter().zip(dm.mu_paths().iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // Variable count bookkeeping: 2·covered regions + covered gates.
        prop_assert_eq!(
            dm.variable_count(),
            2 * dm.covered_region_count() + dec.covered_gates().len()
        );
    }
}
