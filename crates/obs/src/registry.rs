//! The global metric store.

use crate::hdr::HdrHistogram;
use crate::snapshot::{
    CounterSnapshot, EventSnapshot, ExemplarSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot,
};
use crate::trace::TraceContext;
use crate::work::WorkTally;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Trace exemplars retained per HDR histogram: the K slowest recordings
/// that carried a trace context keep their `trace_id`, so a tail-latency
/// outlier in a bucket is one `stitch-trace` away from its timeline.
pub const EXEMPLAR_K: usize = 4;

/// Cap on stored events so a pathological loop cannot grow memory
/// unboundedly; later events only bump the drop counter.
pub const MAX_EVENTS: usize = 256;

/// Default histogram bucket edges: decades from `1e-12` to `1e3`,
/// matching the dynamic range of solver residuals and relative errors.
pub fn default_edges() -> Vec<f64> {
    (-12..=3).map(|e| 10.0_f64.powi(e)).collect()
}

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Informational.
    Info,
    /// Something needing attention (e.g. an unconverged solver).
    Warn,
}

impl Level {
    /// Stable string form used in snapshots and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// A recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Stable event name (e.g. `"convopt.admm.unconverged"`).
    pub name: &'static str,
    /// Human-readable details.
    pub message: String,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct SpanStats {
    pub count: u64,
    pub total_ns: u128,
    pub min_ns: u64,
    pub max_ns: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct HistogramData {
    pub edges: Vec<f64>,
    /// `edges.len() + 1` buckets: `(-inf, e0], (e0, e1], …, (e_last, inf)`.
    pub counts: Vec<u64>,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramData {
    fn new(edges: Vec<f64>) -> Self {
        let n = edges.len() + 1;
        HistogramData {
            edges,
            counts: vec![0; n],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, value: f64) {
        let idx = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, HistogramData>,
    /// Log-bucketed HDR histograms (see [`crate::hdr`]); a name lives in
    /// either this map or `histograms`, decided by the first recording
    /// call, exactly like first-touch bucket edges.
    hdr_histograms: BTreeMap<&'static str, HdrHistogram>,
    /// Aggregated span statistics keyed by full slash path.
    spans: BTreeMap<String, SpanStats>,
    events: Vec<Event>,
    events_dropped: u64,
    /// Per-HDR-histogram top-[`EXEMPLAR_K`] slowest observations that
    /// carried a trace context, sorted descending by value. Drained by
    /// the window sampler each epoch (the window ring then owns them).
    exemplars: BTreeMap<&'static str, Vec<(f64, TraceContext)>>,
    /// Deterministic kernel work tallies (see [`crate::work`]), keyed by
    /// kernel name; materialized as `work.<kernel>.*` counters in
    /// snapshots.
    work: BTreeMap<&'static str, WorkTally>,
}

fn insert_exemplar(
    list: &mut Vec<(f64, TraceContext)>,
    value: f64,
    ctx: TraceContext,
) {
    let pos = list.partition_point(|&(v, _)| v > value);
    if pos < EXEMPLAR_K {
        list.insert(pos, (value, ctx));
        list.truncate(EXEMPLAR_K);
    }
}

/// Global, thread-safe store of every recorded metric.
///
/// All mutation goes through the free functions in the crate root
/// ([`crate::counter_add`], [`crate::span!`], …), which bail out in one
/// atomic load when collection is disabled; the registry itself is the
/// slow path behind that check.
pub struct Registry {
    inner: Mutex<Inner>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(Inner::default()),
    })
}

impl Registry {
    pub(crate) fn counter_add_slow(&self, name: &'static str, delta: u64) {
        let mut g = self.inner.lock();
        *g.counters.entry(name).or_insert(0) += delta;
    }

    /// Merges a thread's drained work tallies under one lock acquisition
    /// (the flush half of the [`crate::work`] accumulator).
    pub(crate) fn work_merge_slow(&self, drained: &[(&'static str, WorkTally)]) {
        let mut g = self.inner.lock();
        for &(kernel, tally) in drained {
            g.work.entry(kernel).or_default().add(tally);
        }
    }

    pub(crate) fn gauge_set_slow(&self, name: &'static str, value: f64) {
        self.inner.lock().gauges.insert(name, value);
    }

    pub(crate) fn histogram_record_slow(
        &self,
        name: &'static str,
        edges: Option<&[f64]>,
        value: f64,
    ) {
        let mut g = self.inner.lock();
        g.histograms
            .entry(name)
            .or_insert_with(|| {
                HistogramData::new(edges.map(<[f64]>::to_vec).unwrap_or_else(default_edges))
            })
            .record(value);
    }

    pub(crate) fn histogram_record_hdr_slow(&self, name: &'static str, value: f64) {
        // Read the thread-local trace context before taking the lock.
        let ctx = crate::trace::current_context();
        let mut g = self.inner.lock();
        g.hdr_histograms
            .entry(name)
            .or_insert_with(HdrHistogram::new)
            .record(value);
        if let Some(ctx) = ctx {
            insert_exemplar(g.exemplars.entry(name).or_default(), value, ctx);
        }
    }

    pub(crate) fn span_record(&self, path: &str, duration_ns: u64) {
        let mut g = self.inner.lock();
        match g.spans.get_mut(path) {
            Some(s) => {
                s.count += 1;
                s.total_ns += duration_ns as u128;
                s.min_ns = s.min_ns.min(duration_ns);
                s.max_ns = s.max_ns.max(duration_ns);
            }
            None => {
                g.spans.insert(
                    path.to_owned(),
                    SpanStats {
                        count: 1,
                        total_ns: duration_ns as u128,
                        min_ns: duration_ns,
                        max_ns: duration_ns,
                    },
                );
            }
        }
    }

    pub(crate) fn event_slow(&self, level: Level, name: &'static str, message: String) {
        let mut g = self.inner.lock();
        if g.events.len() < MAX_EVENTS {
            g.events.push(Event {
                level,
                name,
                message,
            });
        } else {
            g.events_dropped += 1;
        }
    }

    /// Clears every stored metric.
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        *g = Inner::default();
    }

    /// Takes a cumulative sample of the windowable metrics — counter
    /// values and HDR histograms — for the sliding-window ring (see
    /// [`crate::window`]). When `drain_exemplars` is set (the 1 Hz epoch
    /// sampler), the current exemplar set moves into the sample so each
    /// ring entry owns that epoch's exemplars; read-side captures leave
    /// them in place.
    pub(crate) fn window_capture(&self, drain_exemplars: bool) -> crate::window::WindowCapture {
        let mut g = self.inner.lock();
        let exemplars = if drain_exemplars {
            std::mem::take(&mut g.exemplars)
        } else {
            g.exemplars.clone()
        };
        crate::window::WindowCapture {
            at_ns: crate::trace::now_ns(),
            counters: g
                .counters
                .iter()
                .map(|(&name, &v)| (name.to_owned(), v))
                .collect(),
            hdr: g
                .hdr_histograms
                .iter()
                .map(|(&name, h)| (name.to_owned(), h.clone()))
                .collect(),
            exemplars: exemplars
                .iter()
                .flat_map(|(&name, list)| {
                    list.iter().map(move |&(value, ctx)| ExemplarSnapshot {
                        histogram: name.to_owned(),
                        value,
                        trace_id: ctx.trace_id,
                        request_seq: ctx.request_seq,
                    })
                })
                .collect(),
        }
    }

    /// Takes a consistent point-in-time copy of every metric as plain
    /// data, with spans assembled into their hierarchy.
    pub fn snapshot(&self) -> Snapshot {
        // Flush this thread's pending work tallies first (before taking
        // the registry lock — the flush acquires it itself), so span-less
        // kernel calls on the snapshotting thread are not lost.
        crate::work::flush();
        let g = self.inner.lock();
        let mut counters: Vec<CounterSnapshot> = g
            .counters
            .iter()
            .map(|(&name, &value)| CounterSnapshot {
                name: name.to_owned(),
                value,
            })
            .collect();
        // Work tallies materialize as three counters per kernel, merged
        // into the sorted counter list so Prometheus export and the bench
        // counter cross-checks pick them up with no special casing.
        for (&kernel, tally) in &g.work {
            counters.push(CounterSnapshot {
                name: format!("work.{kernel}.flops"),
                value: tally.flops,
            });
            counters.push(CounterSnapshot {
                name: format!("work.{kernel}.bytes"),
                value: tally.bytes,
            });
            counters.push(CounterSnapshot {
                name: format!("work.{kernel}.elements"),
                value: tally.elements,
            });
        }
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let gauges = g
            .gauges
            .iter()
            .map(|(&name, &value)| GaugeSnapshot {
                name: name.to_owned(),
                value,
            })
            .collect();
        let mut histograms: Vec<HistogramSnapshot> = g
            .histograms
            .iter()
            .map(|(&name, h)| {
                let count: u64 = h.counts.iter().sum();
                HistogramSnapshot {
                    name: name.to_owned(),
                    edges: h.edges.clone(),
                    counts: h.counts.clone(),
                    count,
                    sum: h.sum,
                    min: if count > 0 { h.min } else { 0.0 },
                    max: if count > 0 { h.max } else { 0.0 },
                }
            })
            .collect();
        // HDR histograms materialize to the same snapshot shape; merge
        // and re-sort so the combined list stays ordered by name.
        histograms.extend(g.hdr_histograms.iter().map(|(&name, h)| h.snapshot(name)));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let events = g
            .events
            .iter()
            .map(|e| EventSnapshot {
                level: e.level.as_str().to_owned(),
                name: e.name.to_owned(),
                message: e.message.clone(),
            })
            .collect();
        let spans = crate::snapshot::build_span_tree(&g.spans);
        let current: Vec<ExemplarSnapshot> = g
            .exemplars
            .iter()
            .flat_map(|(&name, list)| {
                list.iter().map(move |&(value, ctx)| ExemplarSnapshot {
                    histogram: name.to_owned(),
                    value,
                    trace_id: ctx.trace_id,
                    request_seq: ctx.request_seq,
                })
            })
            .collect();
        let events_dropped = g.events_dropped;
        drop(g);
        // Merge in the exemplars drained into the window ring (taken
        // outside the registry lock — the window has its own).
        let exemplars = crate::window::merged_exemplars(current);
        Snapshot {
            spans,
            counters,
            gauges,
            histograms,
            events,
            events_dropped,
            exemplars,
        }
    }
}
