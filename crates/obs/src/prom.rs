//! Prometheus text exposition rendering of a [`Snapshot`].
//!
//! [`render_prometheus`] turns every section of a snapshot into the
//! Prometheus text exposition format (version 0.0.4): counters become
//! `counter` families, gauges `gauge`, histograms `histogram` with
//! cumulative `_bucket` series (`le` labels from the fixed bucket edges)
//! plus `_sum`/`_count`, and span aggregates become two labelled counter
//! families. Metric names are sanitized to `[a-zA-Z_][a-zA-Z0-9_]*` and
//! prefixed `pathrep_` so they scrape cleanly next to other exporters.

use crate::snapshot::{HistogramSnapshot, Snapshot, SpanNode};
use std::fmt::Write as _;

/// Maps a dotted metric name (`"linalg.svd.qr_sweeps"`) onto a valid
/// Prometheus metric name (`"pathrep_linalg_svd_qr_sweeps"`): every
/// character outside `[a-zA-Z0-9_]` becomes `_`, and the `pathrep_` prefix
/// guarantees a legal leading character.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("pathrep_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format (`\\`, `\"`, `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value: integers render without a fraction, everything
/// else with enough digits to round-trip.
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        // The exposition format does allow +Inf/-Inf/NaN.
        if v.is_nan() {
            "NaN".to_owned()
        } else if v > 0.0 {
            "+Inf".to_owned()
        } else {
            "-Inf".to_owned()
        }
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.17e}")
    }
}

fn render_histogram(out: &mut String, h: &HistogramSnapshot) {
    let name = sanitize_name(&h.name);
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        cumulative += c;
        if i < h.edges.len() {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                fmt_value(h.edges[i])
            );
        } else {
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        }
    }
    let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum));
    let _ = writeln!(out, "{name}_count {}", h.count);
    // Observed extremes as companion gauges: the cumulative buckets bound
    // quantiles but cannot recover the exact min/max a scrape-side alert
    // on "worst request so far" needs.
    let _ = writeln!(out, "# TYPE {name}_min gauge");
    let _ = writeln!(out, "{name}_min {}", fmt_value(h.min));
    let _ = writeln!(out, "# TYPE {name}_max gauge");
    let _ = writeln!(out, "{name}_max {}", fmt_value(h.max));
}

fn collect_spans<'a>(nodes: &'a [SpanNode], into: &mut Vec<&'a SpanNode>) {
    for n in nodes {
        if n.count > 0 {
            into.push(n);
        }
        collect_spans(&n.children, into);
    }
}

/// Renders `snap` in the Prometheus text exposition format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize_name(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snap.gauges {
        let name = sanitize_name(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(g.value));
    }
    for h in &snap.histograms {
        render_histogram(&mut out, h);
    }
    let mut spans = Vec::new();
    collect_spans(&snap.spans, &mut spans);
    if !spans.is_empty() {
        let _ = writeln!(out, "# TYPE pathrep_span_calls_total counter");
        for s in &spans {
            let _ = writeln!(
                out,
                "pathrep_span_calls_total{{path=\"{}\"}} {}",
                escape_label(&s.path),
                s.count
            );
        }
        let _ = writeln!(out, "# TYPE pathrep_span_duration_ns_total counter");
        for s in &spans {
            let _ = writeln!(
                out,
                "pathrep_span_duration_ns_total{{path=\"{}\"}} {}",
                escape_label(&s.path),
                s.total_ns
            );
        }
    }
    let _ = writeln!(out, "# TYPE pathrep_events_dropped_total counter");
    let _ = writeln!(out, "pathrep_events_dropped_total {}", snap.events_dropped);
    out
}

/// Writes [`render_prometheus`] output for `snap` to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_prometheus(path: &str, snap: &Snapshot) -> std::io::Result<()> {
    std::fs::write(path, render_prometheus(snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(
            sanitize_name("linalg.svd.qr-sweeps"),
            "pathrep_linalg_svd_qr_sweeps"
        );
        assert_eq!(sanitize_name("0weird"), "pathrep_0weird");
    }

    #[test]
    fn values_render_plainly() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert!(fmt_value(0.1).starts_with("1.0000000000000000"));
    }
}
