//! Prometheus text exposition rendering of a [`Snapshot`].
//!
//! [`render_prometheus`] turns every section of a snapshot into the
//! Prometheus text exposition format (version 0.0.4): counters become
//! `counter` families, gauges `gauge`, histograms `histogram` with
//! cumulative `_bucket` series (`le` labels from the fixed bucket edges)
//! plus `_sum`/`_count`, and span aggregates become two labelled counter
//! families. Metric names are sanitized to `[a-zA-Z_][a-zA-Z0-9_]*` and
//! prefixed `pathrep_` so they scrape cleanly next to other exporters.

use crate::snapshot::{ExemplarSnapshot, HistogramSnapshot, Snapshot, SpanNode};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps a dotted metric name (`"linalg.svd.qr_sweeps"`) onto a valid
/// Prometheus metric name (`"pathrep_linalg_svd_qr_sweeps"`): every
/// character outside `[a-zA-Z0-9_]` becomes `_`, and the `pathrep_` prefix
/// guarantees a legal leading character.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("pathrep_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format (`\\`, `\"`, `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value: integers render without a fraction, everything
/// else with enough digits to round-trip.
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        // The exposition format does allow +Inf/-Inf/NaN.
        if v.is_nan() {
            "NaN".to_owned()
        } else if v > 0.0 {
            "+Inf".to_owned()
        } else {
            "-Inf".to_owned()
        }
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.17e}")
    }
}

fn render_histogram(out: &mut String, h: &HistogramSnapshot, exemplars: &[&ExemplarSnapshot]) {
    let name = sanitize_name(&h.name);
    // Attach each exemplar to the first bucket that contains its value
    // (OpenMetrics `# {labels} value` suffix syntax); one per bucket,
    // slowest first since `exemplars` arrives sorted descending.
    let mut by_bucket: BTreeMap<usize, &ExemplarSnapshot> = BTreeMap::new();
    for x in exemplars {
        let idx = h
            .edges
            .iter()
            .position(|&e| x.value <= e)
            .unwrap_or(h.edges.len());
        by_bucket.entry(idx).or_insert(x);
    }
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        cumulative += c;
        let exemplar = match by_bucket.get(&i) {
            Some(x) => format!(
                " # {{trace_id=\"{}\",request_seq=\"{}\"}} {}",
                x.trace_id,
                x.request_seq,
                fmt_value(x.value)
            ),
            None => String::new(),
        };
        if i < h.edges.len() {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}{exemplar}",
                fmt_value(h.edges[i])
            );
        } else {
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}{exemplar}");
        }
    }
    let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum));
    let _ = writeln!(out, "{name}_count {}", h.count);
    // Observed extremes as companion gauges: the cumulative buckets bound
    // quantiles but cannot recover the exact min/max a scrape-side alert
    // on "worst request so far" needs.
    let _ = writeln!(out, "# TYPE {name}_min gauge");
    let _ = writeln!(out, "{name}_min {}", fmt_value(h.min));
    let _ = writeln!(out, "# TYPE {name}_max gauge");
    let _ = writeln!(out, "{name}_max {}", fmt_value(h.max));
}

fn collect_spans<'a>(nodes: &'a [SpanNode], into: &mut Vec<&'a SpanNode>) {
    for n in nodes {
        if n.count > 0 {
            into.push(n);
        }
        collect_spans(&n.children, into);
    }
}

/// Renders `snap` in the Prometheus text exposition format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize_name(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snap.gauges {
        let name = sanitize_name(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(g.value));
    }
    for h in &snap.histograms {
        let exemplars: Vec<&ExemplarSnapshot> = snap
            .exemplars
            .iter()
            .filter(|x| x.histogram == h.name)
            .collect();
        render_histogram(&mut out, h, &exemplars);
    }
    let mut spans = Vec::new();
    collect_spans(&snap.spans, &mut spans);
    if !spans.is_empty() {
        let _ = writeln!(out, "# TYPE pathrep_span_calls_total counter");
        for s in &spans {
            let _ = writeln!(
                out,
                "pathrep_span_calls_total{{path=\"{}\"}} {}",
                escape_label(&s.path),
                s.count
            );
        }
        let _ = writeln!(out, "# TYPE pathrep_span_duration_ns_total counter");
        for s in &spans {
            let _ = writeln!(
                out,
                "pathrep_span_duration_ns_total{{path=\"{}\"}} {}",
                escape_label(&s.path),
                s.total_ns
            );
        }
    }
    let _ = writeln!(out, "# TYPE pathrep_events_dropped_total counter");
    let _ = writeln!(out, "pathrep_events_dropped_total {}", snap.events_dropped);
    out
}

/// Renders the sliding-window deltas (see [`crate::window`]) as
/// `window`-labelled gauge families: `pathrep_<name>_rate` per-second
/// rates for counters and HDR histograms, plus windowed
/// `pathrep_<name>_p50/p99/p999` quantile gauges for the histograms.
/// Appended to `/metrics` after the cumulative families.
pub fn render_windowed(windows: &[crate::window::WindowRates]) -> String {
    // family name -> (window label, value); grouping by family keeps one
    // `# TYPE` line per family across the three windows.
    let mut families: BTreeMap<String, Vec<(&str, f64)>> = BTreeMap::new();
    for w in windows {
        for (name, _delta, rate) in &w.counters {
            families
                .entry(format!("{}_rate", sanitize_name(name)))
                .or_default()
                .push((w.label, *rate));
        }
        for h in &w.histograms {
            let base = sanitize_name(&h.name);
            families
                .entry(format!("{base}_rate"))
                .or_default()
                .push((w.label, h.rate));
            for (q, suffix) in [(0.50, "p50"), (0.99, "p99"), (0.999, "p999")] {
                families
                    .entry(format!("{base}_{suffix}"))
                    .or_default()
                    .push((w.label, h.delta.quantile(q)));
            }
        }
    }
    let mut out = String::new();
    for (family, rows) in families {
        let _ = writeln!(out, "# TYPE {family} gauge");
        for (label, value) in rows {
            let _ = writeln!(out, "{family}{{window=\"{label}\"}} {}", fmt_value(value));
        }
    }
    out
}

/// Writes [`render_prometheus`] output for `snap` to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_prometheus(path: &str, snap: &Snapshot) -> std::io::Result<()> {
    std::fs::write(path, render_prometheus(snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(
            sanitize_name("linalg.svd.qr-sweeps"),
            "pathrep_linalg_svd_qr_sweeps"
        );
        assert_eq!(sanitize_name("0weird"), "pathrep_0weird");
    }

    #[test]
    fn values_render_plainly() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert!(fmt_value(0.1).starts_with("1.0000000000000000"));
    }

    #[test]
    fn exemplars_attach_to_their_bucket_in_openmetrics_syntax() {
        use crate::snapshot::{ExemplarSnapshot, HistogramSnapshot};
        let h = HistogramSnapshot {
            name: "serve.request_ns".into(),
            edges: vec![1.0e6, 1.0e7],
            counts: vec![5, 2, 1],
            count: 8,
            sum: 2.0e7,
            min: 1.0e5,
            max: 2.0e7,
        };
        let x = ExemplarSnapshot {
            histogram: "serve.request_ns".into(),
            value: 5.0e6,
            trace_id: 9000,
            request_seq: 3,
        };
        let mut out = String::new();
        render_histogram(&mut out, &h, &[&x]);
        let line = out
            .lines()
            .find(|l| l.contains("trace_id=\"9000\""))
            .expect("exemplar rendered");
        // The 5e6 exemplar belongs to the (1e6, 1e7] bucket.
        assert!(line.starts_with("pathrep_serve_request_ns_bucket{le=\"10000000\"}"), "{line}");
        assert!(line.contains("# {trace_id=\"9000\",request_seq=\"3\"} 5000000"), "{line}");
        // Without exemplars the output is byte-identical to the classic form.
        let mut plain = String::new();
        render_histogram(&mut plain, &h, &[]);
        assert!(!plain.contains('#') || plain.contains("# TYPE"), "{plain}");
    }

    #[test]
    fn windowed_families_render_one_type_line_per_family() {
        use crate::hdr::HdrHistogram;
        use crate::window::{WindowHistogram, WindowRates};
        let mut h = HdrHistogram::new();
        for _ in 0..10 {
            h.record(2.0e6);
        }
        let mk = |label: &'static str, secs: u64| WindowRates {
            label,
            secs,
            elapsed_s: secs as f64,
            counters: vec![("serve.requests".into(), 10 * secs, 10.0)],
            histograms: vec![WindowHistogram {
                name: "serve.request_ns".into(),
                delta: h.clone(),
                rate: 10.0 / secs as f64,
            }],
            exemplars: Vec::new(),
        };
        let out = render_windowed(&[mk("1s", 1), mk("10s", 10)]);
        assert_eq!(
            out.matches("# TYPE pathrep_serve_requests_rate gauge").count(),
            1
        );
        assert!(out.contains("pathrep_serve_requests_rate{window=\"1s\"} 10"), "{out}");
        assert!(out.contains("pathrep_serve_requests_rate{window=\"10s\"} 10"), "{out}");
        assert!(out.contains("pathrep_serve_request_ns_p999{window=\"1s\"}"), "{out}");
        assert!(out.contains("pathrep_serve_request_ns_rate{window=\"10s\"} 1\n"), "{out}");
    }
}
