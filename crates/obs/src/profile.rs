//! Span-stack sampling profiler with folded-stack (flamegraph) output.
//!
//! When sampling is on (`PATHREP_OBS_PROFILE_HZ=<hz>`, or
//! [`set_collecting`] + [`sample_once`] in tests), every [`crate::span!`]
//! guard additionally pushes its leaf name onto a per-thread *shadow
//! stack* shared with a background sampler thread; pool workers adopting
//! a parent path through [`crate::adopt_span_parent`] push the adopted
//! path, so sampled worker stacks nest under the submitting caller
//! exactly like the aggregated span tree does.
//!
//! The sampler wakes `hz` times per second, snapshots every live
//! thread's shadow stack, and folds it into a `stack → sample-count`
//! map. [`crate::report`] renders the map as classic folded-stack lines
//!
//! ```text
//! serve.request;serve.batch;predict 42
//! ```
//!
//! loadable by any flamegraph tool (`flamegraph.pl`, speedscope,
//! inferno). Output goes to `PATHREP_OBS_PROFILE=<path>` or stdout.
//!
//! Sampling is wall-clock driven and therefore *not* deterministic — the
//! folded counts live outside the registry so the deterministic counter
//! contract and golden-ledger byte identity are untouched.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// One shadow-stack frame: a span leaf name, or a full adopted parent
/// path (slash-separated, split into components when folding).
#[derive(Debug, Clone)]
enum Frame {
    Name(&'static str),
    Adopted(String),
}

/// A thread's shadow span stack, shared between the owning thread (push
/// and pop on span enter and exit) and the sampler (brief lock per
/// sample).
#[derive(Default)]
struct ThreadStack {
    frames: Mutex<Vec<Frame>>,
}

/// All live thread stacks. Weak so an exited thread's stack is reclaimed;
/// the sampler prunes dead entries as it walks the list.
fn threads() -> &'static Mutex<Vec<Weak<ThreadStack>>> {
    static THREADS: OnceLock<Mutex<Vec<Weak<ThreadStack>>>> = OnceLock::new();
    THREADS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's registered shadow stack (created on first push).
    static MY_STACK: RefCell<Option<Arc<ThreadStack>>> = const { RefCell::new(None) };
}

/// Folded `stack-key → samples` accumulator.
fn folded() -> &'static Mutex<BTreeMap<String, u64>> {
    static FOLDED: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    FOLDED.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Total stack samples folded in (threads with an empty stack are idle
/// and not counted).
static SAMPLES: AtomicU64 = AtomicU64::new(0);

/// 0 = undecided (read env on first query), 1 = off, 2 = on.
static COLLECTING: AtomicU8 = AtomicU8::new(0);

/// Whether the shadow stacks are being maintained. The first call
/// resolves `PATHREP_OBS_PROFILE_HZ` (a positive integer enables
/// sampling and spawns the sampler thread); later calls are one relaxed
/// atomic load. Spans only fire at all when [`crate::enabled`] is true.
#[inline]
pub fn collecting() -> bool {
    match COLLECTING.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_collecting(),
    }
}

#[cold]
fn init_collecting() -> bool {
    let hz = crate::config::profile_hz();
    COLLECTING.store(if hz.is_some() { 2 } else { 1 }, Ordering::Relaxed);
    if let Some(hz) = hz {
        spawn_sampler(hz);
    }
    hz.is_some()
}

/// Programmatically enables or disables shadow-stack maintenance without
/// spawning the sampler thread — tests drive sampling explicitly through
/// [`sample_once`] for determinism.
pub fn set_collecting(on: bool) {
    COLLECTING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Spawns the detached background sampler at `hz` samples per second; it
/// runs for the remaining process lifetime (sampling an idle process
/// costs one list walk per tick).
fn spawn_sampler(hz: u64) {
    let interval = std::time::Duration::from_nanos(1_000_000_000 / hz.max(1));
    std::thread::Builder::new()
        .name("pathrep-obs-profiler".into())
        .spawn(move || loop {
            std::thread::sleep(interval);
            if collecting() {
                sample_once();
            }
        })
        .map(drop)
        .unwrap_or_else(|e| {
            crate::config::warn_export("profiler", "<thread spawn>", &e);
        });
}

/// With this thread's stack registered, runs `f` on the frame vector.
fn with_my_frames(f: impl FnOnce(&mut Vec<Frame>)) {
    MY_STACK.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stack = slot.get_or_insert_with(|| {
            let stack = Arc::new(ThreadStack::default());
            threads().lock().push(Arc::downgrade(&stack));
            stack
        });
        f(&mut stack.frames.lock());
    });
}

/// Pushes a span leaf name onto this thread's shadow stack. Returns
/// whether a frame was pushed (the caller must then [`pop_frame`] on
/// span exit, even if collection toggles off in between).
pub(crate) fn push_frame(name: &'static str) -> bool {
    if !collecting() {
        return false;
    }
    with_my_frames(|frames| frames.push(Frame::Name(name)));
    true
}

/// Pushes an adopted parent path (see [`crate::adopt_span_parent`]);
/// same contract as [`push_frame`].
pub(crate) fn push_adopted(path: &str) -> bool {
    if !collecting() {
        return false;
    }
    with_my_frames(|frames| frames.push(Frame::Adopted(path.to_owned())));
    true
}

/// Pops the frame pushed by a matching [`push_frame`]/[`push_adopted`].
pub(crate) fn pop_frame() {
    with_my_frames(|frames| {
        frames.pop();
    });
}

/// Takes one sample: folds every live thread's current shadow stack into
/// the accumulator and prunes stacks of exited threads. Called by the
/// background sampler, and directly by tests.
pub fn sample_once() {
    let mut keys: Vec<String> = Vec::new();
    {
        let mut list = threads().lock();
        list.retain(|weak| {
            let Some(stack) = weak.upgrade() else {
                return false;
            };
            let frames = stack.frames.lock();
            if !frames.is_empty() {
                let mut key = String::new();
                for frame in frames.iter() {
                    let part: &str = match frame {
                        Frame::Name(n) => n,
                        Frame::Adopted(p) => p,
                    };
                    // Adopted paths are slash-separated; folded stacks
                    // use `;` between frames.
                    for comp in part.split('/') {
                        if !key.is_empty() {
                            key.push(';');
                        }
                        key.push_str(comp);
                    }
                }
                keys.push(key);
            }
            true
        });
    }
    if !keys.is_empty() {
        let mut map = folded().lock();
        for key in keys {
            *map.entry(key).or_insert(0) += 1;
        }
        SAMPLES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Total sampling passes that captured at least one non-empty stack.
pub fn samples_taken() -> u64 {
    SAMPLES.load(Ordering::Relaxed)
}

/// The folded accumulator as `stack-key → samples` pairs, sorted by key.
pub fn folded_counts() -> Vec<(String, u64)> {
    folded().lock().iter().map(|(k, &v)| (k.clone(), v)).collect()
}

/// Renders the accumulator as folded-stack lines (`a;b;c 42`), one per
/// stack, sorted by stack key — directly consumable by flamegraph tools.
pub fn render_folded() -> String {
    let mut out = String::new();
    for (key, count) in folded_counts() {
        out.push_str(&key);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// Writes [`render_folded`] output to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_folded(path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_folded())
}

/// Clears the folded accumulator and the sample counter (shadow stacks
/// themselves live with their threads and are left alone).
pub(crate) fn reset() {
    folded().lock().clear();
    SAMPLES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_nested_and_adopted_stacks() {
        // Serialize against any other test toggling the global flags.
        set_collecting(true);
        reset();
        assert!(push_frame("outer"));
        assert!(push_frame("inner"));
        sample_once();
        sample_once();
        pop_frame();
        // Adopted paths expand into their components.
        assert!(push_adopted("outer/pool"));
        assert!(push_frame("task"));
        sample_once();
        pop_frame();
        pop_frame();
        pop_frame();
        sample_once(); // empty stack: not counted
        set_collecting(false);

        let text = render_folded();
        assert!(text.contains("outer;inner 2\n"), "got:\n{text}");
        assert!(text.contains("outer;pool;task 1\n"), "got:\n{text}");
        assert_eq!(samples_taken(), 3);
        reset();
        assert_eq!(render_folded(), "");
    }
}
