//! Deterministic kernel work accounting: flops, bytes moved and elements
//! touched, recorded by the numeric kernels (matmul/matvec, pivoted QR,
//! SVD, Cholesky, Monte-Carlo evaluation) and materialized as
//! `work.<kernel>.{flops,bytes,elements}` counters in every
//! [`crate::Snapshot`] — and therefore as `pathrep_work_*` Prometheus
//! families and `BENCH_*.json` counter columns.
//!
//! ## Determinism contract
//!
//! Work is *model-based*: each kernel records the closed-form operation
//! count of the mathematical operation it performs (e.g. `2·m·n·k` flops
//! for an `m×k · k×n` matmul), not a hardware event count. A kernel that
//! skips structural zeros still records the full model count. Because the
//! counts are pure functions of the operand shapes (and, for iterative
//! kernels, of the bit-deterministic iteration counts), the totals are
//! **bit-identical at any `PATHREP_THREADS` setting** — `u64` addition is
//! commutative and associative, so it does not matter which worker thread
//! recorded which share.
//!
//! ## Mechanics
//!
//! [`record`] appends into a thread-local accumulator (one relaxed atomic
//! load when telemetry is off — the disabled-means-free rule) that is
//! flushed into the global registry under a single lock acquisition:
//!
//! * when a [`crate::SpanGuard`] closes on the recording thread,
//! * when a pool worker drops its [`crate::ParentSpanGuard`] (before the
//!   `pathrep-par` scope joins, so no tally can outlive its thread), and
//! * at the start of [`crate::Registry::snapshot`] (covering span-less
//!   call paths on the snapshotting thread).
//!
//! Nested kernels overlap — an SVD records its own work *and* drives the
//! matmul model through any products it performs — so per-kernel totals
//! attribute work to the kernel that did it and are **not additive**
//! across kernels.

use std::cell::RefCell;

/// Accumulated work of one kernel: model-based flop count, bytes moved
/// (8 bytes per `f64` element the kernel logically reads or writes) and
/// elements touched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkTally {
    /// Floating-point operations (closed-form model count).
    pub flops: u64,
    /// Bytes logically moved (`8 ×` the touched `f64` elements, counting
    /// a read-modify-write once per pass).
    pub bytes: u64,
    /// Matrix/vector elements the kernel logically touched.
    pub elements: u64,
}

impl WorkTally {
    /// Element-wise sum.
    pub fn add(&mut self, other: WorkTally) {
        self.flops += other.flops;
        self.bytes += other.bytes;
        self.elements += other.elements;
    }

    /// Arithmetic intensity `flops / bytes` (0 when no bytes moved).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

thread_local! {
    /// Per-thread pending tallies, merged by kernel name. The kernel set
    /// is tiny (≈8 names), so a linear scan beats a map.
    static PENDING: RefCell<Vec<(&'static str, WorkTally)>> =
        const { RefCell::new(Vec::new()) };
}

/// Records `flops`/`bytes`/`elements` of work done by `kernel` into this
/// thread's pending accumulator. The tally reaches the registry at the
/// next flush point (span end on this thread, pool-worker guard drop, or
/// snapshot). Active when telemetry **or** the ledger is collecting —
/// ledger-only runs (`PATHREP_OBS_LEDGER` without `PATHREP_OBS`) still
/// stamp work facts on their records; fully disabled runs pay one or two
/// relaxed atomic loads.
#[inline]
pub fn record(kernel: &'static str, flops: u64, bytes: u64, elements: u64) {
    if !crate::enabled() && !crate::ledger::collecting() {
        return;
    }
    record_slow(
        kernel,
        WorkTally {
            flops,
            bytes,
            elements,
        },
    );
}

#[cold]
fn record_slow(kernel: &'static str, tally: WorkTally) {
    PENDING.with(|p| {
        let mut p = p.borrow_mut();
        match p.iter_mut().find(|(k, _)| *k == kernel) {
            Some((_, t)) => t.add(tally),
            None => p.push((kernel, tally)),
        }
    });
}

/// Flushes this thread's pending tallies into the global registry; a
/// no-op costing one thread-local read when nothing is pending (the
/// common case on every disabled span drop).
#[inline]
pub fn flush() {
    PENDING.with(|p| {
        if p.borrow().is_empty() {
            return;
        }
        let drained: Vec<(&'static str, WorkTally)> = std::mem::take(&mut *p.borrow_mut());
        crate::registry().work_merge_slow(&drained);
    });
}

/// Clears this thread's pending tallies without flushing them (used by
/// [`crate::reset`] so a stale tally cannot leak into the next
/// measurement window).
pub(crate) fn reset_thread() {
    PENDING.with(|p| p.borrow_mut().clear());
}

/// This thread's *pending* (not yet flushed) tally for `kernel`.
///
/// Kernels read it before and after their inner phases and stamp the
/// difference — one invocation's work — into a ledger record. The
/// difference is only meaningful when no span closes on this thread in
/// between: a span end flushes the accumulator into the registry and
/// zeroes it. The numeric kernels satisfy this (their own span stays
/// open across the whole invocation and they open no inner spans).
pub fn thread_tally(kernel: &str) -> WorkTally {
    PENDING.with(|p| {
        p.borrow()
            .iter()
            .find(|(k, _)| *k == kernel)
            .map(|&(_, t)| t)
            .unwrap_or_default()
    })
}

impl WorkTally {
    /// Saturating element-wise difference `self − earlier` (the work done
    /// between two [`thread_tally`] reads).
    pub fn since(&self, earlier: WorkTally) -> WorkTally {
        WorkTally {
            flops: self.flops.saturating_sub(earlier.flops),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            elements: self.elements.saturating_sub(earlier.elements),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_is_flops_per_byte() {
        let t = WorkTally {
            flops: 16,
            bytes: 8,
            elements: 1,
        };
        assert_eq!(t.intensity(), 2.0);
        assert_eq!(WorkTally::default().intensity(), 0.0);
    }

    #[test]
    fn tallies_merge_by_kernel() {
        let mut a = WorkTally {
            flops: 1,
            bytes: 2,
            elements: 3,
        };
        a.add(WorkTally {
            flops: 10,
            bytes: 20,
            elements: 30,
        });
        assert_eq!(
            a,
            WorkTally {
                flops: 11,
                bytes: 22,
                elements: 33,
            }
        );
    }
}
