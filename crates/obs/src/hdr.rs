//! Log-bucketed HDR histograms: bounded relative error at any scale,
//! no preconfigured edges.
//!
//! The fixed-edge histograms in the registry are fine for quantities whose
//! dynamic range is known up front (solver residuals span `1e-12..1e3`),
//! but a latency distribution under load is exactly the case where the
//! interesting mass — p999, p9999 — lands wherever the preconfigured
//! edges are coarsest. An [`HdrHistogram`] instead buckets by the value's
//! binary exponent with [`SUB_BUCKETS`] sub-buckets per octave, giving
//! every bucket a relative width of at most `1/32 ≈ 3.1 %` (~2 %
//! quantile error) regardless of magnitude. Bucket indexing is
//! pure integer math on the `f64` bit pattern (no `log2` rounding
//! hazards), so recording is deterministic and cheap.
//!
//! Storage is a sparse `BTreeMap<u32, u64>` over occupied buckets: a
//! latency histogram spanning `1 µs..10 s` touches a few hundred buckets,
//! not the tens of thousands a dense HDR layout would allocate.
//!
//! [`HdrHistogram::snapshot`] materializes the occupied buckets (with
//! their *exact* lower and upper bounds) into a plain
//! [`HistogramSnapshot`], so quantile estimation, the text report, JSON
//! and the Prometheus exposition all reuse the existing fixed-edge
//! machinery — an HDR histogram is indistinguishable downstream except
//! for its tighter buckets.

use crate::snapshot::HistogramSnapshot;
use std::collections::BTreeMap;

/// Power-of-two count of sub-buckets per octave (linear within the
/// octave, as in classic HDR histograms). 32 bounds every bucket's
/// relative width by `1/32 ≈ 3.1 %`, i.e. ~1.6 % worst-case quantile
/// error at the bucket midpoint — the "~2 % relative error" regime.
pub const SUB_BUCKETS: u32 = 32;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// A log₂-sub-bucketed histogram with ~2 % relative-error buckets across
/// the entire positive `f64` range. Values `≤ 0` (and NaN) fall into a
/// dedicated non-positive bucket so a stray zero cannot distort the
/// positive-range quantiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HdrHistogram {
    /// Occupied bucket index → count. The index is
    /// `(biased_exponent << SUB_BITS) | top_mantissa_bits`, monotone in
    /// the recorded value.
    counts: BTreeMap<u32, u64>,
    /// Values `≤ 0`, non-finite, or subnormal-below-resolution.
    nonpositive: u64,
    sum: f64,
    min: f64,
    max: f64,
    total: u64,
}

/// Bucket index for a positive finite `v`: biased exponent concatenated
/// with the mantissa's top [`SUB_BITS`] bits. Monotone in `v` because the
/// IEEE-754 ordering of positive floats is the ordering of their bit
/// patterns.
#[inline]
fn bucket_index(v: f64) -> u32 {
    (v.to_bits() >> (52 - SUB_BITS)) as u32
}

/// Exclusive upper bound of bucket `idx` (the smallest value of the next
/// bucket); every value in the bucket is `< upper_edge` and
/// `≥ lower_edge`. Computed by reversing the index → bit-pattern map, so
/// shared edges of adjacent buckets are bit-identical.
fn upper_edge(idx: u32) -> f64 {
    f64::from_bits(((idx as u64) + 1) << (52 - SUB_BITS))
}

/// Inclusive lower bound of bucket `idx`.
fn lower_edge(idx: u32) -> f64 {
    f64::from_bits((idx as u64) << (52 - SUB_BITS))
}

impl HdrHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        HdrHistogram {
            counts: BTreeMap::new(),
            nonpositive: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            total: 0,
        }
    }

    /// Records one value. Positive finite values land in their ~2 %
    /// relative-width bucket; everything else (zero, negatives, NaN,
    /// infinities) lands in the non-positive bucket and is excluded from
    /// `sum`-based statistics only when non-finite.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        if value.is_finite() && value > 0.0 && value >= f64::MIN_POSITIVE {
            *self.counts.entry(bucket_index(value)).or_insert(0) += 1;
        } else {
            self.nonpositive += 1;
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of finite recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite recorded value (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest finite recorded value (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Folds another histogram's counts into this one (used to merge
    /// per-worker latency histograms into one report).
    pub fn merge(&mut self, other: &HdrHistogram) {
        for (&idx, &c) in &other.counts {
            *self.counts.entry(idx).or_insert(0) += c;
        }
        self.nonpositive += other.nonpositive;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.total += other.total;
    }

    /// The counts this histogram accumulated *since* `earlier` (an older
    /// snapshot of the same cumulative histogram): per-bucket saturating
    /// subtraction, used by the sliding windows in [`crate::window`] to
    /// turn cumulative per-epoch samples into per-window deltas. The
    /// delta's `min`/`max` are conservatively taken from its occupied
    /// bucket bounds (the exact extremes of just the window are not
    /// recoverable from two cumulative states).
    pub fn diff(&self, earlier: &HdrHistogram) -> HdrHistogram {
        let mut counts = BTreeMap::new();
        for (&idx, &c) in &self.counts {
            let prev = earlier.counts.get(&idx).copied().unwrap_or(0);
            if c > prev {
                counts.insert(idx, c - prev);
            }
        }
        let (min, max) = match (counts.keys().next(), counts.keys().next_back()) {
            (Some(&first), Some(&last)) => (lower_edge(first), upper_edge(last)),
            _ => (f64::INFINITY, f64::NEG_INFINITY),
        };
        HdrHistogram {
            counts,
            nonpositive: self.nonpositive.saturating_sub(earlier.nonpositive),
            sum: (self.sum - earlier.sum).max(0.0),
            min,
            max,
            total: self.total.saturating_sub(earlier.total),
        }
    }

    /// Estimated number of recorded values strictly above `threshold`:
    /// full buckets above it count whole, the straddling bucket
    /// contributes linearly. Within the ~3 % bucket width of the exact
    /// answer — good enough for error-budget burn rates.
    pub fn count_above(&self, threshold: f64) -> f64 {
        let mut above = 0.0;
        for (&idx, &c) in &self.counts {
            let lo = lower_edge(idx);
            let hi = upper_edge(idx);
            if lo >= threshold {
                above += c as f64;
            } else if hi > threshold {
                above += c as f64 * (hi - threshold) / (hi - lo);
            }
        }
        above
    }

    /// Materializes the occupied buckets as a plain [`HistogramSnapshot`]
    /// named `name`. Each occupied bucket contributes its exact bounds as
    /// edges (with zero-count gap buckets between non-adjacent occupied
    /// buckets), so [`HistogramSnapshot::quantile`] interpolates within
    /// true ~2 %-wide bounds instead of across unoccupied ranges.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut edges: Vec<f64> = Vec::with_capacity(2 * self.counts.len() + 2);
        let mut counts: Vec<u64> = Vec::with_capacity(2 * self.counts.len() + 3);
        if self.nonpositive > 0 {
            // Bucket (-inf, 0] carries the non-positive values.
            edges.push(0.0);
            counts.push(self.nonpositive);
        }
        for (&idx, &c) in &self.counts {
            let lo = lower_edge(idx);
            if edges.last().copied() != Some(lo) {
                edges.push(lo);
                // Gap bucket up to this bucket's lower bound: empty.
                counts.push(0);
            }
            edges.push(upper_edge(idx));
            counts.push(c);
        }
        // Overflow bucket above the last edge: always empty here.
        counts.push(0);
        let (min, max) = if self.total > 0 && self.min.is_finite() {
            (self.min, self.max)
        } else {
            (0.0, 0.0)
        };
        HistogramSnapshot {
            name: name.to_owned(),
            edges,
            counts,
            count: self.total,
            sum: self.sum,
            min,
            max,
        }
    }

    /// Estimates the `q`-quantile through [`HdrHistogram::snapshot`]'s
    /// bucket bounds — within ~2 % of the true order statistic for any
    /// positive-valued distribution.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot("q").quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_edges_bracket() {
        let values = [1e-9, 3.7e-4, 0.5, 1.0, 1.5, 2.0, 1234.5, 9.9e12];
        let mut prev = 0u32;
        for &v in &values {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone in the value");
            prev = idx;
            assert!(lower_edge(idx) <= v && v < upper_edge(idx), "v = {v}");
            // Sub-buckets split the octave linearly: the relative width is
            // (1/32)/(1 + s/32), worst at s = 0 where it is exactly 1/32.
            let width = upper_edge(idx) / lower_edge(idx) - 1.0;
            assert!(width <= 1.0 / SUB_BUCKETS as f64 + 1e-12);
        }
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        // A wide log-uniform-ish sweep: exact order statistics are known.
        let mut h = HdrHistogram::new();
        let mut vals: Vec<f64> = (0..10_000)
            .map(|i| 1e3 * 1.002_f64.powi(i))
            .collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_by(f64::total_cmp);
        for &q in &[0.01, 0.5, 0.9, 0.99, 0.999, 0.9999] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1];
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.025, "q={q}: est {est} vs exact {exact} ({rel:.4})");
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn outliers_do_not_skew_the_body() {
        let mut h = HdrHistogram::new();
        for _ in 0..999 {
            h.record(1.0e6);
        }
        h.record(1.0e12); // one 6-decade outlier
        let p50 = h.quantile(0.50);
        assert!((p50 - 1.0e6).abs() / 1.0e6 < 0.025, "p50 = {p50}");
        let p999 = h.quantile(0.999);
        assert!(p999 < 1.1e6, "p999 must stay in the body, got {p999}");
        assert_eq!(h.quantile(1.0), 1.0e12);
    }

    #[test]
    fn nonpositive_and_merge_are_handled() {
        let mut a = HdrHistogram::new();
        a.record(0.0);
        a.record(-3.0);
        a.record(8.0);
        let mut b = HdrHistogram::new();
        b.record(8.0);
        b.record(16.0);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        let snap = a.snapshot("m");
        assert_eq!(snap.counts.iter().sum::<u64>(), 5);
        assert_eq!(snap.count, 5);
        assert_eq!(a.max(), 16.0);
        assert_eq!(a.min(), -3.0);
        // Non-positives sit in the (-inf, 0] bucket.
        assert_eq!(snap.edges[0], 0.0);
        assert_eq!(snap.counts[0], 2);
    }

    #[test]
    fn diff_recovers_window_deltas_and_count_above_splits_buckets() {
        let mut earlier = HdrHistogram::new();
        for _ in 0..100 {
            earlier.record(1.0e6);
        }
        let mut later = earlier.clone();
        for _ in 0..50 {
            later.record(1.0e6);
        }
        for _ in 0..5 {
            later.record(9.0e6);
        }
        let delta = later.diff(&earlier);
        assert_eq!(delta.count(), 55);
        let p50 = delta.quantile(0.5);
        assert!((p50 - 1.0e6).abs() / 1.0e6 < 0.05, "p50 = {p50}");
        // All 5 slow values sit above 5e6; the 50 fast ones below.
        let above = delta.count_above(5.0e6);
        assert!((above - 5.0).abs() < 0.5, "above = {above}");
        assert_eq!(delta.count_above(1.0e12), 0.0);
        assert!(delta.count_above(0.5e6) >= 54.9);
        // Diffing a histogram against itself is empty.
        let zero = later.diff(&later);
        assert_eq!(zero.count(), 0);
        assert_eq!(zero.quantile(0.5), 0.0);
    }

    #[test]
    fn empty_histogram_snapshots_cleanly() {
        let h = HdrHistogram::new();
        let snap = h.snapshot("empty");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 0.0);
    }
}
