//! Centralized parsing of every `PATHREP_OBS*` environment variable.
//!
//! All export backends resolve their configuration through this module so
//! the variable names, the empty-value convention ("set but blank" means
//! "off") and the failure policy live in exactly one place. The failure
//! policy is: **telemetry can never abort a run** — every file-system error
//! on an export path is reported through [`warn_export`] and swallowed.

/// Enables metric collection (`1`/`true`/`on`/`yes`).
pub const ENV_OBS: &str = "PATHREP_OBS";
/// Appends one JSON snapshot line per [`crate::report`] call.
pub const ENV_JSON: &str = "PATHREP_OBS_JSON";
/// Buffers span begin/end events and writes Chrome Trace Event JSON.
pub const ENV_TRACE: &str = "PATHREP_OBS_TRACE";
/// Writes the final snapshot in Prometheus text exposition format.
pub const ENV_PROM: &str = "PATHREP_OBS_PROM";
/// Appends numerical-health records as JSONL (see [`crate::ledger`]).
pub const ENV_LEDGER: &str = "PATHREP_OBS_LEDGER";
/// Overrides the run id stamped on every ledger record.
pub const ENV_RUN_ID: &str = "PATHREP_OBS_RUN_ID";
/// Bind address of the live telemetry HTTP plane (`GET /metrics`,
/// `/healthz`, `/snapshot.json`); unset or blank disables it. `…:0`
/// binds an ephemeral port (see [`crate::http`]).
pub const ENV_HTTP: &str = "PATHREP_OBS_HTTP";
/// Output path for folded-stack flamegraph lines written at
/// [`crate::report`] when the span-stack profiler ran (see
/// [`crate::profile`]); defaults to stdout when unset.
pub const ENV_PROFILE: &str = "PATHREP_OBS_PROFILE";
/// Sampling frequency (Hz, integer) of the span-stack profiler; unset or
/// `0` disables sampling.
pub const ENV_PROFILE_HZ: &str = "PATHREP_OBS_PROFILE_HZ";
/// Worker-thread count for the parallel kernels (read by `pathrep-par`,
/// registered here so the env-drift guard covers it): unset or `0` means
/// available parallelism, `1` forces exact sequential execution. Results
/// are bit-identical at any setting; only wall time changes.
pub const ENV_THREADS: &str = "PATHREP_THREADS";

/// Listen address of the `pathrep-serve` daemon (read by `pathrep-serve`,
/// registered here so the env-drift guard covers it). Default
/// `127.0.0.1:7878`; `…:0` binds an ephemeral port.
pub const ENV_SERVE_ADDR: &str = "PATHREP_SERVE_ADDR";
/// Maximum prediction requests coalesced into one batched kernel call by
/// the `pathrep-serve` micro-batcher (default 32).
pub const ENV_SERVE_BATCH: &str = "PATHREP_SERVE_BATCH";
/// Bound on the `pathrep-serve` prediction queue; connections block
/// (backpressure) once it is full (default 256).
pub const ENV_SERVE_QUEUE: &str = "PATHREP_SERVE_QUEUE";
/// Capacity of the `pathrep-serve` LRU model-artifact cache (default 8).
pub const ENV_SERVE_CACHE: &str = "PATHREP_SERVE_CACHE";
/// Reactor shard count of the `pathrep-serve` daemon (registered here so
/// the env-drift guard covers it): `0` or unset keeps the original
/// thread-per-connection runtime; `N > 0` runs N readiness-loop shards
/// with consistent-hash model routing.
pub const ENV_SERVE_SHARDS: &str = "PATHREP_SERVE_SHARDS";
/// Default wire protocol of `pathrep-client` hot-path requests (`json` or
/// `binary`; registered here so the env-drift guard covers it). The
/// daemon auto-detects per frame, so this is purely a client-side default.
pub const ENV_SERVE_PROTO: &str = "PATHREP_SERVE_PROTO";

/// Capacity of the always-on flight recorder ring (see [`crate::flight`]):
/// unset means the default small capacity, `0` or `off` disables
/// recording, any other integer sets the ring size in records.
pub const ENV_FLIGHT: &str = "PATHREP_OBS_FLIGHT";
/// Output path for flight-recorder dumps triggered by the panic hook or
/// the serve stall watchdog; defaults to `flight_<pid>.json` in the
/// working directory.
pub const ENV_FLIGHT_DUMP: &str = "PATHREP_OBS_FLIGHT_DUMP";
/// Declared latency objectives for the `/slo.json` endpoint, e.g.
/// `serve.request_ns:p999<5ms:99.9` (comma-separated list; see
/// [`crate::slo`]).
pub const ENV_SLO: &str = "PATHREP_OBS_SLO";
/// Stall-watchdog deadline in milliseconds for the `pathrep-serve`
/// batcher heartbeat (registered here so the env-drift guard covers it):
/// unset means the 5000 ms default, `0` disables the watchdog.
pub const ENV_SERVE_WATCHDOG_MS: &str = "PATHREP_SERVE_WATCHDOG_MS";

/// Sketch width `ℓ` of the randomized range-finder used by the sparse
/// selection pipeline (read by `pathrep-core`, registered here so the
/// env-drift guard covers it): unset, blank, unparsable or `0` means the
/// built-in default. Results are deterministic at any setting — the
/// sketch is seeded — but different widths select in different subspaces.
pub const ENV_SKETCH_COLS: &str = "PATHREP_SKETCH_COLS";
/// Subspace (power) iteration count of the randomized range-finder (read
/// by `pathrep-core`): unset, blank or unparsable means the built-in
/// default; `0` is a valid setting (no power iterations).
pub const ENV_SKETCH_ITERS: &str = "PATHREP_SKETCH_ITERS";

/// Every recognized pathrep environment variable, for docs and drift
/// guards.
pub const ALL_ENV_VARS: &[&str] = &[
    ENV_OBS,
    ENV_JSON,
    ENV_TRACE,
    ENV_PROM,
    ENV_LEDGER,
    ENV_RUN_ID,
    ENV_HTTP,
    ENV_PROFILE,
    ENV_PROFILE_HZ,
    ENV_THREADS,
    ENV_SERVE_ADDR,
    ENV_SERVE_BATCH,
    ENV_SERVE_QUEUE,
    ENV_SERVE_CACHE,
    ENV_SERVE_SHARDS,
    ENV_SERVE_PROTO,
    ENV_FLIGHT,
    ENV_FLIGHT_DUMP,
    ENV_SLO,
    ENV_SERVE_WATCHDOG_MS,
    ENV_SKETCH_COLS,
    ENV_SKETCH_ITERS,
];

/// Whether `PATHREP_OBS` asks for collection (`1`/`true`/`on`/`yes`).
pub fn obs_enabled_from_env() -> bool {
    std::env::var(ENV_OBS)
        .map(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"))
        .unwrap_or(false)
}

/// The value of a path-carrying variable, or `None` when unset or blank.
pub fn path_from_env(var: &str) -> Option<String> {
    match std::env::var(var) {
        Ok(v) if !v.trim().is_empty() => Some(v),
        _ => None,
    }
}

/// The JSON-lines snapshot export path (`PATHREP_OBS_JSON`).
pub fn json_path() -> Option<String> {
    path_from_env(ENV_JSON)
}

/// The Chrome-trace export path (`PATHREP_OBS_TRACE`).
pub fn trace_path() -> Option<String> {
    path_from_env(ENV_TRACE)
}

/// The Prometheus exposition export path (`PATHREP_OBS_PROM`).
pub fn prom_path() -> Option<String> {
    path_from_env(ENV_PROM)
}

/// The numerical-health ledger path (`PATHREP_OBS_LEDGER`).
pub fn ledger_path() -> Option<String> {
    path_from_env(ENV_LEDGER)
}

/// The live-telemetry HTTP bind address (`PATHREP_OBS_HTTP`).
pub fn http_addr() -> Option<String> {
    path_from_env(ENV_HTTP)
}

/// The folded-stack profile output path (`PATHREP_OBS_PROFILE`).
pub fn profile_path() -> Option<String> {
    path_from_env(ENV_PROFILE)
}

/// The span-stack profiler sampling frequency in Hz
/// (`PATHREP_OBS_PROFILE_HZ`): `None` when unset, blank, unparsable, or
/// zero — sampling is then off.
pub fn profile_hz() -> Option<u64> {
    path_from_env(ENV_PROFILE_HZ)
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&hz| hz > 0)
}

/// Default flight-recorder ring capacity when `PATHREP_OBS_FLIGHT` is
/// unset: small enough that the always-on ring is invisible in benchmarks,
/// large enough to hold the last few hundred requests' span records.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// The flight-recorder ring capacity (`PATHREP_OBS_FLIGHT`): `None`
/// disables recording (`0` or `off`), unset/unparsable falls back to
/// [`DEFAULT_FLIGHT_CAPACITY`] — the recorder is on by default.
pub fn flight_capacity() -> Option<usize> {
    match path_from_env(ENV_FLIGHT) {
        None => Some(DEFAULT_FLIGHT_CAPACITY),
        Some(v) => match v.trim() {
            "0" | "off" | "false" | "no" => None,
            v => Some(v.parse::<usize>().unwrap_or(DEFAULT_FLIGHT_CAPACITY).max(16)),
        },
    }
}

/// The flight-dump output path (`PATHREP_OBS_FLIGHT_DUMP`), defaulting to
/// `flight_<pid>.json` in the working directory.
pub fn flight_dump_path() -> String {
    path_from_env(ENV_FLIGHT_DUMP)
        .unwrap_or_else(|| format!("flight_{}.json", std::process::id()))
}

/// The raw SLO declaration string (`PATHREP_OBS_SLO`), if any.
pub fn slo_spec() -> Option<String> {
    path_from_env(ENV_SLO)
}

/// The serve stall-watchdog deadline (`PATHREP_SERVE_WATCHDOG_MS`):
/// `None` when disabled with `0`, unset/unparsable falls back to the
/// 5000 ms default.
pub fn serve_watchdog_ms() -> Option<u64> {
    match path_from_env(ENV_SERVE_WATCHDOG_MS) {
        None => Some(5000),
        Some(v) => match v.trim().parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(ms),
            Err(_) => Some(5000),
        },
    }
}

/// The run id stamped on ledger records: `PATHREP_OBS_RUN_ID` when set,
/// otherwise `pid<process id>`.
pub fn run_id() -> String {
    path_from_env(ENV_RUN_ID).unwrap_or_else(|| format!("pid{}", std::process::id()))
}

/// Reports a failed telemetry export on stderr and returns — the run
/// continues; telemetry is advisory and must never abort real work.
pub fn warn_export(what: &str, path: &str, err: &dyn std::fmt::Display) {
    eprintln!("pathrep-obs: [warn] {what} export to {path} failed: {err} (run continues)");
}

/// Runs `write`, funnelling any error through [`warn_export`]. Every export
/// backend goes through this so no telemetry path can panic on I/O.
pub fn export_or_warn(
    what: &str,
    path: &str,
    write: impl FnOnce(&str) -> std::io::Result<()>,
) {
    if let Err(e) = write(path) {
        warn_export(what, path, &e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_paths_count_as_unset() {
        // Use a variable name no other test touches to stay race-free.
        std::env::set_var("PATHREP_CONFIG_TEST_VAR", "  ");
        assert_eq!(path_from_env("PATHREP_CONFIG_TEST_VAR"), None);
        std::env::set_var("PATHREP_CONFIG_TEST_VAR", "out.jsonl");
        assert_eq!(
            path_from_env("PATHREP_CONFIG_TEST_VAR").as_deref(),
            Some("out.jsonl")
        );
        std::env::remove_var("PATHREP_CONFIG_TEST_VAR");
    }

    #[test]
    fn export_or_warn_swallows_errors() {
        // A directory path cannot be written as a file: must not panic.
        export_or_warn("test", "/", |p| std::fs::write(p, "x"));
    }

    #[test]
    fn all_env_vars_lists_every_constant() {
        for v in [
            ENV_OBS, ENV_JSON, ENV_TRACE, ENV_PROM, ENV_LEDGER, ENV_RUN_ID, ENV_HTTP,
            ENV_PROFILE, ENV_PROFILE_HZ, ENV_THREADS, ENV_SERVE_ADDR, ENV_SERVE_BATCH,
            ENV_SERVE_QUEUE, ENV_SERVE_CACHE, ENV_SERVE_SHARDS, ENV_SERVE_PROTO,
            ENV_FLIGHT, ENV_FLIGHT_DUMP, ENV_SLO,
            ENV_SERVE_WATCHDOG_MS, ENV_SKETCH_COLS, ENV_SKETCH_ITERS,
        ] {
            assert!(ALL_ENV_VARS.contains(&v));
        }
    }

    #[test]
    fn flight_capacity_defaults_on_and_zero_disables() {
        // The default (unset) path cannot be asserted here without racing
        // other tests over the process environment; exercise the explicit
        // values through the parser used by `flight_capacity`.
        std::env::set_var(ENV_FLIGHT, "0");
        assert_eq!(flight_capacity(), None);
        std::env::set_var(ENV_FLIGHT, "off");
        assert_eq!(flight_capacity(), None);
        std::env::set_var(ENV_FLIGHT, "128");
        assert_eq!(flight_capacity(), Some(128));
        std::env::set_var(ENV_FLIGHT, "2");
        assert_eq!(flight_capacity(), Some(16), "tiny caps clamp up to 16");
        std::env::remove_var(ENV_FLIGHT);
        assert_eq!(flight_capacity(), Some(DEFAULT_FLIGHT_CAPACITY));
    }
}
