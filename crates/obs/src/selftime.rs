//! Inclusive/exclusive (self-time) span profiles.
//!
//! The span tree in a [`Snapshot`] carries *inclusive* totals: a parent's
//! `total_ns` contains every child's. Attribution needs the *exclusive*
//! view — how much time a span spent in its own code — so [`profile`]
//! flattens the tree into pre-order [`ProfileEntry`] rows where
//! `self_ns = total_ns − Σ children.total_ns` (saturating: clock jitter
//! between a parent's and its children's `Instant` reads can make the
//! children sum marginally past the parent).
//!
//! `perf_gate` serializes the profile of each workload into
//! `BENCH_<k>.json`; `perf_gate --attribute` and
//! `pathrep-doctor --perf-diff` rank spans by Δself-time between two
//! reports to say *which* kernel a wall-time regression lives in.

use crate::snapshot::{Snapshot, SpanNode};
use serde::{Deserialize, Serialize};

/// One span path's aggregated timing, in flattened (pre-order) form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Full slash-separated span path.
    pub path: String,
    /// Completed executions.
    pub count: u64,
    /// Inclusive wall-clock nanoseconds.
    pub total_ns: u64,
    /// Exclusive (self) nanoseconds: inclusive minus children.
    pub self_ns: u64,
}

impl ProfileEntry {
    /// The leaf span name (last path component).
    pub fn leaf(&self) -> &str {
        leaf_of(&self.path)
    }
}

/// The last slash-separated component of a span path.
pub fn leaf_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Flattens `snap`'s span forest into pre-order self-time rows.
pub fn profile(snap: &Snapshot) -> Vec<ProfileEntry> {
    let mut out = Vec::new();
    for root in &snap.spans {
        walk(root, &mut out);
    }
    out
}

fn walk(node: &SpanNode, out: &mut Vec<ProfileEntry>) {
    let children_ns: u128 = node.children.iter().map(|c| c.total_ns).sum();
    let total_ns = node.total_ns.min(u64::MAX as u128) as u64;
    let self_ns = node.total_ns.saturating_sub(children_ns).min(u64::MAX as u128) as u64;
    out.push(ProfileEntry {
        path: node.path.clone(),
        count: node.count,
        total_ns,
        self_ns,
    });
    for child in &node.children {
        walk(child, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(path: &str, total_ns: u128, children: Vec<SpanNode>) -> SpanNode {
        SpanNode {
            name: leaf_of(path).to_owned(),
            path: path.to_owned(),
            count: 1,
            total_ns,
            min_ns: 0,
            max_ns: 0,
            children,
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        let snap = Snapshot {
            spans: vec![node(
                "outer",
                10_000,
                vec![node("outer/a", 4_000, vec![]), node("outer/b", 1_000, vec![])],
            )],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            events: vec![],
            events_dropped: 0,
            exemplars: vec![],
        };
        let prof = profile(&snap);
        assert_eq!(prof.len(), 3);
        assert_eq!(prof[0].path, "outer");
        assert_eq!(prof[0].total_ns, 10_000);
        assert_eq!(prof[0].self_ns, 5_000);
        assert_eq!(prof[1].self_ns, 4_000, "leaves keep their full time");
        assert_eq!(prof[2].leaf(), "b");
    }

    #[test]
    fn oversubtracted_parent_saturates_to_zero() {
        // Children can sum marginally past the parent (independent clock
        // reads); self time must clamp, not wrap.
        let snap = Snapshot {
            spans: vec![node("p", 1_000, vec![node("p/c", 1_200, vec![])])],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            events: vec![],
            events_dropped: 0,
            exemplars: vec![],
        };
        assert_eq!(profile(&snap)[0].self_ns, 0);
    }
}
