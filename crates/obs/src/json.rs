//! A minimal JSON emitter/parser for the telemetry snapshot.
//!
//! Hand-rolled because the sandboxed build has no crates-io access (the
//! vendored `serde` shim is derive-only). Supports exactly the JSON subset
//! the snapshot emits: objects, arrays, strings with escapes, and finite
//! numbers.

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (integers round-trip exactly up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => render_number(*n, out),
            JsonValue::String(s) => out.push_str(&escape_string(s)),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape_string(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up `name` in an object.
    ///
    /// # Errors
    ///
    /// When `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&JsonValue, String> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{name}`")),
            _ => Err(format!("expected object while reading `{name}`")),
        }
    }

    /// The array items.
    ///
    /// # Errors
    ///
    /// When `self` is not an array.
    pub fn array(&self) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            _ => Err("expected array".into()),
        }
    }

    /// The string payload (cloned).
    ///
    /// # Errors
    ///
    /// When `self` is not a string.
    pub fn string(&self) -> Result<String, String> {
        match self {
            JsonValue::String(s) => Ok(s.clone()),
            _ => Err("expected string".into()),
        }
    }

    /// The numeric payload.
    ///
    /// # Errors
    ///
    /// When `self` is not a number.
    pub fn number(&self) -> Result<f64, String> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            _ => Err("expected number".into()),
        }
    }

    /// An array of numbers.
    ///
    /// # Errors
    ///
    /// When `self` is not an array of numbers.
    pub fn number_array(&self) -> Result<Vec<f64>, String> {
        self.array()?.iter().map(JsonValue::number).collect()
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; snapshots never produce them, but never
        // emit invalid JSON either.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        // 17 significant digits: exact f64 round-trip.
        let _ = std::fmt::Write::write_fmt(out, format_args!("{n:.17e}"));
    }
}

/// Escapes a string into a quoted JSON literal.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.arr(),
            Some(b'"') => Ok(JsonValue::String(self.string_literal()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(_) => self.number_literal(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string_literal()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn arr(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string_literal(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| "invalid \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_owned())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u code point".to_owned())?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape `\\{}`", other as char))
                        }
                    }
                }
                _ => {
                    // Re-decode the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number_literal(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| {
            matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_owned())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-12", "3", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[0.1, -2.5e-7, 1.0 / 3.0, 9.007199254740993e15] {
            let v = JsonValue::Number(x);
            let back = parse(&v.render()).unwrap().number().unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":"x\ny","c":[]}],"d":{},"e":-1.5e-3}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_and_unicode() {
        let s = "quote\" slash\\ tab\t newline\n π∑";
        let v = JsonValue::String(s.into());
        assert_eq!(parse(&v.render()).unwrap().string().unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("12 34").is_err());
    }
}
