//! Numerical-health run ledger: schema-versioned JSONL records of the
//! quantities that decide whether a pathrep run is *correct*.
//!
//! Timing telemetry (spans/counters) says how long a run took; the ledger
//! says how trustworthy its numbers are. Each pipeline stage appends a
//! [`LedgerRecord`] carrying the run id, the workload seed and
//! stage-specific facts:
//!
//! * `linalg` — condition-number estimates, singular-value head/tail
//!   energy, QR pivot magnitudes;
//! * `convopt` — the full per-iteration ADMM primal/dual residual curves;
//! * `core` — the Algorithm-1 `r`-decrement trace with each `ε_r` and the
//!   accept/reject decision;
//! * `ssta` / `eval` — extraction coverage, Monte-Carlo error
//!   distributions and the guard-band `φ = ε_i·T_cons`.
//!
//! Collection is gated on the `PATHREP_OBS_LEDGER=<path>` environment
//! variable **independently of** `PATHREP_OBS`: accuracy diagnostics must
//! not require turning on the (stdout-noisy) metrics report. When off,
//! [`record`] costs one relaxed atomic load. The buffer is bounded
//! ([`LEDGER_CAPACITY`] records) and drained to `<path>` as JSON Lines by
//! [`crate::report`]; `pathrep-doctor` (in `crates/bench`) reads the file
//! back through [`parse_jsonl`].
//!
//! Every line carries `"schema_version"` so downstream tooling can reject
//! ledgers written by an incompatible library version instead of
//! mis-reading them.

use crate::json::{self, JsonValue};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Version stamped on every ledger line; bump on any incompatible change
/// to the record layout or to the meaning of a recorded fact.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// Cap on buffered records between drains; saturation drops new records
/// and counts them in [`dropped_records`].
pub const LEDGER_CAPACITY: usize = 1 << 14;

/// One numerical-health record emitted by a pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Per-process record sequence number (restarts at 0 on [`crate::reset`]).
    pub seq: u64,
    /// Run id: `PATHREP_OBS_RUN_ID` when set, else `pid<process id>`.
    pub run: String,
    /// Workload seed announced via [`set_run_context`], when known.
    pub seed: Option<u64>,
    /// Crate-level stage name (`linalg`, `convopt`, `core`, `ssta`, `eval`).
    pub stage: String,
    /// Event name within the stage (e.g. `svd`, `admm_linearized`).
    pub name: String,
    /// Ordered stage-specific facts.
    pub facts: Vec<(String, JsonValue)>,
}

impl LedgerRecord {
    /// Looks up a fact by key.
    pub fn fact(&self, key: &str) -> Option<&JsonValue> {
        self.facts.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A numeric fact by key, when present and a number.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.fact(key).and_then(|v| v.number().ok())
    }

    /// A numeric-array fact by key, when present and an array of numbers.
    pub fn curve(&self, key: &str) -> Option<Vec<f64>> {
        self.fact(key).and_then(|v| v.number_array().ok())
    }

    /// A string fact by key, when present and a string.
    pub fn text(&self, key: &str) -> Option<String> {
        self.fact(key).and_then(|v| v.string().ok())
    }

    /// Renders this record as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let seed = match self.seed {
            Some(s) => JsonValue::Number(s as f64),
            None => JsonValue::Null,
        };
        JsonValue::Object(vec![
            (
                "schema_version".into(),
                JsonValue::Number(LEDGER_SCHEMA_VERSION as f64),
            ),
            ("seq".into(), JsonValue::Number(self.seq as f64)),
            ("run".into(), JsonValue::String(self.run.clone())),
            ("seed".into(), seed),
            ("stage".into(), JsonValue::String(self.stage.clone())),
            ("name".into(), JsonValue::String(self.name.clone())),
            ("facts".into(), JsonValue::Object(self.facts.clone())),
        ])
        .render()
    }
}

/// Builder for the `facts` object of a record, passed to the closure given
/// to [`record`]. Methods return `&mut Self` for chaining.
#[derive(Debug, Default)]
pub struct Facts(Vec<(String, JsonValue)>);

impl Facts {
    /// Adds a floating-point fact (non-finite values serialize as `null`).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.0.push((key.into(), JsonValue::Number(value)));
        self
    }

    /// Adds an integer fact.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.0.push((key.into(), JsonValue::Number(value as f64)));
        self
    }

    /// Adds a boolean fact.
    pub fn flag(&mut self, key: &str, value: bool) -> &mut Self {
        self.0.push((key.into(), JsonValue::Bool(value)));
        self
    }

    /// Adds a string fact.
    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        self.0.push((key.into(), JsonValue::String(value.into())));
        self
    }

    /// Adds a numeric-array fact (e.g. a residual curve or spectrum).
    pub fn nums(&mut self, key: &str, values: &[f64]) -> &mut Self {
        self.0.push((
            key.into(),
            JsonValue::Array(values.iter().map(|&v| JsonValue::Number(v)).collect()),
        ));
        self
    }
}

struct LedgerState {
    records: Vec<LedgerRecord>,
    next_seq: u64,
    dropped: u64,
    run: Option<String>,
    seed: Option<u64>,
}

fn state() -> &'static Mutex<LedgerState> {
    static STATE: OnceLock<Mutex<LedgerState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(LedgerState {
            records: Vec::new(),
            next_seq: 0,
            dropped: 0,
            run: None,
            seed: None,
        })
    })
}

/// 0 = undecided (read env on first query), 1 = off, 2 = on.
static COLLECTING: AtomicU8 = AtomicU8::new(0);

/// Whether ledger records are being buffered. The first call resolves the
/// `PATHREP_OBS_LEDGER` environment variable (any non-blank value enables
/// collection); later calls are one relaxed atomic load. Unlike spans and
/// counters, the ledger does **not** require `PATHREP_OBS=1`.
#[inline]
pub fn collecting() -> bool {
    match COLLECTING.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_collecting(),
    }
}

#[cold]
fn init_collecting() -> bool {
    let on = crate::config::ledger_path().is_some();
    COLLECTING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically enables or disables ledger collection, overriding the
/// environment (used by tests and embedding applications).
pub fn set_collecting(on: bool) {
    COLLECTING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Announces the run context: a short workload `label` folded into the run
/// id and the RNG `seed` stamped on subsequent records. Also appends a
/// `meta/run_context` record so a ledger is self-describing. Call once at
/// the top of an experiment, before the pipeline stages run.
pub fn set_run_context(label: &str, seed: u64) {
    if !collecting() {
        return;
    }
    {
        let mut g = state().lock();
        g.run = Some(format!("{}-{label}", crate::config::run_id()));
        g.seed = Some(seed);
    }
    record("meta", "run_context", |f| {
        f.text("label", label).int("seed", seed);
    });
}

/// Appends one record for pipeline `stage` (e.g. `"linalg"`) and event
/// `name` (e.g. `"svd"`), with facts filled in by `fill`. A no-op costing
/// one atomic load when collection is off; `fill` only runs when on.
pub fn record(stage: &str, name: &str, fill: impl FnOnce(&mut Facts)) {
    if !collecting() {
        return;
    }
    let mut facts = Facts::default();
    fill(&mut facts);
    // A live trace context (a serve request being handled on this thread)
    // stamps its correlation ids onto the record; offline runs have no
    // context, so their golden ledgers stay byte-identical.
    if let Some(ctx) = crate::trace::current_context() {
        facts.int("trace_id", ctx.trace_id);
        facts.int("request_seq", ctx.request_seq);
    }
    let mut g = state().lock();
    if g.records.len() >= LEDGER_CAPACITY {
        g.dropped += 1;
        return;
    }
    let seq = g.next_seq;
    g.next_seq += 1;
    let run = g
        .run
        .clone()
        .unwrap_or_else(|| crate::config::run_id());
    let seed = g.seed;
    g.records.push(LedgerRecord {
        seq,
        run,
        seed,
        stage: stage.into(),
        name: name.into(),
        facts: facts.0,
    });
}

/// A copy of the buffered records, in record order.
pub fn records() -> Vec<LedgerRecord> {
    state().lock().records.clone()
}

/// Number of records dropped because the buffer was saturated.
pub fn dropped_records() -> u64 {
    state().lock().dropped
}

/// Clears the buffer, the drop counter, the sequence counter and the run
/// context.
pub(crate) fn reset() {
    let mut g = state().lock();
    g.records.clear();
    g.next_seq = 0;
    g.dropped = 0;
    g.run = None;
    g.seed = None;
}

/// Renders records as JSON Lines (one record per line, trailing newline).
pub fn render_jsonl(records: &[LedgerRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

/// Parses a JSON-Lines ledger, validating the schema version of every
/// line. Blank lines are skipped.
///
/// # Errors
///
/// On a syntax error, a missing field or a schema-version mismatch,
/// with the offending line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<LedgerRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("ledger line {}: {e}", i + 1))?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<LedgerRecord, String> {
    let v = json::parse(line)?;
    let version = v.field("schema_version")?.number()? as u64;
    if version != LEDGER_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} unsupported (this library reads {LEDGER_SCHEMA_VERSION})"
        ));
    }
    let seed = match v.field("seed")? {
        JsonValue::Null => None,
        other => Some(other.number()? as u64),
    };
    let facts = match v.field("facts")? {
        JsonValue::Object(fields) => fields.clone(),
        _ => return Err("`facts` must be an object".into()),
    };
    Ok(LedgerRecord {
        seq: v.field("seq")?.number()? as u64,
        run: v.field("run")?.string()?,
        seed,
        stage: v.field("stage")?.string()?,
        name: v.field("name")?.string()?,
        facts,
    })
}

/// Appends the buffered records to `path` as JSON Lines and drains the
/// buffer (so repeated [`crate::report`] calls never duplicate records).
/// When records were dropped, a warning is printed and the drop counter
/// cleared.
///
/// # Errors
///
/// Propagates the underlying I/O error; the buffer is still drained so a
/// broken export path cannot grow memory without bound.
pub fn append_jsonl(path: &str) -> std::io::Result<()> {
    use std::io::Write;
    let (records, dropped) = {
        let mut g = state().lock();
        let records = std::mem::take(&mut g.records);
        let dropped = std::mem::take(&mut g.dropped);
        (records, dropped)
    };
    if dropped > 0 {
        eprintln!(
            "pathrep-obs: [warn] ledger buffer saturated, {dropped} record(s) dropped \
             (capacity {LEDGER_CAPACITY})"
        );
    }
    if records.is_empty() {
        return Ok(());
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(render_jsonl(&records).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_and_parses() {
        let rec = LedgerRecord {
            seq: 3,
            run: "pid1-quickstart".into(),
            seed: Some(11),
            stage: "linalg".into(),
            name: "svd".into(),
            facts: vec![
                ("cond".into(), JsonValue::Number(123.5)),
                (
                    "spectrum".into(),
                    JsonValue::Array(vec![JsonValue::Number(2.0), JsonValue::Number(1.0)]),
                ),
                ("accepted".into(), JsonValue::Bool(true)),
            ],
        };
        let parsed = parse_jsonl(&render_jsonl(&[rec.clone()])).unwrap();
        assert_eq!(parsed, vec![rec.clone()]);
        assert_eq!(parsed[0].num("cond"), Some(123.5));
        assert_eq!(parsed[0].curve("spectrum"), Some(vec![2.0, 1.0]));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let line = "{\"schema_version\":999,\"seq\":0,\"run\":\"r\",\"seed\":null,\
                    \"stage\":\"s\",\"name\":\"n\",\"facts\":{}}";
        let err = parse_jsonl(line).unwrap_err();
        assert!(err.contains("schema_version 999"), "{err}");
    }
}
