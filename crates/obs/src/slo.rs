//! Declared latency objectives and error-budget burn rates.
//!
//! `PATHREP_OBS_SLO` declares objectives against HDR histograms in the
//! registry, e.g.
//!
//! ```text
//! PATHREP_OBS_SLO=serve.request_ns:p999<5ms:99.9
//! ```
//!
//! reads "the p999 of `serve.request_ns` must stay under 5 ms, for 99.9 %
//! of observations" — a 0.1 % error budget. Multiple objectives separate
//! with commas. Thresholds take `ns`/`us`/`ms`/`s` suffixes (bare numbers
//! are nanoseconds); quantile labels are `p50`, `p99`, `p999`, … .
//!
//! [`render_report`] evaluates each objective against the sliding
//! windows from [`crate::window`]: the **burn rate** per window is the
//! fraction of windowed observations over the threshold divided by the
//! budget fraction — burn 1.0 means the budget is being spent exactly as
//! declared, >1 means the objective is breaching *now*. The report is
//! served as `/slo.json` by the live HTTP plane and polled by
//! `pathrep-client slo`.

use crate::json::JsonValue;
use crate::window::WindowRates;

/// One parsed objective from `PATHREP_OBS_SLO`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloObjective {
    /// Registry HDR histogram name (e.g. `serve.request_ns`).
    pub metric: String,
    /// Quantile label as declared (`"p999"`).
    pub quantile_label: String,
    /// The quantile in `[0, 1]` (`0.999`).
    pub quantile: f64,
    /// Latency threshold in nanoseconds.
    pub threshold_ns: f64,
    /// Fraction of observations (percent) that must meet the threshold.
    pub target_pct: f64,
}

impl SloObjective {
    /// The error-budget fraction: `1 - target/100`.
    pub fn budget(&self) -> f64 {
        (1.0 - self.target_pct / 100.0).max(0.0)
    }
}

fn parse_threshold_ns(s: &str) -> Result<f64, String> {
    let s = s.trim();
    let (num, scale) = if let Some(v) = s.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1e9)
    } else {
        (s, 1.0)
    };
    num.trim()
        .parse::<f64>()
        .map(|v| v * scale)
        .map_err(|_| format!("bad threshold {s:?}"))
}

fn parse_quantile(label: &str) -> Result<f64, String> {
    let digits = label
        .strip_prefix('p')
        .filter(|d| !d.is_empty() && d.chars().all(|c| c.is_ascii_digit()))
        .ok_or_else(|| format!("bad quantile label {label:?} (want pNN…)"))?;
    let q = digits.parse::<f64>().map_err(|e| e.to_string())?
        / 10f64.powi(digits.len() as i32);
    if !(0.0..=1.0).contains(&q) {
        return Err(format!("quantile {label:?} out of range"));
    }
    Ok(q)
}

/// Parses a full `PATHREP_OBS_SLO` declaration:
/// `metric:pQQQ<threshold:target[,metric:…]`.
///
/// # Errors
///
/// Describes the first malformed objective.
pub fn parse_spec(spec: &str) -> Result<Vec<SloObjective>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (metric, rest) = entry
            .split_once(':')
            .ok_or_else(|| format!("objective {entry:?} lacks `metric:`"))?;
        let (qthr, target) = rest
            .rsplit_once(':')
            .ok_or_else(|| format!("objective {entry:?} lacks `:target`"))?;
        let (qlabel, thr) = qthr
            .split_once('<')
            .ok_or_else(|| format!("objective {entry:?} lacks `pNN<threshold`"))?;
        let quantile = parse_quantile(qlabel.trim())?;
        let threshold_ns = parse_threshold_ns(thr)?;
        let target_pct = target
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("bad target {target:?}"))?;
        if !(0.0..=100.0).contains(&target_pct) {
            return Err(format!("target {target:?} out of [0, 100]"));
        }
        out.push(SloObjective {
            metric: metric.trim().to_owned(),
            quantile_label: qlabel.trim().to_owned(),
            quantile,
            threshold_ns,
            target_pct,
        });
    }
    Ok(out)
}

/// The objectives declared in the environment; parse errors warn on
/// stderr (telemetry never aborts a run) and yield an empty list.
pub fn objectives_from_env() -> Vec<SloObjective> {
    match crate::config::slo_spec() {
        None => Vec::new(),
        Some(spec) => match parse_spec(&spec) {
            Ok(objectives) => objectives,
            Err(e) => {
                eprintln!(
                    "pathrep-obs: [warn] {} is malformed: {e} (objectives ignored)",
                    crate::config::ENV_SLO
                );
                Vec::new()
            }
        },
    }
}

/// Evaluates `objectives` against `windows` and renders the `/slo.json`
/// body. Zero-observation windows report burn 0 (an idle service cannot
/// breach), and exemplars for the objective's metric ride along so a
/// breach points at the offending trace_ids.
pub fn render_report(objectives: &[SloObjective], windows: &[WindowRates]) -> String {
    let obj_values = objectives
        .iter()
        .map(|o| {
            let window_values = windows
                .iter()
                .map(|w| {
                    let hist = w.histograms.iter().find(|h| h.name == o.metric);
                    let (count, quantile_ns, breach) = match hist {
                        Some(h) => (
                            h.delta.count(),
                            h.delta.quantile(o.quantile),
                            h.delta.count_above(o.threshold_ns),
                        ),
                        None => (0, 0.0, 0.0),
                    };
                    let breach_fraction = if count > 0 {
                        (breach / count as f64).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let budget = o.budget();
                    let burn_rate = if breach_fraction == 0.0 {
                        0.0
                    } else if budget > 0.0 {
                        breach_fraction / budget
                    } else {
                        f64::MAX
                    };
                    JsonValue::Object(vec![
                        ("window".into(), JsonValue::String(w.label.to_owned())),
                        ("elapsed_s".into(), JsonValue::Number(w.elapsed_s)),
                        ("count".into(), JsonValue::Number(count as f64)),
                        ("quantile_ns".into(), JsonValue::Number(quantile_ns)),
                        (
                            "breach_fraction".into(),
                            JsonValue::Number(breach_fraction),
                        ),
                        ("burn_rate".into(), JsonValue::Number(burn_rate)),
                        ("ok".into(), JsonValue::Bool(burn_rate <= 1.0)),
                    ])
                })
                .collect();
            // Exemplars from the widest window, filtered to this metric.
            let exemplars = windows
                .last()
                .map(|w| {
                    w.exemplars
                        .iter()
                        .filter(|x| x.histogram == o.metric)
                        .map(|x| {
                            JsonValue::Object(vec![
                                ("value_ns".into(), JsonValue::Number(x.value)),
                                (
                                    "trace_id".into(),
                                    JsonValue::Number(x.trace_id as f64),
                                ),
                                (
                                    "request_seq".into(),
                                    JsonValue::Number(x.request_seq as f64),
                                ),
                            ])
                        })
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            JsonValue::Object(vec![
                ("metric".into(), JsonValue::String(o.metric.clone())),
                (
                    "objective".into(),
                    JsonValue::String(format!(
                        "{}<{}ns",
                        o.quantile_label, o.threshold_ns
                    )),
                ),
                ("threshold_ns".into(), JsonValue::Number(o.threshold_ns)),
                ("target_pct".into(), JsonValue::Number(o.target_pct)),
                ("windows".into(), JsonValue::Array(window_values)),
                ("exemplars".into(), JsonValue::Array(exemplars)),
            ])
        })
        .collect();
    JsonValue::Object(vec![(
        "objectives".into(),
        JsonValue::Array(obj_values),
    )])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdr::HdrHistogram;
    use crate::window::{WindowHistogram, WindowRates};

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let objs = parse_spec("serve.request_ns:p999<5ms:99.9").unwrap();
        assert_eq!(objs.len(), 1);
        let o = &objs[0];
        assert_eq!(o.metric, "serve.request_ns");
        assert_eq!(o.quantile_label, "p999");
        assert!((o.quantile - 0.999).abs() < 1e-12);
        assert_eq!(o.threshold_ns, 5.0e6);
        assert_eq!(o.target_pct, 99.9);
        assert!((o.budget() - 0.001).abs() < 1e-12);

        let multi =
            parse_spec("a.ns:p50<250us:99, b.ns:p99<1s:95.5, c.ns:p9999<800:90").unwrap();
        assert_eq!(multi.len(), 3);
        assert_eq!(multi[0].threshold_ns, 250.0e3);
        assert_eq!(multi[1].threshold_ns, 1.0e9);
        assert_eq!(multi[2].threshold_ns, 800.0, "bare numbers are ns");
        assert!((multi[2].quantile - 0.9999).abs() < 1e-12);

        assert!(parse_spec("missing_parts").is_err());
        assert!(parse_spec("m:q999<5ms:99").is_err(), "quantile needs p prefix");
        assert!(parse_spec("m:p999<abc:99").is_err());
        assert!(parse_spec("m:p999<5ms:150").is_err(), "target is a percent");
        assert!(parse_spec("").unwrap().is_empty());
    }

    fn synthetic_window(fast: u64, slow: u64) -> WindowRates {
        let mut h = HdrHistogram::new();
        for _ in 0..fast {
            h.record(1.0e6); // 1 ms
        }
        for _ in 0..slow {
            h.record(20.0e6); // 20 ms — over a 5 ms threshold
        }
        WindowRates {
            label: "10s",
            secs: 10,
            elapsed_s: 10.0,
            counters: Vec::new(),
            histograms: vec![WindowHistogram {
                name: "serve.request_ns".into(),
                rate: (fast + slow) as f64 / 10.0,
                delta: h,
            }],
            exemplars: Vec::new(),
        }
    }

    #[test]
    fn burn_rate_crosses_one_exactly_when_the_budget_is_exceeded() {
        let objs = parse_spec("serve.request_ns:p999<5ms:99").unwrap();
        // 1 % budget. 5 slow of 1000 = 0.5 % breach → burn 0.5, ok.
        let report = render_report(&objs, &[synthetic_window(995, 5)]);
        let v = crate::json::parse(&report).unwrap();
        let w = &v.field("objectives").unwrap().array().unwrap()[0]
            .field("windows")
            .unwrap()
            .array()
            .unwrap()[0];
        let burn = w.field("burn_rate").unwrap().number().unwrap();
        assert!((burn - 0.5).abs() < 0.1, "burn = {burn}");
        assert_eq!(w.field("ok").unwrap(), &JsonValue::Bool(true));

        // 50 slow of 1000 = 5 % breach → burn 5, breaching.
        let report = render_report(&objs, &[synthetic_window(950, 50)]);
        let v = crate::json::parse(&report).unwrap();
        let w = &v.field("objectives").unwrap().array().unwrap()[0]
            .field("windows")
            .unwrap()
            .array()
            .unwrap()[0];
        let burn = w.field("burn_rate").unwrap().number().unwrap();
        assert!(burn > 1.0, "burn = {burn}");
        assert_eq!(w.field("ok").unwrap(), &JsonValue::Bool(false));

        // An idle window burns nothing.
        let report = render_report(&objs, &[synthetic_window(0, 0)]);
        let v = crate::json::parse(&report).unwrap();
        let w = &v.field("objectives").unwrap().array().unwrap()[0]
            .field("windows")
            .unwrap()
            .array()
            .unwrap()[0];
        assert_eq!(w.field("burn_rate").unwrap().number().unwrap(), 0.0);
    }
}
