//! Sliding 1 s / 10 s / 60 s windows over the registry's counters and
//! HDR histograms.
//!
//! Cumulative counters answer "how many ever"; an SLO or a load-shedding
//! policy needs "how many in the last ten seconds". This module keeps a
//! ring of cumulative per-epoch samples, taken at ~1 Hz by a background
//! sampler thread ([`ensure_sampler`], started with the live HTTP plane)
//! or explicitly by tests ([`sample_now`]). A window readout subtracts
//! the sample closest to *w* seconds old from a fresh capture — counters
//! by integer subtraction, HDR histograms through
//! [`HdrHistogram::diff`] — so the merge cost is paid on read, never on
//! the recording hot path (recording stays exactly as cheap as before:
//! the sampler is just another reader).
//!
//! Each epoch sample also carries the trace exemplars drained from the
//! registry that epoch; [`merged_exemplars`] re-merges the ring so
//! `/snapshot.json` and `/slo.json` report the top-K slowest traced
//! observations over the last minute, not just since the last scrape.

use crate::hdr::HdrHistogram;
use crate::snapshot::ExemplarSnapshot;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The exported window lengths (seconds, label).
pub const WINDOWS: &[(u64, &str)] = &[(1, "1s"), (10, "10s"), (60, "60s")];

/// Ring capacity: enough 1 Hz epochs to cover the longest window with
/// slack for sampler jitter.
const RING_CAP: usize = 64;

/// One cumulative sample of the windowable registry state.
#[derive(Debug, Clone)]
pub struct WindowCapture {
    /// Monotonic nanoseconds (trace epoch) the sample was taken at.
    pub at_ns: u64,
    /// Cumulative counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Cumulative HDR histograms by name.
    pub hdr: BTreeMap<String, HdrHistogram>,
    /// Exemplars owned by this sample (drained from the registry at
    /// epoch-sample time; the registry's current set on read captures).
    pub exemplars: Vec<ExemplarSnapshot>,
}

struct State {
    samples: VecDeque<WindowCapture>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State {
            samples: VecDeque::new(),
        })
    })
}

/// Takes one epoch sample now: captures the registry (draining its
/// exemplars into the sample) and pushes it onto the ring. Called at
/// ~1 Hz by the sampler thread; tests call it directly to advance epochs
/// deterministically.
pub fn sample_now() {
    let cap = crate::registry().window_capture(true);
    let mut g = state().lock();
    while g.samples.len() >= RING_CAP {
        g.samples.pop_front();
    }
    g.samples.push_back(cap);
}

/// Clears the epoch ring (paired with [`crate::reset`]).
pub fn reset() {
    state().lock().samples.clear();
}

/// Starts the 1 Hz epoch sampler thread once per process. Idempotent and
/// detached — a telemetry sampler has no work to drain at exit. The live
/// HTTP plane calls this on start so any process with a scrape endpoint
/// gets windows; headless embedders may call it directly.
pub fn ensure_sampler() {
    static STARTED: AtomicBool = AtomicBool::new(false);
    if STARTED.swap(true, Ordering::SeqCst) {
        return;
    }
    let spawned = std::thread::Builder::new()
        .name("pathrep-obs-window".into())
        .spawn(|| {
            sample_now(); // an immediate base sample so early reads have a floor
            loop {
                std::thread::sleep(std::time::Duration::from_secs(1));
                sample_now();
            }
        });
    if spawned.is_err() {
        STARTED.store(false, Ordering::SeqCst);
    }
}

/// One histogram's delta over a window.
#[derive(Debug, Clone)]
pub struct WindowHistogram {
    /// Histogram name (dotted registry name).
    pub name: String,
    /// Counts accumulated within the window.
    pub delta: HdrHistogram,
    /// Observations per second over the window.
    pub rate: f64,
}

/// All deltas for one window length.
#[derive(Debug, Clone)]
pub struct WindowRates {
    /// Window label (`"1s"`, `"10s"`, `"60s"`).
    pub label: &'static str,
    /// Nominal window length in seconds.
    pub secs: u64,
    /// Actual elapsed seconds between the base sample and now (shorter
    /// than `secs` while the process is younger than the window).
    pub elapsed_s: f64,
    /// Per-counter `(name, delta, rate per second)` over the window.
    pub counters: Vec<(String, u64, f64)>,
    /// Per-HDR-histogram deltas over the window.
    pub histograms: Vec<WindowHistogram>,
    /// Exemplars observed within the window, descending by value.
    pub exemplars: Vec<ExemplarSnapshot>,
}

/// Merges exemplar lists keeping the top-[`crate::registry::EXEMPLAR_K`]
/// per histogram, descending by value.
fn merge_exemplar_sets(mut all: Vec<ExemplarSnapshot>) -> Vec<ExemplarSnapshot> {
    all.sort_by(|a, b| {
        a.histogram
            .cmp(&b.histogram)
            .then(b.value.total_cmp(&a.value))
            .then(a.trace_id.cmp(&b.trace_id))
    });
    // Drop duplicates (same observation captured in two samples) and
    // excess beyond K per histogram.
    let mut out: Vec<ExemplarSnapshot> = Vec::new();
    let mut kept = 0usize;
    for x in all {
        match out.last() {
            Some(prev) if prev.histogram == x.histogram => {
                if prev.trace_id == x.trace_id && prev.value == x.value {
                    continue;
                }
                if kept >= crate::registry::EXEMPLAR_K {
                    continue;
                }
            }
            _ => kept = 0,
        }
        kept += 1;
        out.push(x);
    }
    out
}

/// The top-K exemplars over the last [`WINDOWS`]-max seconds: the ring's
/// per-epoch exemplars merged with `current` (the registry's undrained
/// set). Used for `/snapshot.json`.
pub fn merged_exemplars(current: Vec<ExemplarSnapshot>) -> Vec<ExemplarSnapshot> {
    let horizon_ns = WINDOWS.iter().map(|&(s, _)| s).max().unwrap_or(60) * 1_000_000_000;
    let now_ns = crate::trace::now_ns();
    let mut all = current;
    let g = state().lock();
    for s in &g.samples {
        if now_ns.saturating_sub(s.at_ns) <= horizon_ns {
            all.extend(s.exemplars.iter().cloned());
        }
    }
    drop(g);
    merge_exemplar_sets(all)
}

/// Computes every window's deltas from the ring against a fresh
/// non-draining registry capture. Windows with no base sample at least
/// ~100 ms old are omitted (the process just started).
pub fn read() -> Vec<WindowRates> {
    let now = crate::registry().window_capture(false);
    let g = state().lock();
    let samples: Vec<&WindowCapture> = g.samples.iter().collect();
    let mut out = Vec::new();
    for &(secs, label) in WINDOWS {
        let target = now.at_ns.saturating_sub(secs * 1_000_000_000);
        // Newest sample at least `secs` old; else the oldest available.
        let base = samples
            .iter()
            .rev()
            .find(|s| s.at_ns <= target)
            .or_else(|| samples.first())
            .copied();
        let Some(base) = base else { continue };
        let elapsed_s = now.at_ns.saturating_sub(base.at_ns) as f64 / 1e9;
        if elapsed_s < 0.1 {
            continue;
        }
        let counters = now
            .counters
            .iter()
            .map(|(name, &v)| {
                let delta = v.saturating_sub(base.counters.get(name).copied().unwrap_or(0));
                (name.clone(), delta, delta as f64 / elapsed_s)
            })
            .collect();
        let histograms = now
            .hdr
            .iter()
            .map(|(name, h)| {
                let delta = match base.hdr.get(name) {
                    Some(earlier) => h.diff(earlier),
                    None => h.clone(),
                };
                let rate = delta.count() as f64 / elapsed_s;
                WindowHistogram {
                    name: name.clone(),
                    delta,
                    rate,
                }
            })
            .collect();
        let mut exemplars = now.exemplars.clone();
        for s in &samples {
            if s.at_ns >= target {
                exemplars.extend(s.exemplars.iter().cloned());
            }
        }
        out.push(WindowRates {
            label,
            secs,
            elapsed_s,
            counters,
            histograms,
            exemplars: merge_exemplar_sets(exemplars),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests sharing the process-global registry and ring.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn windows_report_deltas_not_cumulative_values() {
        let _l = guard();
        crate::set_enabled(true);
        crate::registry().reset();
        reset();
        crate::counter_add("win.test.requests", 100);
        for _ in 0..100 {
            crate::histogram_record_hdr("win.test.latency_ns", 1.0e6);
        }
        sample_now();
        std::thread::sleep(std::time::Duration::from_millis(150));
        crate::counter_add("win.test.requests", 30);
        for _ in 0..30 {
            crate::histogram_record_hdr("win.test.latency_ns", 4.0e6);
        }
        let windows = read();
        assert!(!windows.is_empty(), "a base sample exists");
        let w = &windows[0];
        let (_, delta, rate) = w
            .counters
            .iter()
            .find(|(n, _, _)| n == "win.test.requests")
            .expect("counter windowed");
        assert_eq!(*delta, 30, "window sees only the post-sample delta");
        assert!(*rate > 0.0);
        let h = w
            .histograms
            .iter()
            .find(|h| h.name == "win.test.latency_ns")
            .expect("histogram windowed");
        assert_eq!(h.delta.count(), 30);
        let p50 = h.delta.quantile(0.5);
        assert!(
            (p50 - 4.0e6).abs() / 4.0e6 < 0.05,
            "window p50 must reflect only recent values, got {p50}"
        );
        crate::registry().reset();
        reset();
    }

    #[test]
    fn exemplars_ride_epoch_samples_and_merge_on_read() {
        let _l = guard();
        crate::set_enabled(true);
        crate::registry().reset();
        reset();
        {
            let _ctx = crate::trace::set_context(crate::trace::TraceContext {
                trace_id: 1111,
                request_seq: 1,
            });
            crate::histogram_record_hdr("win.ex.latency_ns", 7.0e6);
        }
        sample_now(); // drains the first exemplar into the ring
        {
            let _ctx = crate::trace::set_context(crate::trace::TraceContext {
                trace_id: 2222,
                request_seq: 2,
            });
            crate::histogram_record_hdr("win.ex.latency_ns", 9.0e6);
        }
        // Both the drained and the still-current exemplar surface.
        let merged = merged_exemplars(
            crate::registry().window_capture(false).exemplars,
        );
        let ids: Vec<u64> = merged.iter().map(|x| x.trace_id).collect();
        assert!(ids.contains(&1111), "{ids:?}");
        assert!(ids.contains(&2222), "{ids:?}");
        // Sorted descending by value within the histogram.
        assert_eq!(merged[0].trace_id, 2222);
        // And the full snapshot carries them too.
        let snap = crate::registry().snapshot();
        assert_eq!(snap.exemplars.len(), 2);
        let round = crate::Snapshot::from_json(&snap.to_json()).expect("round-trips");
        assert_eq!(round.exemplars, snap.exemplars);
        crate::registry().reset();
        reset();
    }

    #[test]
    fn merge_caps_at_k_per_histogram_and_dedups() {
        let mk = |hist: &str, value: f64, id: u64| ExemplarSnapshot {
            histogram: hist.to_owned(),
            value,
            trace_id: id,
            request_seq: 0,
        };
        let mut all = Vec::new();
        for i in 0..10u64 {
            all.push(mk("a", i as f64, i));
        }
        all.push(mk("a", 9.0, 9)); // duplicate observation
        all.push(mk("b", 1.0, 42));
        let merged = merge_exemplar_sets(all);
        let a: Vec<&ExemplarSnapshot> =
            merged.iter().filter(|x| x.histogram == "a").collect();
        assert_eq!(a.len(), crate::registry::EXEMPLAR_K);
        assert_eq!(a[0].value, 9.0, "kept the slowest");
        assert_eq!(merged.iter().filter(|x| x.histogram == "b").count(), 1);
    }
}
