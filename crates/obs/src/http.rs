//! Live telemetry HTTP plane: scrape the registry while the process runs.
//!
//! Every export built so far is exit-time-only — Prometheus text, traces
//! and the ledger are written when [`crate::report`] runs — which leaves
//! a long-lived daemon opaque until shutdown. [`start`] binds a tiny
//! std-only HTTP/1.1 listener on a background thread and answers
//!
//! * `GET /metrics` — the **live** registry snapshot in Prometheus text
//!   exposition format (same renderer as `PATHREP_OBS_PROM`), plus the
//!   sliding-window `pathrep_*_rate` families ([`crate::window`]) and
//!   trace exemplars in OpenMetrics suffix syntax,
//! * `GET /healthz` — `200 ok` liveness probe,
//! * `GET /snapshot.json` — the live snapshot as JSON
//!   ([`crate::Snapshot::to_json`]), exemplars included,
//! * `GET /slo.json` — declared objectives (`PATHREP_OBS_SLO`) evaluated
//!   per window with error-budget burn rates ([`crate::slo`]).
//!
//! Starting the plane also starts the 1 Hz window sampler
//! ([`crate::window::ensure_sampler`]) — a process with a scrape endpoint
//! always has windows to serve.
//!
//! [`start_from_env`] wires it to `PATHREP_OBS_HTTP=<addr>`
//! (`127.0.0.1:0` binds an ephemeral port; the caller prints the bound
//! address). Handlers only *read* the registry — they take the same
//! consistent snapshot `report()` takes and mutate nothing, so a scrape
//! cannot perturb deterministic counters or golden-ledger byte identity.
//!
//! The listener thread is detached and lives until process exit: a
//! telemetry plane has no work to drain, and holding the scrape socket
//! open through the final report is exactly what an external prober
//! wants.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Per-connection socket timeout: a stalled scraper must not pin a
/// handler thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Cap on the request head (request line + headers) we are willing to
/// buffer; scrape requests are tiny.
const MAX_HEAD: usize = 8 * 1024;

/// Handle to a running telemetry HTTP listener (see [`start`]).
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
}

impl HttpServer {
    /// The bound listen address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Binds `addr` and serves the scrape endpoints from a detached
/// background thread.
///
/// # Errors
///
/// Returns the bind error; the caller decides whether a dead telemetry
/// plane is fatal (the daemon treats it as a warning).
pub fn start(addr: &str) -> std::io::Result<HttpServer> {
    crate::window::ensure_sampler();
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("pathrep-obs-http".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // One thread per connection: scrapes are rare and short,
                // and a slow client must not block the next prober.
                let _ = std::thread::Builder::new()
                    .name("pathrep-obs-http-conn".into())
                    .spawn(move || {
                        let _ = handle(stream);
                    });
            }
        })?;
    Ok(HttpServer { addr: bound })
}

/// Starts the plane when `PATHREP_OBS_HTTP` is set: `None` when unset,
/// otherwise the [`start`] result for the configured address.
pub fn start_from_env() -> Option<std::io::Result<HttpServer>> {
    crate::config::http_addr().map(|addr| start(&addr))
}

/// Reads the request head and answers one request, then closes.
fn handle(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return respond(&mut stream, 431, "text/plain", "request head too large\n");
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer closed before a full request
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET is supported\n");
    }
    match target {
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/metrics" => {
            let mut body = crate::prom::render_prometheus(&crate::registry().snapshot());
            body.push_str(&crate::prom::render_windowed(&crate::window::read()));
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/snapshot.json" => {
            let body = crate::registry().snapshot().to_json();
            respond(&mut stream, 200, "application/json", &body)
        }
        "/slo.json" => {
            let body = crate::slo::render_report(
                &crate::slo::objectives_from_env(),
                &crate::window::read(),
            );
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "unknown path\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
