//! RAII span guards and the per-thread span stack.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Stack of full paths of the spans currently open on this thread.
    static SPAN_PATHS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Guard for one open span; records the elapsed wall-clock time into the
/// global registry when dropped. Created by [`crate::span!`].
#[must_use = "a span guard measures until it is dropped; bind it with `let _g = …`"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when telemetry was disabled at entry — drop is then free.
    started: Option<Instant>,
    /// Leaf name, kept for the trace end event.
    name: &'static str,
    /// Whether a trace begin event was buffered (its end slot is reserved).
    traced: bool,
    /// Whether a profiler shadow-stack frame was pushed (pop on drop).
    profiled: bool,
    /// Whether a flight-recorder begin was pushed (record the end on
    /// drop). Unlike the trace buffer the flight ring never refuses a
    /// record, so this mirrors `flight::collecting()` at entry.
    flight: bool,
}

impl SpanGuard {
    #[inline]
    pub(crate) fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                started: None,
                name,
                traced: false,
                profiled: false,
                flight: false,
            };
        }
        SPAN_PATHS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => {
                    let mut p = String::with_capacity(parent.len() + 1 + name.len());
                    p.push_str(parent);
                    p.push('/');
                    p.push_str(name);
                    p
                }
                None => name.to_owned(),
            };
            stack.push(path);
        });
        let traced = crate::trace::collecting() && crate::trace::record_begin(name);
        let profiled = crate::profile::push_frame(name);
        let flight = crate::flight::collecting();
        if flight {
            crate::flight::record_begin(name);
        }
        SpanGuard {
            started: Some(Instant::now()),
            name,
            traced,
            profiled,
            flight,
        }
    }
}

/// The slash-separated path of the innermost span currently open on this
/// thread, or `None` when telemetry is disabled or no span is open.
///
/// Worker pools capture this on the submitting thread and hand it to
/// [`adopt_span_parent`] on each worker, so spans opened inside pool tasks
/// nest under the caller's span instead of starting a fresh root — the
/// span stack itself is `thread_local!` and does not cross threads.
pub fn current_span_path() -> Option<String> {
    if !crate::enabled() {
        return None;
    }
    SPAN_PATHS.with(|stack| stack.borrow().last().cloned())
}

/// RAII guard for an adopted parent span path; created by
/// [`adopt_span_parent`]. Dropping pops the adopted path without recording
/// anything — the originating thread's own [`SpanGuard`] does the timing.
#[derive(Debug)]
#[must_use = "the parent path is adopted only while the guard lives"]
pub struct ParentSpanGuard {
    adopted: bool,
    /// Whether a profiler shadow-stack frame was pushed for the adopted
    /// path (pop on drop).
    profiled: bool,
}

/// Pushes `path` (a value from [`current_span_path`], captured on the
/// submitting thread) as the parent for spans subsequently opened on this
/// thread. No-op when `path` is `None` or telemetry is disabled.
pub fn adopt_span_parent(path: Option<String>) -> ParentSpanGuard {
    let Some(path) = path else {
        return ParentSpanGuard {
            adopted: false,
            profiled: false,
        };
    };
    if !crate::enabled() {
        return ParentSpanGuard {
            adopted: false,
            profiled: false,
        };
    }
    let profiled = crate::profile::push_adopted(&path);
    SPAN_PATHS.with(|stack| stack.borrow_mut().push(path));
    ParentSpanGuard {
        adopted: true,
        profiled,
    }
}

impl Drop for ParentSpanGuard {
    fn drop(&mut self) {
        // Pool workers drop this guard at task end, inside the scoped
        // worker's lifetime — the last chance to move the worker's
        // pending work tallies into the registry before the thread dies.
        // (Unconditional: workers record work even when no parent span
        // was adopted. A no-op when nothing is pending.)
        crate::work::flush();
        if self.adopted {
            SPAN_PATHS.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
        if self.profiled {
            crate::profile::pop_frame();
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        // Span end is the flush point of the thread-local work
        // accumulator (a no-op when the kernels inside recorded nothing).
        crate::work::flush();
        let duration_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if self.traced {
            crate::trace::record_end(self.name);
        }
        if self.flight {
            crate::flight::record_end(self.name);
        }
        if self.profiled {
            crate::profile::pop_frame();
        }
        let path = SPAN_PATHS.with(|stack| stack.borrow_mut().pop());
        if let Some(path) = path {
            crate::registry().span_record(&path, duration_ns);
        }
    }
}
