//! Plain-data snapshots of the registry, with text-tree and JSON
//! renderings.

use crate::json::{self, JsonValue};
use crate::registry::SpanStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One span path aggregated over all its executions, with children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Leaf name (last path component).
    pub name: String,
    /// Full slash-separated path.
    pub path: String,
    /// Number of completed executions.
    pub count: u64,
    /// Total wall-clock nanoseconds across executions.
    pub total_ns: u128,
    /// Fastest execution (ns).
    pub min_ns: u64,
    /// Slowest execution (ns).
    pub max_ns: u64,
    /// Child spans, sorted by path.
    pub children: Vec<SpanNode>,
}

/// A monotonic counter's value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A gauge's last-written value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Gauge name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// A histogram's buckets and summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Ascending bucket edges; bucket `i` counts values `≤ edges[i]`
    /// (and above `edges[i-1]`), with one final overflow bucket.
    pub edges: Vec<f64>,
    /// Per-bucket counts (`edges.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (0 when empty).
    pub min: f64,
    /// Largest recorded value (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation within the fixed bucket edges: the target rank is
    /// located in the cumulative bucket counts and interpolated between
    /// the bucket's bounds (clamped to the observed `min`/`max`, which
    /// also bound the open-ended first bucket). Exact extremes short-cut
    /// interpolation: `q = 0` is `min`, `q = 1` is `max`, and a
    /// single-value or constant histogram returns that value. A quantile
    /// landing in the unbounded overflow bucket returns the bucket's
    /// lower bound rather than interpolating toward `max` — one outlier
    /// must not drag every tail quantile up with it. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        if self.count == 1 || self.min == self.max {
            return self.min;
        }
        let target = q * self.count as f64;
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = below + c;
            if upto as f64 >= target {
                let lower = if i == 0 {
                    self.min
                } else {
                    self.edges[i - 1].max(self.min)
                };
                if i >= self.edges.len() {
                    // Overflow bucket `(last_edge, +inf)`: its only known
                    // upper bound is `max`, so interpolating would let a
                    // single outlier skew every quantile landing here.
                    // Report the conservative lower bound instead.
                    return lower.min(self.max);
                }
                let upper = self.edges[i].min(self.max);
                let frac = ((target - below as f64) / c as f64).clamp(0.0, 1.0);
                return lower + frac * (upper - lower);
            }
            below = upto;
        }
        self.max
    }
}

/// A recorded event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSnapshot {
    /// `"info"` or `"warn"`.
    pub level: String,
    /// Stable event name.
    pub name: String,
    /// Details.
    pub message: String,
}

/// A trace exemplar: one slow observation of an HDR histogram that kept
/// its trace context, linking a tail-latency bucket back to the exact
/// request that landed there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExemplarSnapshot {
    /// Name of the HDR histogram the observation landed in.
    pub histogram: String,
    /// The recorded value (nanoseconds for latency histograms).
    pub value: f64,
    /// End-to-end request id carried by the recording thread.
    pub trace_id: u64,
    /// Request sequence number within the originating client.
    pub request_seq: u64,
}

/// A consistent point-in-time copy of every metric in the registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Root spans (no open parent at record time), sorted by path.
    pub spans: Vec<SpanNode>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Events in record order (capped; see
    /// [`crate::registry::MAX_EVENTS`]).
    pub events: Vec<EventSnapshot>,
    /// Events discarded after the cap was hit.
    pub events_dropped: u64,
    /// Top-K slowest recent observations per HDR histogram that carried a
    /// trace context (merged over the ~60 s window ring; see
    /// [`crate::window`]). Empty on snapshots predating exemplars —
    /// `from_json` parses the field leniently.
    pub exemplars: Vec<ExemplarSnapshot>,
}

/// Assembles the flat path → stats map into a forest. A child path whose
/// parent was never recorded directly (possible when only inner spans
/// fired) gets a synthetic zero-count parent node.
pub(crate) fn build_span_tree(flat: &BTreeMap<String, SpanStats>) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, stats) in flat {
        insert_node(&mut roots, path, path, stats);
    }
    roots
}

fn insert_node(level: &mut Vec<SpanNode>, full_path: &str, rest: &str, stats: &SpanStats) {
    let (head, tail) = match rest.split_once('/') {
        Some((h, t)) => (h, Some(t)),
        None => (rest, None),
    };
    let head_path = &full_path[..full_path.len() - rest.len() + head.len()];
    let node = match level.iter_mut().find(|n| n.name == head) {
        Some(n) => n,
        None => {
            level.push(SpanNode {
                name: head.to_owned(),
                path: head_path.to_owned(),
                count: 0,
                total_ns: 0,
                min_ns: 0,
                max_ns: 0,
                children: Vec::new(),
            });
            level.last_mut().expect("just pushed")
        }
    };
    match tail {
        None => {
            node.count = stats.count;
            node.total_ns = stats.total_ns;
            node.min_ns = stats.min_ns;
            node.max_ns = stats.max_ns;
        }
        Some(t) => insert_node(&mut node.children, full_path, t, stats),
    }
}

fn fmt_ns(ns: u128) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

impl Snapshot {
    /// Renders the snapshot as an indented text report: the span tree
    /// first, then counters, gauges, histograms and events.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for root in &self.spans {
                render_span(&mut out, root, 1);
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<44} {}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                let _ = writeln!(out, "  {:<44} {}", g.name, g.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<44} n={} min={:.3e} max={:.3e} mean={:.3e} \
                     p50={:.3e} p95={:.3e} p99={:.3e}",
                    h.name,
                    h.count,
                    h.min,
                    h.max,
                    if h.count > 0 { h.sum / h.count as f64 } else { 0.0 },
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                );
            }
        }
        if !self.exemplars.is_empty() {
            out.push_str("exemplars:\n");
            for x in &self.exemplars {
                let _ = writeln!(
                    out,
                    "  {:<44} {:.3e} trace_id={} seq={}",
                    x.histogram, x.value, x.trace_id, x.request_seq
                );
            }
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            out.push_str("events:\n");
            for e in &self.events {
                let _ = writeln!(out, "  [{}] {}: {}", e.level, e.name, e.message);
            }
        }
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "events_dropped: {}\n  [warn] obs.events.dropped: event buffer \
                 saturated (cap {}) — {} later events were discarded",
                self.events_dropped,
                crate::MAX_EVENTS,
                self.events_dropped,
            );
        }
        out
    }

    /// Serializes the snapshot to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Parses a snapshot back from [`Snapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        Snapshot::from_value(&json::parse(text)?)
    }

    fn to_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "spans".into(),
                JsonValue::Array(self.spans.iter().map(span_to_value).collect()),
            ),
            (
                "counters".into(),
                JsonValue::Array(
                    self.counters
                        .iter()
                        .map(|c| {
                            JsonValue::Object(vec![
                                ("name".into(), JsonValue::String(c.name.clone())),
                                ("value".into(), JsonValue::Number(c.value as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                JsonValue::Array(
                    self.gauges
                        .iter()
                        .map(|g| {
                            JsonValue::Object(vec![
                                ("name".into(), JsonValue::String(g.name.clone())),
                                ("value".into(), JsonValue::Number(g.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                JsonValue::Array(
                    self.histograms
                        .iter()
                        .map(|h| {
                            JsonValue::Object(vec![
                                ("name".into(), JsonValue::String(h.name.clone())),
                                (
                                    "edges".into(),
                                    JsonValue::Array(
                                        h.edges.iter().map(|&e| JsonValue::Number(e)).collect(),
                                    ),
                                ),
                                (
                                    "counts".into(),
                                    JsonValue::Array(
                                        h.counts
                                            .iter()
                                            .map(|&c| JsonValue::Number(c as f64))
                                            .collect(),
                                    ),
                                ),
                                ("count".into(), JsonValue::Number(h.count as f64)),
                                ("sum".into(), JsonValue::Number(h.sum)),
                                ("min".into(), JsonValue::Number(h.min)),
                                ("max".into(), JsonValue::Number(h.max)),
                                // Derived quantile estimates; from_json
                                // recomputes nothing and ignores them.
                                ("p50".into(), JsonValue::Number(h.quantile(0.50))),
                                ("p95".into(), JsonValue::Number(h.quantile(0.95))),
                                ("p99".into(), JsonValue::Number(h.quantile(0.99))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "events".into(),
                JsonValue::Array(
                    self.events
                        .iter()
                        .map(|e| {
                            JsonValue::Object(vec![
                                ("level".into(), JsonValue::String(e.level.clone())),
                                ("name".into(), JsonValue::String(e.name.clone())),
                                ("message".into(), JsonValue::String(e.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "events_dropped".into(),
                JsonValue::Number(self.events_dropped as f64),
            ),
            (
                "exemplars".into(),
                JsonValue::Array(
                    self.exemplars
                        .iter()
                        .map(|x| {
                            JsonValue::Object(vec![
                                (
                                    "histogram".into(),
                                    JsonValue::String(x.histogram.clone()),
                                ),
                                ("value".into(), JsonValue::Number(x.value)),
                                ("trace_id".into(), JsonValue::Number(x.trace_id as f64)),
                                (
                                    "request_seq".into(),
                                    JsonValue::Number(x.request_seq as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(v: &JsonValue) -> Result<Snapshot, String> {
        Ok(Snapshot {
            spans: v
                .field("spans")?
                .array()?
                .iter()
                .map(span_from_value)
                .collect::<Result<_, _>>()?,
            counters: v
                .field("counters")?
                .array()?
                .iter()
                .map(|c| {
                    Ok(CounterSnapshot {
                        name: c.field("name")?.string()?,
                        value: c.field("value")?.number()? as u64,
                    })
                })
                .collect::<Result<_, String>>()?,
            gauges: v
                .field("gauges")?
                .array()?
                .iter()
                .map(|g| {
                    Ok(GaugeSnapshot {
                        name: g.field("name")?.string()?,
                        value: g.field("value")?.number()?,
                    })
                })
                .collect::<Result<_, String>>()?,
            histograms: v
                .field("histograms")?
                .array()?
                .iter()
                .map(|h| {
                    Ok(HistogramSnapshot {
                        name: h.field("name")?.string()?,
                        edges: h.field("edges")?.number_array()?,
                        counts: h
                            .field("counts")?
                            .number_array()?
                            .into_iter()
                            .map(|x| x as u64)
                            .collect(),
                        count: h.field("count")?.number()? as u64,
                        sum: h.field("sum")?.number()?,
                        min: h.field("min")?.number()?,
                        max: h.field("max")?.number()?,
                    })
                })
                .collect::<Result<_, String>>()?,
            events: v
                .field("events")?
                .array()?
                .iter()
                .map(|e| {
                    Ok(EventSnapshot {
                        level: e.field("level")?.string()?,
                        name: e.field("name")?.string()?,
                        message: e.field("message")?.string()?,
                    })
                })
                .collect::<Result<_, String>>()?,
            events_dropped: v.field("events_dropped")?.number()? as u64,
            // Lenient: snapshots written before exemplars existed must
            // keep parsing, so a missing field is just an empty list.
            exemplars: match v.field("exemplars") {
                Err(_) => Vec::new(),
                Ok(field) => field
                    .array()?
                    .iter()
                    .map(|x| {
                        Ok(ExemplarSnapshot {
                            histogram: x.field("histogram")?.string()?,
                            value: x.field("value")?.number()?,
                            trace_id: x.field("trace_id")?.number()? as u64,
                            request_seq: x.field("request_seq")?.number()? as u64,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            },
        })
    }
}

fn span_to_value(n: &SpanNode) -> JsonValue {
    JsonValue::Object(vec![
        ("name".into(), JsonValue::String(n.name.clone())),
        ("path".into(), JsonValue::String(n.path.clone())),
        ("count".into(), JsonValue::Number(n.count as f64)),
        ("total_ns".into(), JsonValue::Number(n.total_ns as f64)),
        ("min_ns".into(), JsonValue::Number(n.min_ns as f64)),
        ("max_ns".into(), JsonValue::Number(n.max_ns as f64)),
        (
            "children".into(),
            JsonValue::Array(n.children.iter().map(span_to_value).collect()),
        ),
    ])
}

fn span_from_value(v: &JsonValue) -> Result<SpanNode, String> {
    Ok(SpanNode {
        name: v.field("name")?.string()?,
        path: v.field("path")?.string()?,
        count: v.field("count")?.number()? as u64,
        total_ns: v.field("total_ns")?.number()? as u128,
        min_ns: v.field("min_ns")?.number()? as u64,
        max_ns: v.field("max_ns")?.number()? as u64,
        children: v
            .field("children")?
            .array()?
            .iter()
            .map(span_from_value)
            .collect::<Result<_, _>>()?,
    })
}

fn render_span(out: &mut String, node: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    if node.count == 0 {
        let _ = writeln!(out, "{indent}{}", node.name);
    } else if node.count == 1 {
        let _ = writeln!(out, "{indent}{:<30} {}", node.name, fmt_ns(node.total_ns));
    } else {
        let _ = writeln!(
            out,
            "{indent}{:<30} {} total / {} calls (min {}, max {})",
            node.name,
            fmt_ns(node.total_ns),
            node.count,
            fmt_ns(node.min_ns as u128),
            fmt_ns(node.max_ns as u128),
        );
    }
    for child in &node.children {
        render_span(out, child, depth + 1);
    }
}
