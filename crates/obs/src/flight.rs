//! Always-on flight recorder: a fixed-capacity ring of recent span
//! begin/end and instant records, dumped when something goes wrong.
//!
//! The Chrome-trace buffer in [`crate::trace`] is opt-in and unbounded in
//! time (it keeps everything until saturation); the flight recorder is the
//! opposite trade: **on by default** at a small capacity
//! ([`crate::config::DEFAULT_FLIGHT_CAPACITY`] records, tunable with
//! `PATHREP_OBS_FLIGHT=<cap>`, `0` disables), overwriting the oldest
//! record so it always holds the *most recent* activity. When a process
//! panics, stalls, or is asked over the wire, [`dump_to`] renders the ring
//! as a Chrome-trace-compatible JSON file — the black box recovered from
//! the crash site.
//!
//! Because the ring overwrites, a raw dump would contain end records whose
//! begins were evicted and begins whose spans were still open at dump
//! time. [`render_chrome`] repairs both at render time: orphaned ends are
//! dropped, and still-open begins get a synthetic end at the dump
//! timestamp — which is precisely how the *panicking* request's span (its
//! end never ran) survives into the dump with its trace context attached.
//!
//! [`install_panic_hook`] chains the previous hook, records the panic
//! message as an instant record, dumps the ring and optionally exits the
//! process — the daemon installs it with an exit code so an injected
//! panic kills the process *after* the evidence is on disk.

use crate::trace::TraceContext;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Phase of a flight record, mirroring the Chrome-trace `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightPhase {
    /// Span entry (`ph:"B"`).
    Begin,
    /// Span exit (`ph:"E"`).
    End,
    /// A point-in-time mark (`ph:"i"`): events, panics, watchdog fires.
    Instant,
}

/// One record in the flight ring.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Span leaf name or instant-mark name.
    pub name: &'static str,
    /// Begin, end or instant.
    pub phase: FlightPhase,
    /// Monotonic nanoseconds on the shared trace epoch.
    pub ts_ns: u64,
    /// Per-thread id (same numbering as [`crate::trace`] events).
    pub tid: u64,
    /// Trace context active on the recording thread, if any.
    pub ctx: Option<TraceContext>,
    /// Free-form details for instant records (panic message, watchdog
    /// diagnosis); `None` for span records.
    pub note: Option<String>,
}

struct Ring {
    records: VecDeque<FlightRecord>,
    /// Records evicted to make room — the ring's drop count.
    overwritten: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            records: VecDeque::new(),
            overwritten: 0,
        })
    })
}

/// 0 = undecided (read env on first query), 1 = off, 2 = on.
static COLLECTING: AtomicU8 = AtomicU8::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// Whether the flight recorder is accepting records. The first call
/// resolves `PATHREP_OBS_FLIGHT` (unset means **on** at the default small
/// capacity; `0`/`off` disables); later calls are one relaxed atomic
/// load. Recording still requires [`crate::enabled`] — the recorder rides
/// the span path, which is dead when telemetry is off.
#[inline]
pub fn collecting() -> bool {
    match COLLECTING.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_collecting(),
    }
}

#[cold]
fn init_collecting() -> bool {
    let cap = crate::config::flight_capacity();
    CAPACITY.store(cap.unwrap_or(0), Ordering::Relaxed);
    COLLECTING.store(if cap.is_some() { 2 } else { 1 }, Ordering::Relaxed);
    cap.is_some()
}

/// Programmatically sets the ring capacity, overriding the environment:
/// `0` disables recording, anything else enables it at that capacity
/// (used by tests and embedders). Does not clear existing records.
pub fn set_capacity(cap: usize) {
    CAPACITY.store(cap, Ordering::Relaxed);
    COLLECTING.store(if cap > 0 { 2 } else { 1 }, Ordering::Relaxed);
}

/// The active ring capacity (0 when disabled).
pub fn capacity() -> usize {
    let _ = collecting(); // force env resolution
    CAPACITY.load(Ordering::Relaxed)
}

fn push(record: FlightRecord) {
    let cap = CAPACITY.load(Ordering::Relaxed);
    if cap == 0 {
        return;
    }
    let mut g = ring().lock();
    while g.records.len() >= cap {
        g.records.pop_front();
        g.overwritten += 1;
    }
    g.records.push_back(record);
}

fn record(name: &'static str, phase: FlightPhase, note: Option<String>) {
    push(FlightRecord {
        name,
        phase,
        ts_ns: crate::trace::now_ns(),
        tid: crate::trace::thread_id(),
        ctx: crate::trace::current_context(),
        note,
    });
}

/// Records a span begin (called from the span guard's hot path; the
/// caller has already checked [`crate::enabled`] and [`collecting`]).
#[inline]
pub(crate) fn record_begin(name: &'static str) {
    record(name, FlightPhase::Begin, None);
}

/// Records a span end.
#[inline]
pub(crate) fn record_end(name: &'static str) {
    record(name, FlightPhase::End, None);
}

/// Records an instant mark (panic, watchdog fire, notable event) with a
/// free-form note. No-op when the recorder is off.
pub fn instant(name: &'static str, note: impl Into<String>) {
    if collecting() {
        record(name, FlightPhase::Instant, Some(note.into()));
    }
}

/// A copy of the ring in record order plus the overwrite (drop) count.
pub fn snapshot() -> (Vec<FlightRecord>, u64) {
    let g = ring().lock();
    (g.records.iter().cloned().collect(), g.overwritten)
}

/// Clears the ring and its drop count.
pub fn reset() {
    let mut g = ring().lock();
    g.records.clear();
    g.overwritten = 0;
}

/// Renders flight records as a Chrome Trace Event JSON array with
/// **balanced** B/E pairs: end records whose begin was overwritten are
/// dropped, and begins still open at dump time get a synthetic end at the
/// latest timestamp in the dump (so the in-flight span — e.g. the request
/// that panicked — appears with its full extent and trace context).
/// Instant records render as `ph:"i"` thread-scoped marks carrying their
/// note, and the overwrite count is surfaced as a leading metadata mark.
pub fn render_chrome(records: &[FlightRecord], overwritten: u64, pid: u32) -> String {
    use std::collections::HashMap;
    // Pass 1: match B/E per tid; remember which records survive.
    // `stacks` maps tid -> indices of currently-open Begin records.
    let mut stacks: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut keep = vec![true; records.len()];
    for (i, r) in records.iter().enumerate() {
        match r.phase {
            FlightPhase::Begin => stacks.entry(r.tid).or_default().push(i),
            FlightPhase::End => {
                let stack = stacks.entry(r.tid).or_default();
                // Pop the innermost open begin with the same name; an
                // evicted begin leaves its end orphaned — drop the end.
                match stack.iter().rposition(|&bi| records[bi].name == r.name) {
                    Some(pos) => {
                        // Anything opened after it never ended inside the
                        // window either; leave those on the stack — they
                        // get synthetic ends below.
                        stack.remove(pos);
                    }
                    None => keep[i] = false,
                }
            }
            FlightPhase::Instant => {}
        }
    }
    let dump_ts = records.iter().map(|r| r.ts_ns).max().unwrap_or(0);
    let fmt_ts = |ts_ns: u64| format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000);
    let fmt_ctx = |ctx: Option<TraceContext>| match ctx {
        Some(c) => format!(
            ",\"trace_id\":{},\"request_seq\":{}",
            c.trace_id, c.request_seq
        ),
        None => String::new(),
    };
    let mut out = String::with_capacity(records.len() * 80 + 128);
    out.push('[');
    out.push_str(&format!(
        "{{\"name\":\"flight.overwritten\",\"ph\":\"i\",\"ts\":0.000,\"pid\":{pid},\
         \"tid\":0,\"s\":\"g\",\"args\":{{\"overwritten\":{overwritten}}}}}"
    ));
    for (i, r) in records.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        out.push(',');
        match r.phase {
            FlightPhase::Begin | FlightPhase::End => {
                out.push_str(&format!(
                    "{{\"name\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":{pid},\"tid\":{}\
                     ,\"args\":{{\"flight\":true{}}}}}",
                    crate::json::escape_string(r.name),
                    if r.phase == FlightPhase::Begin { "B" } else { "E" },
                    fmt_ts(r.ts_ns),
                    r.tid,
                    fmt_ctx(r.ctx),
                ));
            }
            FlightPhase::Instant => {
                let note = r.note.as_deref().unwrap_or("");
                out.push_str(&format!(
                    "{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\"tid\":{},\
                     \"s\":\"t\",\"args\":{{\"note\":{}{}}}}}",
                    crate::json::escape_string(r.name),
                    fmt_ts(r.ts_ns),
                    r.tid,
                    crate::json::escape_string(note),
                    fmt_ctx(r.ctx),
                ));
            }
        }
    }
    // Synthetic ends for spans still open at dump time, innermost first
    // so per-tid nesting stays balanced.
    for (tid, stack) in &stacks {
        for &bi in stack.iter().rev() {
            let r = &records[bi];
            out.push(',');
            out.push_str(&format!(
                "{{\"name\":{},\"ph\":\"E\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"flight\":true,\"synthetic_end\":true{}}}}}",
                crate::json::escape_string(r.name),
                fmt_ts(dump_ts),
                fmt_ctx(r.ctx),
            ));
        }
    }
    out.push(']');
    out
}

/// Writes the current ring to `path` as balanced Chrome Trace JSON.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn dump_to(path: &str) -> std::io::Result<(usize, u64)> {
    let (records, overwritten) = snapshot();
    let n = records.len();
    std::fs::write(path, render_chrome(&records, overwritten, std::process::id()))?;
    Ok((n, overwritten))
}

/// Dumps the ring to the configured path (`PATHREP_OBS_FLIGHT_DUMP`, or
/// `flight_<pid>.json`), warning instead of failing on I/O errors, and
/// returns the path written (or attempted).
pub fn dump_default() -> String {
    let path = crate::config::flight_dump_path();
    match dump_to(&path) {
        Ok((n, dropped)) => {
            eprintln!(
                "pathrep-obs: flight recorder dumped {n} records \
                 ({dropped} overwritten) to {path}"
            );
        }
        Err(e) => crate::config::warn_export("flight", &path, &e),
    }
    path
}

/// Installs a panic hook that records the panic as an instant mark, dumps
/// the flight ring to the configured path, chains the previously
/// installed hook, and — when `exit_code` is `Some` — terminates the
/// process with that code (daemons install it this way so a panicking
/// handler thread kills the whole process *after* the dump lands).
/// Reentrant panics skip the dump.
pub fn install_panic_hook(exit_code: Option<i32>) {
    use std::sync::atomic::AtomicBool;
    static IN_HOOK: AtomicBool = AtomicBool::new(false);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !IN_HOOK.swap(true, Ordering::SeqCst) {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            let loc = info
                .location()
                .map(|l| format!(" at {}:{}", l.file(), l.line()))
                .unwrap_or_default();
            instant("panic", format!("{msg}{loc}"));
            dump_default();
        }
        prev(info);
        IN_HOOK.store(false, Ordering::SeqCst);
        if let Some(code) = exit_code {
            std::process::exit(code);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that mutate the process-global ring/capacity.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn rec(name: &'static str, phase: FlightPhase, ts_ns: u64, tid: u64) -> FlightRecord {
        FlightRecord {
            name,
            phase,
            ts_ns,
            tid,
            ctx: None,
            note: None,
        }
    }

    /// Walks a rendered dump and asserts every tid's B/E stream is
    /// balanced; returns (begin_count, end_count, instant_count).
    fn check_dump_balanced(json: &str) -> (usize, usize, usize) {
        use std::collections::HashMap;
        let v = crate::json::parse(json).expect("dump parses");
        let items = v.array().expect("top-level array");
        let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
        let (mut b, mut e, mut i) = (0, 0, 0);
        for item in items {
            let ph = item.field("ph").unwrap().string().unwrap();
            let tid = item.field("tid").unwrap().number().unwrap() as u64;
            let name = item.field("name").unwrap().string().unwrap();
            match ph.as_str() {
                "B" => {
                    stacks.entry(tid).or_default().push(name);
                    b += 1;
                }
                "E" => {
                    let open = stacks
                        .entry(tid)
                        .or_default()
                        .pop()
                        .expect("E without open B");
                    assert_eq!(open, name, "mismatched B/E pair");
                    e += 1;
                }
                "i" => i += 1,
                other => panic!("unexpected phase {other}"),
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "unbalanced spans on tid {tid}: {stack:?}");
        }
        (b, e, i)
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _l = guard();
        set_capacity(4);
        reset();
        for i in 0..6u64 {
            push(rec("x", FlightPhase::Instant, i, 0));
        }
        let (records, overwritten) = snapshot();
        assert_eq!(records.len(), 4);
        assert_eq!(overwritten, 2);
        assert_eq!(records[0].ts_ns, 2, "oldest two were evicted");
        reset();
        let (records, overwritten) = snapshot();
        assert!(records.is_empty());
        assert_eq!(overwritten, 0);
        set_capacity(0);
        push(rec("y", FlightPhase::Instant, 9, 0));
        assert!(snapshot().0.is_empty(), "capacity 0 records nothing");
    }

    #[test]
    fn render_drops_orphan_ends_and_closes_open_begins() {
        // tid 0: an orphaned end (begin evicted), then a full span, then
        // a begin with no end (the "panicking" span).
        let records = vec![
            rec("evicted", FlightPhase::End, 10, 0),
            rec("ok", FlightPhase::Begin, 20, 0),
            rec("ok", FlightPhase::End, 30, 0),
            FlightRecord {
                ctx: Some(TraceContext {
                    trace_id: 77,
                    request_seq: 3,
                }),
                ..rec("inflight", FlightPhase::Begin, 40, 0)
            },
            rec("mark", FlightPhase::Instant, 45, 0),
        ];
        let json = render_chrome(&records, 5, 42);
        let (b, e, i) = check_dump_balanced(&json);
        assert_eq!(b, 2, "orphaned end must not leave an extra B");
        assert_eq!(e, 2, "open begin gets a synthetic end");
        assert_eq!(i, 2, "instant mark + overwritten metadata mark");
        // The in-flight span keeps its trace context in the dump.
        assert!(json.contains("\"trace_id\":77"), "{json}");
        assert!(json.contains("\"synthetic_end\":true"), "{json}");
        assert!(json.contains("\"overwritten\":5"), "{json}");
    }

    #[test]
    fn span_guards_feed_the_ring_when_enabled() {
        let _l = guard();
        crate::set_enabled(true);
        set_capacity(64);
        reset();
        {
            let _outer = crate::span!("flight_outer");
            let _inner = crate::span!("flight_inner");
        }
        let (records, _) = snapshot();
        let names: Vec<&str> = records.iter().map(|r| r.name).collect();
        assert!(names.contains(&"flight_outer"), "{names:?}");
        assert!(names.contains(&"flight_inner"), "{names:?}");
        let json = render_chrome(&snapshot().0, 0, 1);
        check_dump_balanced(&json);
        reset();
    }
}
