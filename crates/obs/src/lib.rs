//! # pathrep-obs — observability substrate for the pathrep pipeline
//!
//! A dependency-free instrumentation layer (std + the vendored
//! `parking_lot`/`serde` shims only) giving every stage of the DAC-2010
//! flow — path extraction, SVD/QR subset selection, the ε_r decrement
//! loop, the ADMM segment program and the Monte-Carlo evaluation —
//! spans, counters, gauges, histograms and warning events, collected in a
//! global thread-safe [`Registry`].
//!
//! ## Design rules
//!
//! * **Disabled means free.** Every recording call first checks
//!   [`enabled`] — a single relaxed atomic load — and returns immediately
//!   when telemetry is off, so instrumented kernels cost ~nothing in
//!   benchmarks.
//! * **Hierarchical spans.** [`span!`] returns an RAII guard; nested
//!   guards on the same thread build slash-separated paths
//!   (`"table1/prepare/extract"`) aggregated per path in the registry.
//! * **Structured export.** [`Registry::snapshot`] produces a plain-data
//!   [`Snapshot`] renderable as a text tree ([`Snapshot::render`]) or JSON
//!   ([`Snapshot::to_json`] / [`Snapshot::from_json`]).
//!
//! ## Environment variables
//!
//! * `PATHREP_OBS=1` — enable collection; experiment binaries then print a
//!   telemetry section after their tables.
//! * `PATHREP_OBS_JSON=<path>` — additionally append one JSON line per
//!   [`report`] call to `<path>`.
//! * `PATHREP_OBS_TRACE=<path>` — buffer span begin/end timestamps and
//!   write them at [`report`] as Chrome Trace Event JSON (open in
//!   `chrome://tracing` or Perfetto); see [`trace`]. Requires
//!   `PATHREP_OBS=1`.
//! * `PATHREP_OBS_PROM=<path>` — write the snapshot at [`report`] in the
//!   Prometheus text exposition format; see [`prom`].
//! * `PATHREP_OBS_LEDGER=<path>` — append numerical-health records
//!   (condition numbers, `ε_r` traces, ADMM residual curves, guard-bands)
//!   as JSON Lines at [`report`]; see [`ledger`]. Works **without**
//!   `PATHREP_OBS=1`.
//! * `PATHREP_OBS_RUN_ID=<id>` — override the run id stamped on ledger
//!   records (defaults to `pid<process id>`).
//! * `PATHREP_OBS_HTTP=<addr>` — serve `GET /metrics`, `/healthz` and
//!   `/snapshot.json` from a background listener scraping the **live**
//!   registry; see [`http`]. `…:0` binds an ephemeral port.
//! * `PATHREP_OBS_PROFILE_HZ=<hz>` — sample every thread's live span
//!   stack `<hz>` times per second and emit folded-stack flamegraph
//!   lines at [`report`]; see [`profile`].
//! * `PATHREP_OBS_PROFILE=<path>` — write the folded-stack lines to
//!   `<path>` instead of stdout.
//! * `PATHREP_THREADS=<n>` — worker count for the `pathrep-par` kernel
//!   pool (registered in [`config::ALL_ENV_VARS`] so the drift guard
//!   covers it); `1` = sequential, unset or `0` = available parallelism.
//!   Results are bit-identical at any setting.
//! * `PATHREP_OBS_FLIGHT=<cap>` — capacity of the always-on flight
//!   recorder ring (see [`flight`]); unset means the default small
//!   capacity, `0`/`off` disables it. Dumped on panic, stall, or request.
//! * `PATHREP_OBS_FLIGHT_DUMP=<path>` — where panic-hook/watchdog flight
//!   dumps land (default `flight_<pid>.json`).
//! * `PATHREP_OBS_SLO=<spec>` — declared latency objectives for the
//!   `/slo.json` endpoint, e.g. `serve.request_ns:p999<5ms:99.9`; see
//!   [`slo`].
//!
//! All parsing of these variables lives in [`config`]; export failures
//! warn on stderr and never abort the run.
//!
//! ## Example
//!
//! ```
//! pathrep_obs::set_enabled(true);
//! {
//!     let _outer = pathrep_obs::span!("stage");
//!     let _inner = pathrep_obs::span!("kernel");
//!     pathrep_obs::counter_add("stage.kernel.calls", 1);
//! }
//! let snap = pathrep_obs::registry().snapshot();
//! assert_eq!(snap.counters[0].name, "stage.kernel.calls");
//! let round_trip = pathrep_obs::Snapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(round_trip.counters[0].value, 1);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod flight;
pub mod hdr;
pub mod http;
pub mod json;
pub mod ledger;
pub mod prom;
pub mod profile;
mod registry;
pub mod selftime;
pub mod slo;
mod snapshot;
mod span;
pub mod trace;
pub mod window;
pub mod work;

pub use hdr::HdrHistogram;
pub use registry::{registry, Event, Level, Registry, EXEMPLAR_K, MAX_EVENTS};
pub use snapshot::{
    CounterSnapshot, EventSnapshot, ExemplarSnapshot, GaugeSnapshot, HistogramSnapshot,
    Snapshot, SpanNode,
};
pub use span::{adopt_span_parent, current_span_path, ParentSpanGuard, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = undecided (read env on first query), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry collection is on. The first call resolves the
/// `PATHREP_OBS` environment variable (`1`/`true`/`on` enable); later
/// calls are a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = config::obs_enabled_from_env();
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically enables or disables collection, overriding the
/// environment (used by tests and by embedding applications).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Opens a span named `name` under the current thread's innermost open
/// span; prefer the [`span!`] macro. The returned guard records the
/// span's wall-clock duration into the global registry when dropped.
#[inline]
pub fn span_enter(name: &'static str) -> SpanGuard {
    SpanGuard::enter(name)
}

/// Adds `delta` to the monotonic counter `name`.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        registry().counter_add_slow(name, delta);
    }
}

/// Sets the gauge `name` to `value` (last write wins).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() {
        registry().gauge_set_slow(name, value);
    }
}

/// Records `value` into the histogram `name` using the default
/// logarithmic bucket edges (`1e-12, 1e-11, …, 1e3`), suitable for
/// residuals and relative errors.
#[inline]
pub fn histogram_record(name: &'static str, value: f64) {
    if enabled() {
        registry().histogram_record_slow(name, None, value);
    }
}

/// Records `value` into the histogram `name` with explicit ascending
/// bucket `edges` (applied on first touch; later calls reuse the
/// registered edges).
#[inline]
pub fn histogram_record_with(name: &'static str, edges: &[f64], value: f64) {
    if enabled() {
        registry().histogram_record_slow(name, Some(edges), value);
    }
}

/// Records `value` into the log-bucketed HDR histogram `name`
/// (~2 % relative-error buckets at any scale; see [`hdr`]) — the right
/// variant for latencies, where tail quantiles (p999/p9999) must resolve
/// without preconfigured edges. The first recording call decides whether
/// a name is fixed-edge or HDR.
#[inline]
pub fn histogram_record_hdr(name: &'static str, value: f64) {
    if enabled() {
        registry().histogram_record_hdr_slow(name, value);
    }
}

/// Records a warning event (e.g. an unconverged solver), keeping the
/// first [`registry::MAX_EVENTS`] events. Events also land in the flight
/// ring as instant marks, so a post-mortem dump shows them in-line with
/// the spans that surrounded them.
#[inline]
pub fn warn(name: &'static str, message: impl FnOnce() -> String) {
    if enabled() {
        let msg = message();
        if flight::collecting() {
            flight::instant(name, msg.clone());
        }
        registry().event_slow(Level::Warn, name, msg);
    }
}

/// Records an informational event (also mirrored into the flight ring;
/// see [`warn`]).
#[inline]
pub fn info(name: &'static str, message: impl FnOnce() -> String) {
    if enabled() {
        let msg = message();
        if flight::collecting() {
            flight::instant(name, msg.clone());
        }
        registry().event_slow(Level::Info, name, msg);
    }
}

/// Clears every metric in the global registry, the trace buffer, the
/// ledger buffer, the flight ring, the window ring and the calling
/// thread's pending work tallies (tests and long-lived embedders).
pub fn reset() {
    registry().reset();
    trace::reset();
    ledger::reset();
    profile::reset();
    flight::reset();
    window::reset();
    work::reset_thread();
}

/// Emits the standard end-of-run telemetry report for an experiment
/// labelled `label`: when collection is enabled, prints the text tree to
/// stdout and honours the export environment variables —
/// `PATHREP_OBS_JSON=<path>` appends one JSON line
/// `{"label": …, "snapshot": …}`, `PATHREP_OBS_TRACE=<path>` writes the
/// buffered spans as Chrome Trace Event JSON, and
/// `PATHREP_OBS_PROM=<path>` writes the snapshot in the Prometheus text
/// exposition format, and `PATHREP_OBS_LEDGER=<path>` drains the
/// numerical-health ledger as JSON Lines (this one works even when
/// `PATHREP_OBS` is unset). Export failures warn and continue — telemetry
/// never aborts a run.
pub fn report(label: &str) {
    // The ledger is gated on its own variable, not on `enabled()`:
    // accuracy diagnostics must not require the metrics report.
    if let Some(path) = config::ledger_path() {
        config::export_or_warn("ledger", &path, ledger::append_jsonl);
    }
    if !enabled() {
        return;
    }
    let snap = registry().snapshot();
    println!("\n── telemetry ({label}) ──");
    print!("{}", snap.render());
    if let Some(path) = config::json_path() {
        config::export_or_warn("snapshot", &path, |p| append_json_line(p, label, &snap));
    }
    if let Some(path) = config::trace_path() {
        config::export_or_warn("trace", &path, trace::write_chrome_trace);
    }
    if let Some(path) = config::prom_path() {
        config::export_or_warn("prometheus", &path, |p| prom::write_prometheus(p, &snap));
    }
    if profile::collecting() && profile::samples_taken() > 0 {
        match config::profile_path() {
            Some(path) => {
                println!(
                    "profile: {} folded-stack samples -> {path}",
                    profile::samples_taken()
                );
                config::export_or_warn("profile", &path, profile::write_folded);
            }
            None => {
                println!(
                    "profile: {} folded-stack samples",
                    profile::samples_taken()
                );
                print!("{}", profile::render_folded());
            }
        }
    }
}

fn append_json_line(path: &str, label: &str, snap: &Snapshot) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        file,
        "{{\"label\":{},\"snapshot\":{}}}",
        json::escape_string(label),
        snap.to_json()
    )
}

/// Opens a hierarchical timing span: `let _g = pathrep_obs::span!("name")`.
/// The guard records the span's duration when it leaves scope; bind it to
/// a named `_`-prefixed variable so it lives to the end of the block.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
}
