//! Chrome Trace Event Format export of span begin/end timestamps.
//!
//! When trace collection is on (see [`collecting`]), every [`crate::span!`]
//! guard records a begin event at entry and an end event at drop into a
//! bounded global buffer; [`render_chrome_trace`] serializes the buffer as a
//! Trace Event Format JSON array (`ph:"B"`/`ph:"E"` duration events)
//! loadable in `chrome://tracing` or Perfetto.
//!
//! Timestamps are monotonic nanoseconds since the trace epoch (the first
//! recorded event after process start or [`crate::reset`]), never
//! wall-clock, so traces are immune to clock adjustments and trivially
//! diffable across runs.
//!
//! The buffer is bounded ([`TRACE_CAPACITY`] events) so a pathological loop
//! cannot grow memory without limit. Saturation drops whole spans — a begin
//! event is only accepted when its matching end event is guaranteed a slot —
//! which keeps the exported stream balanced; dropped spans are counted and
//! surfaced through [`dropped_spans`].

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Cap on buffered trace events (begin + end both count). 2^16 events is
/// ~2 MiB and several minutes of dense instrumentation.
pub const TRACE_CAPACITY: usize = 1 << 16;

/// Phase of a trace event, mirroring the Trace Event Format `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `ph:"B"` — span entry.
    Begin,
    /// `ph:"E"` — span exit.
    End,
}

impl Phase {
    /// The Trace Event Format `ph` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
        }
    }
}

/// Cross-process trace correlation ids, propagated over the serve wire
/// protocol and stamped on every span event recorded while a
/// [`TraceContextGuard`] is live on the recording thread. `trace_id`
/// identifies one logical request end-to-end (client pick or
/// server-generated); `request_seq` is the client's own sequence number
/// within its run. Both render as Chrome-trace `args`, so a stitched
/// client+server trace can be filtered to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// End-to-end request id shared by client and server events.
    pub trace_id: u64,
    /// Request sequence number within the originating client.
    pub request_seq: u64,
}

thread_local! {
    /// Trace context active on this thread, if any.
    static TRACE_CTX: std::cell::Cell<Option<TraceContext>> =
        const { std::cell::Cell::new(None) };
}

/// RAII guard restoring the previous thread trace context on drop;
/// created by [`set_context`]. Nested guards compose.
#[derive(Debug)]
#[must_use = "the trace context is active only while the guard lives"]
pub struct TraceContextGuard {
    prev: Option<TraceContext>,
}

/// Installs `ctx` as this thread's trace context for the guard's
/// lifetime: span events recorded meanwhile carry it as Chrome-trace
/// `args`, and ledger records stamp it as `trace_id`/`request_seq` facts.
pub fn set_context(ctx: TraceContext) -> TraceContextGuard {
    TraceContextGuard {
        prev: TRACE_CTX.with(|c| c.replace(Some(ctx))),
    }
}

impl Drop for TraceContextGuard {
    fn drop(&mut self) {
        TRACE_CTX.with(|c| c.set(self.prev));
    }
}

/// The trace context currently active on this thread, if any.
pub fn current_context() -> Option<TraceContext> {
    TRACE_CTX.with(|c| c.get())
}

/// One recorded begin or end event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span leaf name (the argument to [`crate::span!`]).
    pub name: &'static str,
    /// Begin or end.
    pub phase: Phase,
    /// Monotonic nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Small sequential per-thread id (first traced thread = 0).
    pub tid: u64,
    /// Trace context active on the recording thread, if any.
    pub ctx: Option<TraceContext>,
}

struct TraceBuf {
    events: Vec<TraceEvent>,
    /// Open begin events whose end slot is reserved.
    reserved: usize,
    dropped_spans: u64,
}

fn buf() -> &'static Mutex<TraceBuf> {
    static BUF: OnceLock<Mutex<TraceBuf>> = OnceLock::new();
    BUF.get_or_init(|| {
        Mutex::new(TraceBuf {
            events: Vec::new(),
            reserved: 0,
            dropped_spans: 0,
        })
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the trace epoch (shared with the flight
/// recorder so flight dumps and traces line up on one time axis).
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Sentinel in [`TID_OVERRIDE`]: no pooled worker tid is active.
const NO_OVERRIDE: u64 = u64::MAX;

/// First tid of the pooled worker range — far above any realistic count of
/// sequentially numbered real threads, so the two ranges never collide.
const WORKER_TID_BASE: u64 = 1_000_000;

thread_local! {
    /// Pooled worker tid temporarily assigned to this thread, if any.
    static TID_OVERRIDE: std::cell::Cell<u64> = const { std::cell::Cell::new(NO_OVERRIDE) };
}

fn worker_tid_pool() -> &'static Mutex<Vec<u64>> {
    static POOL: OnceLock<Mutex<Vec<u64>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_WORKER_TID: AtomicU64 = AtomicU64::new(WORKER_TID_BASE);

/// RAII guard for a pooled worker trace tid; created by [`worker_tid`].
/// Dropping returns the id to the pool and restores the thread's previous
/// tid (nested guards compose).
#[derive(Debug)]
#[must_use = "the pooled tid is assigned only while the guard lives"]
pub struct WorkerTidGuard {
    tid: Option<u64>,
    prev: u64,
}

/// Assigns this thread a trace tid from the worker pool for the guard's
/// lifetime. Scoped worker pools spawn fresh OS threads per parallel
/// region; without pooling, each would burn a brand-new sequential tid and
/// a trace viewer would show thousands of one-shot rows. Pool ids start at
/// [`WORKER_TID_BASE`] and are reused, so all pool work lands on a small
/// stable set of rows. No-op when trace collection is off.
pub fn worker_tid() -> WorkerTidGuard {
    if !collecting() {
        return WorkerTidGuard {
            tid: None,
            prev: NO_OVERRIDE,
        };
    }
    let tid = worker_tid_pool()
        .lock()
        .pop()
        .unwrap_or_else(|| NEXT_WORKER_TID.fetch_add(1, Ordering::Relaxed));
    let prev = TID_OVERRIDE.with(|c| c.replace(tid));
    WorkerTidGuard {
        tid: Some(tid),
        prev,
    }
}

impl Drop for WorkerTidGuard {
    fn drop(&mut self) {
        if let Some(tid) = self.tid {
            TID_OVERRIDE.with(|c| c.set(self.prev));
            worker_tid_pool().lock().push(tid);
        }
    }
}

pub(crate) fn thread_id() -> u64 {
    let overridden = TID_OVERRIDE.with(|c| c.get());
    if overridden != NO_OVERRIDE {
        return overridden;
    }
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|&t| t)
}

/// 0 = undecided (read env on first query), 1 = off, 2 = on.
static COLLECTING: AtomicU8 = AtomicU8::new(0);

/// Whether span begin/end events are being buffered. The first call
/// resolves the `PATHREP_OBS_TRACE` environment variable (any non-empty
/// value enables collection); later calls are a single relaxed atomic load.
/// Note that spans only fire at all when [`crate::enabled`] is also true.
#[inline]
pub fn collecting() -> bool {
    match COLLECTING.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_collecting(),
    }
}

#[cold]
fn init_collecting() -> bool {
    let on = crate::config::trace_path().is_some();
    COLLECTING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatically enables or disables trace collection, overriding the
/// environment (used by tests and embedding applications).
pub fn set_collecting(on: bool) {
    COLLECTING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Records a begin event. Returns `true` when the event was buffered (the
/// caller must then emit the matching [`record_end`]), `false` when the
/// buffer is saturated and the whole span is dropped.
pub(crate) fn record_begin(name: &'static str) -> bool {
    let tid = thread_id();
    let mut g = buf().lock();
    // Accept only when the matching end event has a guaranteed slot, so the
    // exported stream always carries balanced B/E pairs.
    if g.events.len() + g.reserved + 2 > TRACE_CAPACITY {
        g.dropped_spans += 1;
        return false;
    }
    g.reserved += 1;
    // Timestamp under the lock: the buffer then stays globally sorted.
    let ts_ns = now_ns();
    g.events.push(TraceEvent {
        name,
        phase: Phase::Begin,
        ts_ns,
        tid,
        ctx: current_context(),
    });
    true
}

/// Records the end event for a begin previously accepted by
/// [`record_begin`]; its slot was reserved there.
pub(crate) fn record_end(name: &'static str) {
    let tid = thread_id();
    let mut g = buf().lock();
    g.reserved = g.reserved.saturating_sub(1);
    let ts_ns = now_ns();
    g.events.push(TraceEvent {
        name,
        phase: Phase::End,
        ts_ns,
        tid,
        ctx: current_context(),
    });
}

/// A copy of the buffered events, in record order (chronological; per
/// thread the B/E nesting is exactly the span nesting).
pub fn events() -> Vec<TraceEvent> {
    buf().lock().events.clone()
}

/// Number of spans dropped because the buffer was saturated.
pub fn dropped_spans() -> u64 {
    buf().lock().dropped_spans
}

/// Clears the buffer and the drop counter (spans still open keep their
/// reservation so their end events match nothing and are discarded by
/// viewers — acceptable for the reset-between-tests use case).
pub(crate) fn reset() {
    let mut g = buf().lock();
    g.events.clear();
    g.reserved = 0;
    g.dropped_spans = 0;
}

/// Renders `events` as a Trace Event Format JSON array. `pid` is the
/// process id stamped on every event.
pub fn render_chrome_trace(events: &[TraceEvent], pid: u32) -> String {
    let mut out = String::with_capacity(events.len() * 64 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `ts` is microseconds by convention; keep full nanosecond
        // precision in the fraction.
        let micros = e.ts_ns / 1_000;
        let frac = e.ts_ns % 1_000;
        let args = match e.ctx {
            Some(ctx) => format!(
                ",\"args\":{{\"trace_id\":{},\"request_seq\":{}}}",
                ctx.trace_id, ctx.request_seq
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "{{\"name\":{},\"ph\":\"{}\",\"ts\":{micros}.{frac:03},\"pid\":{pid},\"tid\":{}{args}}}",
            crate::json::escape_string(e.name),
            e.phase.as_str(),
            e.tid,
        ));
    }
    out.push(']');
    out
}

/// Writes the current buffer to `path` as Trace Event JSON.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    let evts = events();
    std::fs::write(path, render_chrome_trace(&evts, std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_escapes_and_orders() {
        let evts = [
            TraceEvent {
                name: "a",
                phase: Phase::Begin,
                ts_ns: 1_500,
                tid: 0,
                ctx: None,
            },
            TraceEvent {
                name: "a",
                phase: Phase::End,
                ts_ns: 2_000,
                tid: 0,
                ctx: None,
            },
        ];
        let json = render_chrome_trace(&evts, 42);
        assert_eq!(
            json,
            "[{\"name\":\"a\",\"ph\":\"B\",\"ts\":1.500,\"pid\":42,\"tid\":0},\
             {\"name\":\"a\",\"ph\":\"E\",\"ts\":2.000,\"pid\":42,\"tid\":0}]"
        );
    }

    #[test]
    fn render_stamps_trace_context_as_args() {
        let evts = [TraceEvent {
            name: "req",
            phase: Phase::Begin,
            ts_ns: 1_000,
            tid: 3,
            ctx: Some(TraceContext {
                trace_id: 77,
                request_seq: 5,
            }),
        }];
        let json = render_chrome_trace(&evts, 9);
        assert_eq!(
            json,
            "[{\"name\":\"req\",\"ph\":\"B\",\"ts\":1.000,\"pid\":9,\"tid\":3,\
             \"args\":{\"trace_id\":77,\"request_seq\":5}}]"
        );
    }

    #[test]
    fn context_guard_nests_and_restores() {
        assert_eq!(current_context(), None);
        {
            let _outer = set_context(TraceContext {
                trace_id: 1,
                request_seq: 0,
            });
            assert_eq!(current_context().map(|c| c.trace_id), Some(1));
            {
                let _inner = set_context(TraceContext {
                    trace_id: 2,
                    request_seq: 9,
                });
                assert_eq!(current_context().map(|c| c.trace_id), Some(2));
            }
            assert_eq!(current_context().map(|c| c.trace_id), Some(1));
        }
        assert_eq!(current_context(), None);
    }
}
