//! The work-accounting plane's plumbing: thread-local recording, the
//! flush points (span end, worker exit, snapshot), materialization as
//! `work.<kernel>.*` counters, and reset semantics.
//!
//! The registry is process-global, so every test serializes on one mutex
//! and resets before measuring.

use std::collections::BTreeMap;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn work_counters() -> BTreeMap<String, u64> {
    pathrep_obs::registry()
        .snapshot()
        .counters
        .iter()
        .filter(|c| c.name.starts_with("work."))
        .map(|c| (c.name.clone(), c.value))
        .collect()
}

#[test]
fn recorded_work_materializes_as_sorted_counters() {
    let _g = LOCK.lock().unwrap();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    pathrep_obs::work::record("matmul", 100, 80, 10);
    pathrep_obs::work::record("matmul", 50, 40, 5);
    pathrep_obs::work::record("qr_factor", 7, 8, 1);
    let snap = pathrep_obs::registry().snapshot();
    let work = work_counters();
    assert_eq!(work.get("work.matmul.flops"), Some(&150));
    assert_eq!(work.get("work.matmul.bytes"), Some(&120));
    assert_eq!(work.get("work.matmul.elements"), Some(&15));
    assert_eq!(work.get("work.qr_factor.flops"), Some(&7));
    // Work counters merge into the one sorted counter list — the contract
    // Prometheus export and the BENCH collector rely on.
    let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "snapshot counters must stay name-sorted");
}

#[test]
fn span_end_flushes_before_a_worker_thread_exits() {
    let _g = LOCK.lock().unwrap();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    // Record on a thread that dies before the snapshot: if the span-end
    // flush were missing, the tally would die with its thread-local.
    std::thread::spawn(|| {
        let _span = pathrep_obs::span!("worker_kernel");
        pathrep_obs::work::record("svd", 42, 16, 2);
    })
    .join()
    .unwrap();
    assert_eq!(work_counters().get("work.svd.flops"), Some(&42));
}

#[test]
fn disabled_runs_record_nothing() {
    let _g = LOCK.lock().unwrap();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    pathrep_obs::set_enabled(false);
    // Ledger is not collecting in this test process, so this must be a
    // no-op (the disabled-means-free rule).
    pathrep_obs::work::record("matmul", 1000, 1000, 1000);
    pathrep_obs::set_enabled(true);
    assert!(work_counters().is_empty(), "disabled record must not land");
}

#[test]
fn reset_clears_pending_tallies() {
    let _g = LOCK.lock().unwrap();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    pathrep_obs::work::record("cholesky", 9, 9, 9);
    pathrep_obs::reset(); // drops the pending tally before any flush
    assert!(work_counters().is_empty(), "reset must clear pending work");
}

#[test]
fn thread_tally_diff_isolates_one_invocation() {
    let _g = LOCK.lock().unwrap();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    pathrep_obs::work::record("svd", 10, 20, 3);
    let before = pathrep_obs::work::thread_tally("svd");
    pathrep_obs::work::record("svd", 5, 8, 1);
    let delta = pathrep_obs::work::thread_tally("svd").since(before);
    assert_eq!(
        (delta.flops, delta.bytes, delta.elements),
        (5, 8, 1),
        "the diff must see only the second record"
    );
    pathrep_obs::reset();
}

#[test]
fn selftime_profile_of_nested_spans() {
    let _g = LOCK.lock().unwrap();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    {
        let _outer = pathrep_obs::span!("outer_stage");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let _inner = pathrep_obs::span!("inner_kernel");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let snap = pathrep_obs::registry().snapshot();
    let prof = pathrep_obs::selftime::profile(&snap);
    let outer = prof
        .iter()
        .find(|e| e.path == "outer_stage")
        .expect("outer span profiled");
    let inner = prof
        .iter()
        .find(|e| e.path == "outer_stage/inner_kernel")
        .expect("inner span profiled");
    assert_eq!(inner.self_ns, inner.total_ns, "leaves keep their full time");
    assert_eq!(
        outer.self_ns,
        outer.total_ns - inner.total_ns,
        "parent self-time excludes the child"
    );
    assert!(outer.total_ns >= inner.total_ns);
    pathrep_obs::reset();
}
