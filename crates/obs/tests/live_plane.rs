//! Integration tests for the live telemetry plane: the HTTP scrape
//! endpoints, HDR histograms through the registry, the new Prometheus
//! families, and the `HistogramSnapshot::quantile` edge cases.

use pathrep_obs::{HdrHistogram, HistogramSnapshot, Snapshot};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Serializes tests that mutate the global registry/enabled flag.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Minimal HTTP/1.1 GET, returning (status, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs http");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn http_plane_serves_live_registry() {
    let _g = lock();
    pathrep_obs::reset();
    pathrep_obs::set_enabled(true);
    let server = pathrep_obs::http::start("127.0.0.1:0").expect("bind ephemeral");

    pathrep_obs::counter_add("live.scrape.hits", 3);
    pathrep_obs::histogram_record_hdr("live.request_ns", 125_000.0);

    let (status, body) = http_get(server.addr(), "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // /metrics reflects the registry *now*, without any report() call.
    let (status, metrics) = http_get(server.addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("pathrep_live_scrape_hits 3\n"), "{metrics}");
    assert!(metrics.contains("# TYPE pathrep_live_request_ns histogram"));
    assert!(metrics.contains("pathrep_live_request_ns_max 125000\n"));
    assert!(metrics.contains("pathrep_events_dropped_total 0\n"));

    let (status, json) = http_get(server.addr(), "/snapshot.json");
    assert_eq!(status, 200);
    let snap = Snapshot::from_json(&json).expect("snapshot.json parses");
    assert_eq!(snap.counters[0].name, "live.scrape.hits");
    assert_eq!(snap.counters[0].value, 3);

    // A mid-run scrape mutated nothing: a second scrape is identical.
    let (_, metrics2) = http_get(server.addr(), "/metrics");
    assert_eq!(metrics, metrics2, "scrapes must be read-only");

    assert_eq!(http_get(server.addr(), "/nope").0, 404);

    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
}

#[test]
fn concurrent_scrapes_during_hdr_recording_are_never_torn() {
    let _g = lock();
    pathrep_obs::reset();
    pathrep_obs::set_enabled(true);
    let server = pathrep_obs::http::start("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.addr();

    // Writer: hammer an HDR histogram + a counter while scrapers read.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut written = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                pathrep_obs::histogram_record_hdr(
                    "scrape.race_ns",
                    ((written % 1000) * 1_000 + 500) as f64,
                );
                pathrep_obs::counter_add("scrape.race.writes", 1);
                written += 1;
            }
            written
        })
    };

    // Scraper A: /metrics. Each scrape must be internally consistent —
    // cumulative buckets monotone, +Inf bucket == _count — and counts
    // must never go backwards between scrapes.
    let prom_scraper = std::thread::spawn(move || {
        let mut last_count = 0u64;
        for _ in 0..25 {
            let (status, body) = http_get(addr, "/metrics");
            assert_eq!(status, 200);
            let buckets: Vec<u64> = body
                .lines()
                .filter(|l| l.starts_with("pathrep_scrape_race_ns_bucket{"))
                .map(|l| {
                    l.rsplit(' ')
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("torn bucket line: {l}"))
                })
                .collect();
            for w in buckets.windows(2) {
                assert!(w[0] <= w[1], "non-monotone cumulative buckets: {buckets:?}");
            }
            let count: Option<u64> = body
                .lines()
                .find(|l| l.starts_with("pathrep_scrape_race_ns_count "))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok());
            if let (Some(count), Some(last)) = (count, buckets.last()) {
                assert_eq!(*last, count, "+Inf bucket must equal _count");
                assert!(count >= last_count, "count went backwards");
                last_count = count;
            }
        }
    });

    // Scraper B: /snapshot.json must always parse (never a half-written
    // document) and its bucket counts must sum to the histogram count.
    let json_scraper = std::thread::spawn(move || {
        for _ in 0..25 {
            let (status, json) = http_get(addr, "/snapshot.json");
            assert_eq!(status, 200);
            let snap = Snapshot::from_json(&json).expect("snapshot.json parses mid-write");
            if let Some(h) = snap.histograms.iter().find(|h| h.name == "scrape.race_ns") {
                assert_eq!(
                    h.counts.iter().sum::<u64>(),
                    h.count,
                    "bucket counts must sum to the observation count"
                );
            }
        }
    });

    prom_scraper.join().expect("prom scraper panicked");
    json_scraper.join().expect("json scraper panicked");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let written = writer.join().expect("writer panicked");
    assert!(written > 0, "writer made progress during the scrapes");

    // Quiesced: the final scrape agrees exactly with what was written.
    let (_, body) = http_get(addr, "/metrics");
    assert!(
        body.contains(&format!("pathrep_scrape_race_writes {written}\n")),
        "final counter must equal total writes ({written})"
    );
    pathrep_obs::reset();
}

#[test]
fn hdr_histograms_flow_through_registry_and_prom() {
    let _g = lock();
    pathrep_obs::reset();
    pathrep_obs::set_enabled(true);
    for i in 1..=1000u64 {
        pathrep_obs::histogram_record_hdr("serve.request_ns", (i * 1_000) as f64);
    }
    let snap = pathrep_obs::registry().snapshot();
    let h = snap
        .histograms
        .iter()
        .find(|h| h.name == "serve.request_ns")
        .expect("hdr histogram in snapshot");
    assert_eq!(h.count, 1000);
    assert_eq!(h.min, 1_000.0);
    assert_eq!(h.max, 1_000_000.0);
    // p999 of 1k..=1M by 1k is 999_000; HDR must land within ~3 %.
    let p999 = h.quantile(0.999);
    assert!((p999 - 999_000.0).abs() / 999_000.0 < 0.032, "p999 = {p999}");
    // The JSON round trip preserves the materialized HDR buckets.
    let rt = Snapshot::from_json(&snap.to_json()).expect("round trip");
    let rh = rt
        .histograms
        .iter()
        .find(|h| h.name == "serve.request_ns")
        .unwrap();
    assert_eq!(rh.counts, h.counts);

    let prom = pathrep_obs::prom::render_prometheus(&snap);
    assert!(prom.contains("# TYPE pathrep_serve_request_ns histogram"));
    assert!(prom.contains("pathrep_serve_request_ns_count 1000\n"));
    assert!(prom.contains("# TYPE pathrep_serve_request_ns_min gauge"));
    assert!(prom.contains("pathrep_serve_request_ns_min 1000\n"));
    assert!(prom.contains("pathrep_serve_request_ns_max 1000000\n"));
    pathrep_obs::reset();
}

#[test]
fn quantile_edge_cases_are_exact() {
    // Empty histogram: every quantile is 0.
    let empty = HdrHistogram::new().snapshot("e");
    assert_eq!(empty.quantile(0.0), 0.0);
    assert_eq!(empty.quantile(0.5), 0.0);
    assert_eq!(empty.quantile(1.0), 0.0);

    // Single value: every quantile is that value, not an interpolation
    // across its bucket.
    let mut one = HdrHistogram::new();
    one.record(42.0);
    let s = one.snapshot("one");
    for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
        assert_eq!(s.quantile(q), 42.0, "q = {q}");
    }

    // q=0 / q=1 are the exact observed extremes.
    let mut h = HdrHistogram::new();
    for v in [3.0, 7.0, 11.0, 200.0] {
        h.record(v);
    }
    let s = h.snapshot("h");
    assert_eq!(s.quantile(0.0), 3.0);
    assert_eq!(s.quantile(1.0), 200.0);

    // Overflow bucket: an outlier max must not skew quantiles landing
    // above the last finite edge. With edges up to 10, the p90 target
    // rank lands in the overflow bucket; the old interpolation dragged it
    // toward max (≈ 1e9), the fix pins it at the bucket's lower bound.
    let fixed = HistogramSnapshot {
        name: "overflow".into(),
        edges: vec![1.0, 10.0],
        counts: vec![0, 5, 5],
        count: 10,
        sum: 5.0 * 5.0 + 4.0 * 11.0 + 1e9,
        min: 2.0,
        max: 1e9,
    };
    let p90 = fixed.quantile(0.90);
    assert_eq!(p90, 10.0, "overflow quantile must clamp to the last edge");
    assert_eq!(fixed.quantile(1.0), 1e9);

    // Constant-valued histogram: quantiles are the constant.
    let mut flat = HdrHistogram::new();
    for _ in 0..100 {
        flat.record(5.0);
    }
    assert_eq!(flat.snapshot("flat").quantile(0.73), 5.0);
}
