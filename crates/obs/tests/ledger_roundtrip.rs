//! End-to-end checks of the numerical-health ledger: records survive a
//! render/parse round trip with their schema version, `report()` drains
//! the buffer to the `PATHREP_OBS_LEDGER` path even when `PATHREP_OBS`
//! collection is off, and the buffer is bounded.

use pathrep_obs::ledger;
use std::sync::Mutex;

/// The registry, ledger buffer and env vars are process-global; serialize
/// the tests in this binary.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn run_context_stamps_records_and_round_trips() {
    let _g = lock();
    pathrep_obs::reset();
    ledger::set_collecting(true);
    ledger::set_run_context("itest", 42);
    ledger::record("linalg", "svd", |f| {
        f.num("cond", 10.0).nums("spectrum_head", &[3.0, 1.5, 0.1]);
    });
    ledger::record("core", "approx_select", |f| {
        f.int("rank", 7).flag("accepted", true);
    });

    let records = ledger::records();
    assert_eq!(records.len(), 3, "run_context meta record plus two stages");
    assert!(records.iter().all(|r| r.seq < 3));
    assert!(records[1].run.ends_with("-itest"));
    assert_eq!(records[1].seed, Some(42));
    assert_eq!(records[0].stage, "meta");
    assert_eq!(records[2].num("rank"), Some(7.0));

    let text = ledger::render_jsonl(&records);
    assert!(text.contains("\"schema_version\":1"));
    let parsed = ledger::parse_jsonl(&text).expect("round trip");
    assert_eq!(parsed, records);

    ledger::set_collecting(false);
    pathrep_obs::reset();
}

#[test]
fn report_writes_ledger_even_with_obs_collection_off() {
    let _g = lock();
    pathrep_obs::reset();
    pathrep_obs::set_enabled(false);
    ledger::set_collecting(true);
    ledger::record("eval", "mc_evaluate", |f| {
        f.num("e1", 0.01).num("e2", 0.002);
    });

    let path = std::env::temp_dir().join(format!("pathrep_ledger_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("PATHREP_OBS_LEDGER", &path);
    pathrep_obs::report("ledger_itest");
    std::env::remove_var("PATHREP_OBS_LEDGER");

    let text = std::fs::read_to_string(&path).expect("report wrote the ledger");
    let parsed = ledger::parse_jsonl(&text).expect("parseable");
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].stage, "eval");
    assert_eq!(parsed[0].num("e1"), Some(0.01));
    // The buffer was drained: a second report appends nothing.
    pathrep_obs::report("ledger_itest");
    assert!(ledger::records().is_empty());

    let _ = std::fs::remove_file(&path);
    ledger::set_collecting(false);
    pathrep_obs::reset();
}

#[test]
fn records_are_dropped_not_grown_past_capacity() {
    let _g = lock();
    pathrep_obs::reset();
    ledger::set_collecting(true);
    for _ in 0..(ledger::LEDGER_CAPACITY + 10) {
        ledger::record("core", "exact_select", |f| {
            f.int("rank", 1);
        });
    }
    assert_eq!(ledger::records().len(), ledger::LEDGER_CAPACITY);
    assert_eq!(ledger::dropped_records(), 10);
    ledger::set_collecting(false);
    pathrep_obs::reset();
    assert_eq!(ledger::dropped_records(), 0);
}

#[test]
fn disabled_collection_records_nothing() {
    let _g = lock();
    pathrep_obs::reset();
    ledger::set_collecting(false);
    ledger::record("ssta", "extract", |f| {
        f.int("paths", 5);
    });
    ledger::set_run_context("ignored", 7);
    assert!(ledger::records().is_empty());
}
