//! Integration tests for the telemetry substrate.
//!
//! The registry and the enabled flag are process-global, and the default
//! test harness runs tests on parallel threads — every test serializes on
//! [`guard`] and resets the registry before recording.

use pathrep_obs::Snapshot;
use std::time::Duration;

fn guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn span_nesting_builds_tree_with_monotone_timing() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    {
        let _outer = pathrep_obs::span!("outer");
        std::thread::sleep(Duration::from_millis(2));
        {
            let _inner = pathrep_obs::span!("inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _inner = pathrep_obs::span!("inner");
        }
    }
    let snap = pathrep_obs::registry().snapshot();
    assert_eq!(snap.spans.len(), 1, "one root span");
    let outer = &snap.spans[0];
    assert_eq!(outer.name, "outer");
    assert_eq!(outer.path, "outer");
    assert_eq!(outer.count, 1);
    assert_eq!(outer.children.len(), 1);
    let inner = &outer.children[0];
    assert_eq!(inner.name, "inner");
    assert_eq!(inner.path, "outer/inner");
    assert_eq!(inner.count, 2);
    // Timing monotonicity: the parent encloses both child executions, the
    // aggregate bounds order correctly, and nothing is zero.
    assert!(outer.total_ns >= inner.total_ns);
    assert!(inner.min_ns <= inner.max_ns);
    assert!(inner.total_ns >= u128::from(inner.max_ns));
    assert!(inner.total_ns <= u128::from(inner.min_ns) + u128::from(inner.max_ns));
    assert!(outer.total_ns > 0);
}

#[test]
fn sibling_spans_do_not_nest() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    {
        let _a = pathrep_obs::span!("first");
    }
    {
        let _b = pathrep_obs::span!("second");
    }
    let snap = pathrep_obs::registry().snapshot();
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["first", "second"]);
    assert!(snap.spans.iter().all(|s| s.children.is_empty()));
}

#[test]
fn counters_accumulate_atomically_across_threads() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 1_000;
    crossbeam::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|_| {
                for _ in 0..PER_THREAD {
                    pathrep_obs::counter_add("test.concurrent", 1);
                }
            });
        }
    })
    .expect("no worker panics");
    let snap = pathrep_obs::registry().snapshot();
    let c = snap
        .counters
        .iter()
        .find(|c| c.name == "test.concurrent")
        .expect("counter recorded");
    assert_eq!(c.value, THREADS as u64 * PER_THREAD, "no lost increments");
}

#[test]
fn histogram_buckets_split_on_inclusive_upper_edges() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    let edges = [1.0, 2.0, 4.0];
    // Bucket i counts values ≤ edges[i]; edge values land in their own
    // bucket, values above the last edge overflow.
    for v in [0.5, 1.0, 1.5, 2.0, 3.0, 5.0] {
        pathrep_obs::histogram_record_with("test.hist", &edges, v);
    }
    let snap = pathrep_obs::registry().snapshot();
    let h = snap
        .histograms
        .iter()
        .find(|h| h.name == "test.hist")
        .expect("histogram recorded");
    assert_eq!(h.edges, edges);
    assert_eq!(h.counts, [2, 2, 1, 1]);
    assert_eq!(h.count, 6);
    assert_eq!(h.min, 0.5);
    assert_eq!(h.max, 5.0);
    assert!((h.sum - 13.0).abs() < 1e-12);
}

#[test]
fn default_histogram_edges_are_decades() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    pathrep_obs::histogram_record("test.default", 1e-7);
    let snap = pathrep_obs::registry().snapshot();
    let h = &snap.histograms[0];
    assert_eq!(h.edges.len(), 16, "decades 1e-12 ..= 1e3");
    assert_eq!(h.counts.len(), 17);
    // 1e-7 ≤ 1e-7 lands exactly on the 1e-7 edge (index 5).
    assert_eq!(h.counts[5], 1);
    assert_eq!(h.counts.iter().sum::<u64>(), 1);
}

#[test]
fn json_snapshot_round_trips_exactly() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    {
        let _a = pathrep_obs::span!("alpha");
        let _b = pathrep_obs::span!("beta");
    }
    pathrep_obs::counter_add("c.one", 7);
    pathrep_obs::gauge_set("g.pi", std::f64::consts::PI);
    pathrep_obs::gauge_set("g.tiny", -2.5e-7);
    pathrep_obs::histogram_record("h.resid", 1e-7);
    pathrep_obs::warn("w.unconverged", || "π \"quoted\"\nsecond line\t".to_owned());
    pathrep_obs::info("i.note", || "plain".to_owned());
    let snap = pathrep_obs::registry().snapshot();
    let back = Snapshot::from_json(&snap.to_json()).expect("well-formed JSON");
    assert_eq!(back, snap, "JSON round-trip must be lossless");
    // The text rendering carries every section.
    let text = snap.render();
    for section in ["spans:", "counters:", "gauges:", "histograms:", "events:"] {
        assert!(text.contains(section), "missing `{section}` in:\n{text}");
    }
}

#[test]
fn event_cap_counts_drops() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    for i in 0..pathrep_obs::MAX_EVENTS + 5 {
        pathrep_obs::info("e.flood", || format!("event {i}"));
    }
    let snap = pathrep_obs::registry().snapshot();
    assert_eq!(snap.events.len(), pathrep_obs::MAX_EVENTS);
    assert_eq!(snap.events_dropped, 5);
}

#[test]
fn disabled_collection_records_nothing() {
    let _l = guard();
    pathrep_obs::set_enabled(false);
    pathrep_obs::reset();
    {
        let _s = pathrep_obs::span!("ghost");
        pathrep_obs::counter_add("ghost.counter", 3);
        pathrep_obs::gauge_set("ghost.gauge", 1.0);
        pathrep_obs::histogram_record("ghost.hist", 0.5);
        pathrep_obs::warn("ghost.warn", || unreachable!("message must not be built"));
    }
    let snap = pathrep_obs::registry().snapshot();
    assert!(snap.spans.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.events.is_empty());
    pathrep_obs::set_enabled(true); // leave the flag predictable for peers
}
