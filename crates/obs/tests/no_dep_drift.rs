//! Guards the crate's founding constraints: pathrep-obs must stay
//! dependency-free (std plus the vendored `parking_lot`/`serde` shims
//! only) and fully documented, so it can never pull the offline build
//! toward crates.io or grow an undocumented surface.

use std::collections::BTreeSet;
use std::path::Path;

/// Returns the dependency names listed under `[section]` in `manifest`.
fn section_deps(manifest: &str, section: &str) -> BTreeSet<String> {
    let mut deps = BTreeSet::new();
    let mut in_section = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(header) = line.strip_prefix('[') {
            in_section = header.trim_end_matches(']') == section;
            continue;
        }
        if in_section && !line.is_empty() && !line.starts_with('#') {
            if let Some((key, _)) = line.split_once('=') {
                // `serde.workspace = true` and `serde = { … }` both name
                // the dependency in the first dotted segment.
                let name = key.trim().split('.').next().unwrap_or_default();
                deps.insert(name.to_owned());
            }
        }
    }
    deps
}

#[test]
fn dependencies_stay_within_the_vendored_set() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifest = std::fs::read_to_string(manifest_dir.join("Cargo.toml"))
        .expect("crate manifest is readable");

    let allowed: BTreeSet<String> =
        ["parking_lot", "serde"].map(str::to_owned).into();
    let deps = section_deps(&manifest, "dependencies");
    let drift: Vec<_> = deps.difference(&allowed).collect();
    assert!(
        drift.is_empty(),
        "pathrep-obs gained non-vendored dependencies: {drift:?} \
         (allowed: {allowed:?})"
    );

    let allowed_dev: BTreeSet<String> = ["crossbeam"].map(str::to_owned).into();
    let dev_deps = section_deps(&manifest, "dev-dependencies");
    let dev_drift: Vec<_> = dev_deps.difference(&allowed_dev).collect();
    assert!(
        dev_drift.is_empty(),
        "pathrep-obs gained non-vendored dev-dependencies: {dev_drift:?}"
    );

    // Every dependency must resolve through workspace path shims, never a
    // version requirement that would reach for crates.io.
    for name in deps.iter().chain(dev_deps.iter()) {
        let line = manifest
            .lines()
            .map(str::trim)
            .find(|l| {
                l.split_once('=').is_some_and(|(k, _)| {
                    k.trim().split('.').next() == Some(name.as_str())
                })
            })
            .expect("dependency line exists");
        assert!(
            line.contains("workspace = true") || line.contains("path"),
            "`{line}` must inherit the vendored workspace entry"
        );
    }
}

/// Every source module — including the export backends added after the
/// crate's founding (`trace.rs`, `prom.rs`) — must only `use` std and the
/// vendored shims, never a crates-io crate root. This catches drift that
/// never reaches Cargo.toml, e.g. a `serde_json::` call that would only
/// fail once someone adds the dependency.
#[test]
fn source_modules_stay_on_the_vendored_set() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let allowed_roots = [
        "std", "core", "alloc", "crate", "self", "super",
        // The vendored shims.
        "parking_lot", "serde",
    ];
    let mut checked = 0;
    for entry in std::fs::read_dir(&src).expect("src/ is readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        checked += 1;
        let text = std::fs::read_to_string(&path).expect("module is readable");
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            let Some(rest) = trimmed.strip_prefix("use ") else {
                continue;
            };
            let root: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            assert!(
                allowed_roots.contains(&root.as_str()),
                "{}:{}: `use {root}…` reaches outside the vendored set \
                 (allowed roots: {allowed_roots:?})",
                path.display(),
                lineno + 1,
            );
        }
    }
    // The crate is lib.rs + config/json/ledger/prom/registry/snapshot/
    // span/trace.
    assert!(
        checked >= 9,
        "expected at least 9 source modules, scanned {checked} — \
         did the export backends move?"
    );
}

/// Every `PATHREP_OBS*` environment variable the crate recognizes must be
/// (a) registered in `config::ALL_ENV_VARS` and (b) documented in the
/// repository README, so new export knobs cannot ship silently.
#[test]
fn env_vars_are_registered_and_documented() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut seen = BTreeSet::new();
    for entry in std::fs::read_dir(&src).expect("src/ is readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("module is readable");
        let bytes = text.as_bytes();
        let mut i = 0;
        while let Some(off) = text[i..].find("PATHREP_OBS") {
            let start = i + off;
            let mut end = start;
            while end < bytes.len()
                && (bytes[end].is_ascii_uppercase() || bytes[end] == b'_')
            {
                end += 1;
            }
            seen.insert(text[start..end].trim_end_matches('_').to_owned());
            i = end;
        }
    }
    assert!(
        seen.contains("PATHREP_OBS_LEDGER"),
        "ledger env var disappeared from the sources"
    );

    let registered: BTreeSet<String> = pathrep_obs::config::ALL_ENV_VARS
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let unregistered: Vec<_> = seen.difference(&registered).collect();
    assert!(
        unregistered.is_empty(),
        "env vars referenced in sources but missing from config::ALL_ENV_VARS: \
         {unregistered:?}"
    );

    let readme_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/obs sits two levels below the repo root")
        .join("README.md");
    let readme = std::fs::read_to_string(&readme_path).expect("README.md is readable");
    for var in pathrep_obs::config::ALL_ENV_VARS {
        assert!(
            readme.contains(var),
            "`{var}` is recognized by pathrep-obs but undocumented in README.md"
        );
    }
}

#[test]
fn public_surface_denies_missing_docs() {
    let lib = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("src/lib.rs"),
    )
    .expect("lib.rs is readable");
    assert!(
        lib.contains("#![deny(missing_docs)]"),
        "crates/obs/src/lib.rs must keep `#![deny(missing_docs)]`"
    );
}
