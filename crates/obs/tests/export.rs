//! Integration tests for the export backends: Prometheus text exposition
//! and Chrome Trace Event JSON.
//!
//! Like `telemetry.rs`, every test serializes on [`guard`] because the
//! registry, the enabled flag and the trace buffer are process-global.

use pathrep_obs::trace::{Phase, TraceEvent};
use std::collections::BTreeMap;
use std::collections::HashMap;

fn guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Prometheus text exposition format
// ---------------------------------------------------------------------

/// One parsed sample line: name, sorted labels, value.
#[derive(Debug, PartialEq)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

/// A minimal hand parser for the exposition format: validates the syntax
/// the exporter is allowed to emit and returns (`# TYPE` map, samples).
fn parse_exposition(text: &str) -> (BTreeMap<String, String>, Vec<Sample>) {
    let name_ok = |s: &str| {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    };
    let mut types = BTreeMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
            assert!(name_ok(name), "bad metric name in TYPE: {name:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped"),
                "bad metric kind {kind:?}"
            );
            assert!(
                types.insert(name.to_owned(), kind.to_owned()).is_none(),
                "duplicate TYPE for {name}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "only TYPE comments expected: {line}");
        // name[{labels}] value
        let (head, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().unwrap_or_else(|_| panic!("bad value {v:?}")),
        };
        let (name, labels) = match head.split_once('{') {
            None => (head.to_owned(), BTreeMap::new()),
            Some((n, rest)) => {
                let body = rest.strip_suffix('}').expect("labels close with `}`");
                let mut labels = BTreeMap::new();
                for pair in body.split("\",") {
                    let pair = pair.strip_suffix('"').unwrap_or(pair);
                    let (k, v) = pair.split_once("=\"").expect("label is k=\"v\"");
                    assert!(name_ok(k), "bad label name {k:?}");
                    labels.insert(k.to_owned(), v.to_owned());
                }
                (n.to_owned(), labels)
            }
        };
        assert!(name_ok(&name), "bad sample name {name:?}");
        samples.push(Sample { name, labels, value });
    }
    (types, samples)
}

#[test]
fn prometheus_round_trips_a_synthetic_snapshot() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    {
        let _outer = pathrep_obs::span!("stage");
        let _inner = pathrep_obs::span!("kernel");
    }
    pathrep_obs::counter_add("linalg.svd.qr_sweeps", 42);
    pathrep_obs::gauge_set("eval.pipeline.target_paths", 137.0);
    let edges = [1.0, 2.0, 4.0];
    for v in [0.5, 1.5, 1.5, 3.0, 9.0] {
        pathrep_obs::histogram_record_with("convopt.admm.residual", &edges, v);
    }
    let snap = pathrep_obs::registry().snapshot();
    let text = pathrep_obs::prom::render_prometheus(&snap);
    let (types, samples) = parse_exposition(&text);

    assert_eq!(
        types.get("pathrep_linalg_svd_qr_sweeps").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        types.get("pathrep_eval_pipeline_target_paths").map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        types.get("pathrep_convopt_admm_residual").map(String::as_str),
        Some("histogram")
    );

    let by_name = |n: &str| -> Vec<&Sample> { samples.iter().filter(|s| s.name == n).collect() };
    assert_eq!(by_name("pathrep_linalg_svd_qr_sweeps")[0].value, 42.0);
    assert_eq!(by_name("pathrep_eval_pipeline_target_paths")[0].value, 137.0);

    // Histogram: cumulative buckets with `le` labels from the edges, then
    // the +Inf bucket equal to _count.
    let buckets = by_name("pathrep_convopt_admm_residual_bucket");
    assert_eq!(buckets.len(), 4);
    let le = |s: &Sample| s.labels.get("le").cloned().expect("bucket has le");
    assert_eq!(
        buckets.iter().map(|s| le(s)).collect::<Vec<_>>(),
        ["1", "2", "4", "+Inf"]
    );
    assert_eq!(
        buckets.iter().map(|s| s.value).collect::<Vec<_>>(),
        [1.0, 3.0, 4.0, 5.0],
        "buckets must be cumulative"
    );
    assert_eq!(by_name("pathrep_convopt_admm_residual_count")[0].value, 5.0);
    assert!((by_name("pathrep_convopt_admm_residual_sum")[0].value - 15.5).abs() < 1e-12);

    // Spans appear as labelled counters for both recorded paths.
    let calls = by_name("pathrep_span_calls_total");
    let paths: Vec<String> = calls
        .iter()
        .map(|s| s.labels.get("path").cloned().unwrap())
        .collect();
    assert_eq!(paths, ["stage", "stage/kernel"]);

    // Every sample's family is typed.
    for s in &samples {
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| s.name.strip_suffix(suf))
            .filter(|base| types.contains_key(*base))
            .unwrap_or(&s.name);
        assert!(types.contains_key(family), "untyped family for {}", s.name);
    }
}

#[test]
fn histogram_quantiles_interpolate_within_buckets() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    let edges = [10.0, 20.0, 40.0];
    // 10 values ≤ 10 (exactly 2..=10 step…): use uniform fill per bucket.
    for _ in 0..10 {
        pathrep_obs::histogram_record_with("q.hist", &edges, 5.0);
    }
    for _ in 0..10 {
        pathrep_obs::histogram_record_with("q.hist", &edges, 15.0);
    }
    let snap = pathrep_obs::registry().snapshot();
    let h = snap.histograms.iter().find(|h| h.name == "q.hist").unwrap();
    // p50 sits exactly at the first bucket's upper boundary (10 of 20
    // observations ≤ min(edge 10, max 15) interpolates to the bucket top).
    let p50 = h.quantile(0.50);
    assert!((p50 - 10.0).abs() < 1e-9, "p50 = {p50}");
    // p100 clamps to the observed max, p0 to ≥ min.
    assert_eq!(h.quantile(1.0), 15.0);
    assert!(h.quantile(0.0) >= 5.0 - 1e-9);
    // Quantiles are monotone in q.
    let qs: Vec<f64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        .iter()
        .map(|&q| h.quantile(q))
        .collect();
    assert!(qs.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{qs:?}");
    // The rendered report carries the quantile columns.
    let text = snap.render();
    assert!(text.contains("p50="), "missing p50 in:\n{text}");
    assert!(text.contains("p99="), "missing p99 in:\n{text}");
}

#[test]
fn dropped_events_are_loud_in_the_text_report() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    for i in 0..pathrep_obs::MAX_EVENTS + 9 {
        pathrep_obs::info("e.flood", || format!("event {i}"));
    }
    let snap = pathrep_obs::registry().snapshot();
    let text = snap.render();
    assert!(text.contains("events_dropped: 9"), "missing count in:\n{text}");
    assert!(
        text.contains("[warn] obs.events.dropped"),
        "missing warn summary in:\n{text}"
    );
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

/// Asserts every `tid`'s event stream is a balanced, properly nested B/E
/// sequence with non-decreasing timestamps, and returns the span names
/// seen.
fn check_balanced(events: &[TraceEvent]) -> Vec<&'static str> {
    let mut stacks: HashMap<u64, Vec<&'static str>> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    let mut names = Vec::new();
    for e in events {
        let prev = last_ts.entry(e.tid).or_insert(0);
        assert!(e.ts_ns >= *prev, "timestamps regress on tid {}", e.tid);
        *prev = e.ts_ns;
        let stack = stacks.entry(e.tid).or_default();
        match e.phase {
            Phase::Begin => {
                stack.push(e.name);
                names.push(e.name);
            }
            Phase::End => {
                let open = stack.pop().expect("E without open B");
                assert_eq!(open, e.name, "mismatched B/E pair");
            }
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unbalanced spans on tid {tid}: {stack:?}");
    }
    names
}

#[test]
fn trace_export_is_balanced_under_nested_and_threaded_spans() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    pathrep_obs::trace::set_collecting(true);
    {
        let _outer = pathrep_obs::span!("outer");
        {
            let _inner = pathrep_obs::span!("inner");
        }
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    let _w = pathrep_obs::span!("worker");
                    let _k = pathrep_obs::span!("kernel");
                });
            }
        })
        .expect("no worker panics");
    }
    let events = pathrep_obs::trace::events();
    pathrep_obs::trace::set_collecting(false);
    let names = check_balanced(&events);
    assert_eq!(events.len(), 2 * names.len());
    assert_eq!(names.iter().filter(|&&n| n == "outer").count(), 1);
    assert_eq!(names.iter().filter(|&&n| n == "inner").count(), 1);
    assert_eq!(names.iter().filter(|&&n| n == "worker").count(), 4);
    assert_eq!(names.iter().filter(|&&n| n == "kernel").count(), 4);
    // More than one thread contributed.
    let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    assert!(tids.len() >= 2, "expected multiple tids, got {tids:?}");

    // The JSON rendering is a well-formed Trace Event array whose entries
    // carry exactly the expected fields.
    let json = pathrep_obs::trace::render_chrome_trace(&events, 7);
    let v = pathrep_obs::json::parse(&json).expect("valid JSON");
    let items = v.array().expect("top-level array");
    assert_eq!(items.len(), events.len());
    let mut prev_ts = f64::NEG_INFINITY;
    for item in items {
        let ph = item.field("ph").unwrap().string().unwrap();
        assert!(ph == "B" || ph == "E");
        assert!(!item.field("name").unwrap().string().unwrap().is_empty());
        assert_eq!(item.field("pid").unwrap().number().unwrap(), 7.0);
        let ts = item.field("ts").unwrap().number().unwrap();
        assert!(ts >= prev_ts, "render must preserve chronological order");
        prev_ts = ts;
        item.field("tid").unwrap().number().unwrap();
    }
}

#[test]
fn trace_buffer_saturation_drops_whole_spans() {
    let _l = guard();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    pathrep_obs::trace::set_collecting(true);
    for _ in 0..pathrep_obs::trace::TRACE_CAPACITY {
        let _s = pathrep_obs::span!("flood");
    }
    let events = pathrep_obs::trace::events();
    assert!(events.len() <= pathrep_obs::trace::TRACE_CAPACITY);
    assert!(pathrep_obs::trace::dropped_spans() > 0);
    check_balanced(&events);
    pathrep_obs::trace::set_collecting(false);
    pathrep_obs::reset();
    assert_eq!(pathrep_obs::trace::dropped_spans(), 0, "reset clears drops");
}
