//! The batching prediction daemon.
//!
//! Architecture (all std::net + OS threads; the numeric fan-out reuses the
//! `pathrep-par` pool inside [`MeasurementPredictor::predict_batch`]):
//!
//! ```text
//! accept loop ──> one handler thread per connection ──┐ push (blocks when full)
//!                                                     v
//!                        bounded micro-batch queue (Mutex + Condvar)
//!                                                     │ drain ≤ batch_max,
//!                                                     v grouped by model id
//!                        batcher thread ── predict_batch ── per-request reply slots
//! ```
//!
//! **Determinism.** The batcher may coalesce any subset of concurrent
//! requests, but `predict_batch` computes every output row by exactly the
//! floating-point sequence of a solo `predict` call, so each client's
//! answer is bit-identical regardless of which requests happened to share
//! a kernel invocation. `PredictBatch` enqueues one pending row per
//! measurement vector — structurally the same as that many concurrent
//! `Predict`s — so the two paths cannot diverge.
//!
//! **Backpressure.** The queue is bounded (`queue_cap`); handler threads
//! block on a condvar until the batcher drains, so a flood of clients
//! slows down instead of ballooning memory. **Shutdown** stops the accept
//! loop, shuts down every live connection socket, drains the queue to
//! empty and joins all threads — no request that was accepted is dropped.
//!
//! **Failure forensics.** The batcher stamps a heartbeat when it picks up
//! and when it finishes a batch; a watchdog thread
//! (`PATHREP_SERVE_WATCHDOG_MS`, default 5 s) fires when rows are queued
//! but the heartbeat has gone quiet past the deadline — warning, counting
//! `serve.watchdog_fires` and dumping the always-on flight recorder
//! ([`pathrep_obs::flight`]) so the stall's evidence is on disk while the
//! stall is still live. `dump_flight` requests trigger the same dump on
//! demand, and `set_fault` (gated behind `--allow-fault`) injects a
//! per-batch slowdown so gates can provoke breaches and stalls on purpose.

use crate::artifact::{ArtifactError, ModelArtifact};
use crate::binproto::{read_any_frame, BinRequest, BinResponse, WireFrame};
use crate::protocol::{
    write_frame, ProtocolError, Request, Response, ServerStats, TraceContext,
};
use pathrep_core::predictor::MeasurementPredictor;
use pathrep_linalg::Matrix;
use pathrep_obs::{config as obs_config, flight, ledger, trace};
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Trace ids the server mints for untraced (pre-trace-protocol) requests
/// start here: far above any client-chosen id in practice, and well
/// below 2⁵³ so the id survives the JSON `f64` round trip.
const SERVER_TRACE_BASE: u64 = 1 << 48;

/// Sequence for server-minted trace ids.
static SERVER_TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// The effective trace context for a request: the client's, or a freshly
/// minted server-side one when the frame carried none.
pub(crate) fn effective_trace(wire: Option<TraceContext>) -> TraceContext {
    wire.unwrap_or_else(|| {
        let seq = SERVER_TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
        TraceContext {
            trace_id: SERVER_TRACE_BASE + seq,
            request_seq: seq,
        }
    })
}

/// Batch-size histogram bucket edges (rows per kernel invocation).
pub(crate) const BATCH_EDGES: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Runtime knobs, resolved from `PATHREP_SERVE_*` (all registered in
/// [`pathrep_obs::config::ALL_ENV_VARS`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`PATHREP_SERVE_ADDR`, default `127.0.0.1:7878`;
    /// port 0 binds an ephemeral port).
    pub addr: String,
    /// Micro-batch flush size (`PATHREP_SERVE_BATCH`, default 32).
    pub batch_max: usize,
    /// Bounded queue capacity (`PATHREP_SERVE_QUEUE`, default 256).
    pub queue_cap: usize,
    /// LRU model-cache capacity (`PATHREP_SERVE_CACHE`, default 8).
    pub cache_cap: usize,
    /// Stall-watchdog deadline in milliseconds
    /// (`PATHREP_SERVE_WATCHDOG_MS`, default 5000; `None`/`0` disables):
    /// when prediction rows are queued but the batcher heartbeat has been
    /// quiet this long, the watchdog warns and dumps the flight recorder.
    pub watchdog_ms: Option<u64>,
    /// Whether `set_fault` requests are honoured (`--allow-fault`; the
    /// observability gate uses it to provoke SLO breaches and stalls).
    pub allow_fault: bool,
    /// Panic inside the request span once this many requests have been
    /// served (`--inject-panic N`; gate-only — proves the panic hook gets
    /// the flight dump onto disk with the dying request's trace id).
    pub inject_panic: Option<u64>,
    /// Reactor shard count (`PATHREP_SERVE_SHARDS`, default 0). `0` keeps
    /// the original thread-per-connection runtime; `N > 0` runs N
    /// readiness-loop shards (see [`crate::shard`]) with consistent-hash
    /// routing of model ids, so same-model requests batch locally.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            batch_max: 32,
            queue_cap: 256,
            cache_cap: 8,
            watchdog_ms: Some(5000),
            allow_fault: false,
            inject_panic: None,
            shards: 0,
        }
    }
}

fn env_usize(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(v) if !v.trim().is_empty() => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("pathrep-serve: [warn] ignoring invalid {var}={v:?} (using {default})");
                default
            }
        },
        _ => default,
    }
}

/// Like [`env_usize`] but 0 is a meaningful value (shard count 0 selects
/// the thread-per-connection runtime).
fn env_usize_zero_ok(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(v) if !v.trim().is_empty() => match v.trim().parse::<usize>() {
            Ok(n) => n,
            _ => {
                eprintln!("pathrep-serve: [warn] ignoring invalid {var}={v:?} (using {default})");
                default
            }
        },
        _ => default,
    }
}

impl ServerConfig {
    /// Resolves the configuration from the environment, falling back to
    /// the defaults above. Invalid values warn and fall back rather than
    /// aborting the daemon.
    pub fn from_env() -> Self {
        let d = ServerConfig::default();
        ServerConfig {
            addr: std::env::var(obs_config::ENV_SERVE_ADDR)
                .ok()
                .filter(|v| !v.trim().is_empty())
                .unwrap_or(d.addr),
            batch_max: env_usize(obs_config::ENV_SERVE_BATCH, d.batch_max),
            queue_cap: env_usize(obs_config::ENV_SERVE_QUEUE, d.queue_cap),
            cache_cap: env_usize(obs_config::ENV_SERVE_CACHE, d.cache_cap),
            watchdog_ms: obs_config::serve_watchdog_ms(),
            allow_fault: false,
            inject_panic: None,
            shards: env_usize_zero_ok(obs_config::ENV_SERVE_SHARDS, d.shards),
        }
    }
}

/// One queued prediction row awaiting the batcher.
struct Pending {
    model_id: String,
    predictor: Arc<MeasurementPredictor>,
    measured: Vec<f64>,
    /// Span path of the requesting handler, adopted by the batch kernel
    /// so pool time attributes under the request that triggered it.
    parent_span: Option<String>,
    /// Trace context of the requesting handler; the batch span inherits
    /// the context of the request that opened the batch.
    trace_ctx: Option<TraceContext>,
    reply: mpsc::Sender<Result<Vec<f64>, String>>,
}

/// Bounded MPSC queue with condvar backpressure on both ends.
struct BatchQueue {
    inner: Mutex<VecDeque<Pending>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl BatchQueue {
    fn new(cap: usize) -> Self {
        BatchQueue {
            inner: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// Blocks while the queue is full (backpressure), then enqueues.
    /// Returns the post-push depth.
    fn push(&self, p: Pending) -> usize {
        let mut q = self.inner.lock().unwrap();
        while q.len() >= self.cap {
            q = self.not_full.wait(q).unwrap();
        }
        q.push_back(p);
        let depth = q.len();
        drop(q);
        self.not_empty.notify_one();
        depth
    }

    /// Pops the front row plus every queued row for the same model (up to
    /// `batch_max` total, preserving arrival order of the rest). Blocks
    /// while empty; returns `None` once `stopped` is set *and* the queue
    /// has fully drained, so shutdown never drops an accepted request.
    fn pop_batch(&self, batch_max: usize, stopped: &AtomicBool) -> Option<Vec<Pending>> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(front) = q.pop_front() {
                let mut batch = vec![front];
                let mut i = 0;
                while batch.len() < batch_max && i < q.len() {
                    if q[i].model_id == batch[0].model_id
                        && q[i].measured.len() == batch[0].measured.len()
                    {
                        batch.push(q.remove(i).expect("index i is in bounds"));
                    } else {
                        i += 1;
                    }
                }
                drop(q);
                self.not_full.notify_all();
                return Some(batch);
            }
            if stopped.load(Ordering::SeqCst) {
                return None;
            }
            q = self.not_empty.wait(q).unwrap();
        }
    }

    /// Wakes the batcher so it can observe the stop flag.
    fn wake_all(&self) {
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Rows currently queued (the watchdog's "work is pending" signal).
    fn depth(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

/// Move-to-front LRU of loaded artifacts, keyed by model id.
struct ModelCache {
    entries: Mutex<Vec<(String, Arc<ModelArtifact>)>>,
    cap: usize,
}

impl ModelCache {
    fn new(cap: usize) -> Self {
        ModelCache {
            entries: Mutex::new(Vec::new()),
            cap: cap.max(1),
        }
    }

    fn get(&self, id: &str) -> Option<Arc<ModelArtifact>> {
        let mut e = self.entries.lock().unwrap();
        let pos = e.iter().position(|(k, _)| k == id)?;
        let entry = e.remove(pos);
        let art = Arc::clone(&entry.1);
        e.insert(0, entry);
        Some(art)
    }

    fn insert(&self, id: String, art: Arc<ModelArtifact>) -> usize {
        let mut e = self.entries.lock().unwrap();
        e.retain(|(k, _)| *k != id);
        e.insert(0, (id, art));
        e.truncate(self.cap);
        e.len()
    }

    fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }
}

/// Monotonic daemon statistics (lifetime, lock-free).
#[derive(Default)]
pub(crate) struct Stats {
    pub(crate) requests: AtomicU64,
    pub(crate) predictions: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) max_batch: AtomicU64,
    pub(crate) model_loads: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) queue_high_water: AtomicU64,
}

impl Stats {
    pub(crate) fn bump_max(cell: &AtomicU64, value: u64) {
        cell.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, models_cached: u64) -> ServerStats {
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            predictions: self.predictions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            model_loads: self.model_loads.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            models_cached,
        }
    }
}

pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    queue: BatchQueue,
    cache: ModelCache,
    pub(crate) stats: Stats,
    pub(crate) stopping: AtomicBool,
    /// Live connection sockets, shut down on drain so blocked reads wake.
    conns: Mutex<Vec<TcpStream>>,
    /// Process-local epoch the heartbeat is measured against.
    pub(crate) epoch: Instant,
    /// Milliseconds since `epoch` at the batcher's last sign of life
    /// (updated when it picks up and when it finishes a batch). The
    /// watchdog fires when this goes stale while rows are queued.
    heartbeat_ms: AtomicU64,
    /// Injected per-batch slowdown in milliseconds (0 = healthy); set by
    /// `set_fault` when the daemon allows it.
    pub(crate) fault_ms: AtomicU64,
}

impl Shared {
    pub(crate) fn cache_len(&self) -> usize {
        self.cache.len()
    }

    fn beat(&self) {
        self.heartbeat_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// Milliseconds since the batcher last showed a sign of life.
    fn heartbeat_age_ms(&self) -> u64 {
        (self.epoch.elapsed().as_millis() as u64)
            .saturating_sub(self.heartbeat_ms.load(Ordering::Relaxed))
    }
}

/// A bound, not-yet-running server. Binding is separate from running so
/// callers (tests, the daemon binary) can learn the ephemeral port first.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    join: std::thread::JoinHandle<ServerStats>,
}

impl ServerHandle {
    /// The bound address (with the real port even when 0 was requested).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Waits for the daemon to drain and exit, returning its final
    /// lifetime statistics.
    pub fn join(self) -> ServerStats {
        self.join.join().expect("server thread must not panic")
    }
}

impl Server {
    /// Binds the listener described by `config`.
    ///
    /// # Errors
    ///
    /// The underlying bind failure (address in use, permission, …).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let shared = Arc::new(Shared {
            queue: BatchQueue::new(config.queue_cap),
            cache: ModelCache::new(config.cache_cap),
            stats: Stats::default(),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            heartbeat_ms: AtomicU64::new(0),
            fault_ms: AtomicU64::new(0),
            config,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (with the real port even when 0 was requested).
    ///
    /// # Errors
    ///
    /// Propagates the OS failure to report the local address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon on the calling thread until a `Shutdown` request
    /// drains it; returns the final lifetime statistics.
    ///
    /// # Errors
    ///
    /// Fatal listener failures only; per-connection errors are handled
    /// and counted, never fatal.
    pub fn run(self) -> std::io::Result<ServerStats> {
        let Server { listener, shared } = self;
        if shared.config.shards > 0 {
            return crate::shard::run_sharded(listener, shared);
        }
        let addr = listener.local_addr()?;

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawning the batcher thread")
        };

        let watchdog = shared.config.watchdog_ms.map(|deadline_ms| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-watchdog".into())
                .spawn(move || watchdog_loop(&shared, deadline_ms))
                .expect("spawning the watchdog thread")
        });

        let mut handlers = Vec::new();
        for stream in listener.incoming() {
            if shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("pathrep-serve: [warn] accept failed: {e}");
                    continue;
                }
            };
            // Request/response ping-pong: Nagle-delaying the small reply
            // frames would cost ~40 ms per round trip.
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                shared.conns.lock().unwrap().push(clone);
            }
            let shared = Arc::clone(&shared);
            handlers.push(
                std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(stream, &shared))
                    .expect("spawning a connection handler"),
            );
        }

        // Drain: wake everything blocked on the socket or the queue.
        for conn in shared.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for h in handlers {
            let _ = h.join();
        }
        shared.queue.wake_all();
        let _ = batcher.join();
        if let Some(w) = watchdog {
            let _ = w.join();
        }
        pathrep_obs::gauge_set("serve.queue_depth", 0.0);
        let stats = shared.stats.snapshot(shared.cache.len() as u64);
        ledger::record("serve", "drained", |f| {
            f.text("addr", &addr.to_string())
                .int("requests", stats.requests)
                .int("predictions", stats.predictions)
                .int("errors", stats.errors);
        });
        Ok(stats)
    }

    /// Spawns [`Server::run`] on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the OS failure to report the local address.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let join = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || self.run().expect("server run loop"))?;
        Ok(ServerHandle { addr, join })
    }
}

/// Polls the batcher heartbeat and fires once per stall: rows queued but
/// no batcher activity for `deadline_ms`. A fire warns, counts, marks the
/// flight ring and dumps it — the evidence lands while the stall is live,
/// not after the process is killed. Re-arms once the heartbeat recovers.
fn watchdog_loop(shared: &Shared, deadline_ms: u64) {
    let poll = std::time::Duration::from_millis((deadline_ms / 4).clamp(10, 250));
    // Sleep in short slices so a shutdown is never stuck behind a full
    // poll interval: `run` joins this thread, and a single 250 ms sleep
    // here was adding a quarter second to every server drain.
    let slice = std::time::Duration::from_millis(5);
    let sleep_observing_stop = |total: std::time::Duration| {
        let wake = std::time::Instant::now() + total;
        loop {
            let now = std::time::Instant::now();
            if now >= wake || shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(slice.min(wake - now));
        }
    };
    let mut fired = false;
    while !shared.stopping.load(Ordering::SeqCst) {
        sleep_observing_stop(poll);
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let depth = shared.queue.depth();
        let age = shared.heartbeat_age_ms();
        if depth > 0 && age > deadline_ms {
            if !fired {
                fired = true;
                pathrep_obs::counter_add("serve.watchdog_fires", 1);
                let diagnosis = format!(
                    "batcher heartbeat quiet for {age} ms (deadline {deadline_ms} ms) \
                     with {depth} rows queued"
                );
                pathrep_obs::warn("serve.watchdog", || diagnosis.clone());
                flight::instant("serve.watchdog", diagnosis.clone());
                eprintln!("pathrep-serve: [watchdog] {diagnosis}");
                flight::dump_default();
            }
        } else if age <= deadline_ms {
            fired = false; // batcher came back; re-arm for the next stall
        }
    }
}

fn batcher_loop(shared: &Shared) {
    while let Some(batch) = shared
        .queue
        .pop_batch(shared.config.batch_max, &shared.stopping)
    {
        shared.beat();
        let fault_ms = shared.fault_ms.load(Ordering::Relaxed);
        if fault_ms > 0 {
            // Injected sickness (`set_fault`): stall before serving so
            // request latency inflates (SLO breach) and, with a slowdown
            // past the watchdog deadline, the heartbeat goes stale while
            // rows queue behind this batch.
            std::thread::sleep(std::time::Duration::from_millis(fault_ms));
        }
        let rows = batch.len();
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        Stats::bump_max(&shared.stats.max_batch, rows as u64);
        pathrep_obs::histogram_record_with("serve.batch_rows", BATCH_EDGES, rows as f64);
        // Attribute the kernel under the span of the request that opened
        // the batch; the coalesced rows ride along.
        let _parent = pathrep_obs::adopt_span_parent(batch[0].parent_span.clone());
        let _ctx = batch[0].trace_ctx.map(trace::set_context);
        let _span = pathrep_obs::span!("serve.batch");
        let predictor = Arc::clone(&batch[0].predictor);
        let width = batch[0].measured.len();
        let mut data = Vec::with_capacity(rows * width);
        for p in &batch {
            data.extend_from_slice(&p.measured);
        }
        let result = Matrix::from_vec(rows, width, data)
            .map_err(|e| e.to_string())
            .and_then(|m| predictor.predict_batch(&m).map_err(|e| e.to_string()));
        match result {
            Ok(out) => {
                for (i, p) in batch.iter().enumerate() {
                    let _ = p.reply.send(Ok(out.row(i).to_vec()));
                }
            }
            Err(e) => {
                for p in &batch {
                    let _ = p.reply.send(Err(e.clone()));
                }
            }
        }
        shared.beat();
    }
}

pub(crate) fn load_artifact(shared: &Shared, path: &str) -> Result<(Arc<ModelArtifact>, String), ArtifactError> {
    let _span = pathrep_obs::span!("serve.load_model");
    let (artifact, id) = ModelArtifact::load(path)?;
    let artifact = Arc::new(artifact);
    let cached = shared.cache.insert(id.clone(), Arc::clone(&artifact));
    shared.stats.model_loads.fetch_add(1, Ordering::Relaxed);
    pathrep_obs::counter_add("serve.model_loads", 1);
    pathrep_obs::gauge_set("serve.cache_size", cached as f64);
    ledger::record("serve", "model_load", |f| {
        f.text("model", &id)
            .text("label", &artifact.label)
            .text("path", path)
            .int("targets", artifact.predictor.target_count() as u64)
            .int("measurements", artifact.predictor.measurement_count() as u64)
            .num("epsilon_r", artifact.selection.epsilon_r)
            .num("guard_band_phi", artifact.guard_band_phi);
    });
    Ok((artifact, id))
}

/// Resolves a model id against the cache, counting the hit or miss.
pub(crate) fn resolve_model(shared: &Shared, id: &str) -> Result<Arc<ModelArtifact>, String> {
    match shared.cache.get(id) {
        Some(art) => {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            pathrep_obs::counter_add("serve.cache_hits", 1);
            Ok(art)
        }
        None => {
            shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            pathrep_obs::counter_add("serve.cache_misses", 1);
            Err(format!(
                "model `{id}` is not loaded (send load_model first; the LRU cache holds {} models)",
                shared.config.cache_cap
            ))
        }
    }
}

/// Enqueues `rows` prediction rows for one model and waits for all
/// replies, preserving row order.
fn predict_rows(
    shared: &Shared,
    model_id: &str,
    rows: Vec<Vec<f64>>,
) -> Result<Vec<Vec<f64>>, String> {
    let artifact = resolve_model(shared, model_id)?;
    let want = artifact.predictor.measurement_count();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != want {
            return Err(format!(
                "row {i}: expected {want} measurements, got {}",
                row.len()
            ));
        }
    }
    let parent_span = pathrep_obs::current_span_path();
    let trace_ctx = trace::current_context();
    let predictor = Arc::new(artifact.predictor.clone());
    let receivers: Vec<_> = rows
        .into_iter()
        .map(|measured| {
            let (tx, rx) = mpsc::channel();
            let depth = shared.queue.push(Pending {
                model_id: model_id.to_owned(),
                predictor: Arc::clone(&predictor),
                measured,
                parent_span: parent_span.clone(),
                trace_ctx,
                reply: tx,
            });
            Stats::bump_max(&shared.stats.queue_high_water, depth as u64);
            pathrep_obs::gauge_set("serve.queue_depth", depth as f64);
            rx
        })
        .collect();
    let mut out = Vec::with_capacity(receivers.len());
    for rx in receivers {
        let row = rx
            .recv()
            .map_err(|_| "batcher dropped the request during shutdown".to_owned())??;
        shared.stats.predictions.fetch_add(1, Ordering::Relaxed);
        pathrep_obs::counter_add("serve.predictions", 1);
        out.push(row);
    }
    Ok(out)
}

pub(crate) fn respond_to(shared: &Shared, req: Request) -> Response {
    match req {
        Request::LoadModel { path } => match load_artifact(shared, &path) {
            Ok((artifact, model)) => Response::Loaded {
                model,
                label: artifact.label.clone(),
                targets: artifact.predictor.target_count(),
                measurements: artifact.predictor.measurement_count(),
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Predict { model, measured } => {
            match predict_rows(shared, &model, vec![measured]) {
                Ok(mut rows) => Response::Predicted {
                    predicted: rows.pop().expect("one row in, one row out"),
                },
                Err(message) => Response::Error { message },
            }
        }
        Request::PredictBatch { model, measured } => {
            if measured.is_empty() {
                return Response::PredictedBatch { predicted: vec![] };
            }
            match predict_rows(shared, &model, measured) {
                Ok(predicted) => Response::PredictedBatch { predicted },
                Err(message) => Response::Error { message },
            }
        }
        Request::Stats => Response::Stats(
            shared
                .stats
                .snapshot(shared.cache.len() as u64),
        ),
        Request::DumpFlight { path } => {
            let path = path.unwrap_or_else(obs_config::flight_dump_path);
            match flight::dump_to(&path) {
                Ok((records, dropped)) => Response::FlightDumped {
                    path,
                    records: records as u64,
                    dropped,
                },
                Err(e) => Response::Error {
                    message: format!("flight dump to {path} failed: {e}"),
                },
            }
        }
        Request::SetFault { slowdown_ms } => {
            if !shared.config.allow_fault {
                Response::Error {
                    message: "fault injection is disabled \
                              (start the daemon with --allow-fault)"
                        .into(),
                }
            } else {
                shared.fault_ms.store(slowdown_ms, Ordering::SeqCst);
                pathrep_obs::gauge_set("serve.fault_slowdown_ms", slowdown_ms as f64);
                pathrep_obs::warn("serve.fault", || {
                    format!("injected batcher slowdown set to {slowdown_ms} ms")
                });
                Response::FaultSet { slowdown_ms }
            }
        }
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Serves one binary hot-path request on the blocking runtime and writes
/// the reply in the same protocol. Returns `false` when the socket died.
fn handle_binary_request(
    stream: &mut TcpStream,
    shared: &Shared,
    op: u8,
    payload: &[u8],
    t0: Instant,
) -> bool {
    use std::io::Write as _;
    let (req, wire_ctx) = match BinRequest::decode(op, payload) {
        Ok(pair) => pair,
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            pathrep_obs::counter_add("serve.errors", 1);
            let resp = BinResponse::Error { message: e.to_string() };
            return stream.write_all(&resp.encode(None)).is_ok();
        }
    };
    let ctx = effective_trace(wire_ctx);
    let _ctx = trace::set_context(ctx);
    let _span = pathrep_obs::span!("serve.request");
    let resp = match req {
        BinRequest::Predict { model, measured } => {
            match predict_rows(shared, &model, vec![measured]) {
                Ok(mut rows) => BinResponse::Predicted {
                    predicted: rows.pop().expect("one row in, one row out"),
                },
                Err(message) => BinResponse::Error { message },
            }
        }
        BinRequest::PredictBatch { model, rows, cols, data } => {
            if rows == 0 {
                BinResponse::PredictedBatch { rows: 0, cols: 0, data: vec![] }
            } else {
                let row_vecs: Vec<Vec<f64>> =
                    data.chunks(cols.max(1)).map(<[f64]>::to_vec).collect();
                match predict_rows(shared, &model, row_vecs) {
                    Ok(predicted) => {
                        let out_cols = predicted.first().map_or(0, Vec::len);
                        let mut flat = Vec::with_capacity(predicted.len() * out_cols);
                        for r in &predicted {
                            flat.extend_from_slice(r);
                        }
                        BinResponse::PredictedBatch {
                            rows: predicted.len(),
                            cols: out_cols,
                            data: flat,
                        }
                    }
                    Err(message) => BinResponse::Error { message },
                }
            }
        }
    };
    if matches!(resp, BinResponse::Error { .. }) {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        pathrep_obs::counter_add("serve.errors", 1);
    }
    let ok = stream.write_all(&resp.encode(Some(ctx))).is_ok();
    pathrep_obs::histogram_record_hdr("serve.request_ns", t0.elapsed().as_nanos() as f64);
    ok
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    loop {
        let frame = match read_any_frame(&mut stream) {
            Ok(Some(f)) => f,
            // Clean EOF, or the socket was shut down during drain.
            Ok(None) | Err(ProtocolError::Io(_)) => return,
            Err(e) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                pathrep_obs::counter_add("serve.errors", 1);
                let resp = Response::Error {
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
        };
        let t0 = Instant::now();
        let payload = match frame {
            WireFrame::Json(payload) => payload,
            WireFrame::Binary { op, payload } => {
                // Hot-path binary frame: same queue, same batcher, same
                // kernel — only the framing differs. Replies stay in the
                // request's protocol; JSON control frames interleave freely.
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                pathrep_obs::counter_add("serve.requests", 1);
                if handle_binary_request(&mut stream, shared, op, &payload, t0) {
                    continue;
                }
                return;
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        pathrep_obs::counter_add("serve.requests", 1);
        let (req, wire_ctx) = match Request::decode_with_trace(&payload) {
            Ok(pair) => pair,
            Err(e) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                pathrep_obs::counter_add("serve.errors", 1);
                let resp = Response::Error {
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &resp.encode());
                continue;
            }
        };
        // Adopt the client's trace context (or mint one) before opening
        // the request span, so the span — and any ledger records written
        // while handling — carry the ids the reply echoes back.
        let ctx = effective_trace(wire_ctx);
        let _ctx = trace::set_context(ctx);
        let _span = pathrep_obs::span!("serve.request");
        if let Some(n) = shared.config.inject_panic {
            let served = shared.stats.requests.load(Ordering::Relaxed);
            if served >= n && !matches!(req, Request::Shutdown) {
                // Gate-only: die inside the request span, with the trace
                // context set, so the panic-hook flight dump must carry
                // this request's trace_id on the in-flight span.
                panic!(
                    "injected panic for the observability gate \
                     (request {served}, trace_id {})",
                    ctx.trace_id
                );
            }
        }
        let is_shutdown = matches!(req, Request::Shutdown);
        let resp = respond_to(shared, req);
        if matches!(resp, Response::Error { .. }) {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            pathrep_obs::counter_add("serve.errors", 1);
        }
        let ok = write_frame(&mut stream, &resp.encode_with_trace(Some(ctx))).is_ok();
        pathrep_obs::histogram_record_hdr("serve.request_ns", t0.elapsed().as_nanos() as f64);
        if is_shutdown {
            // Flip the flag, then nudge the accept loop awake with a
            // throwaway connection so it observes the flag and drains.
            shared.stopping.store(true, Ordering::SeqCst);
            if let Ok(listener_addr) = stream.local_addr() {
                let _ = TcpStream::connect(listener_addr);
            }
            return;
        }
        if !ok {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_env_falls_back_on_garbage() {
        // Use the real vars briefly; restore to avoid cross-test leakage.
        std::env::set_var(obs_config::ENV_SERVE_BATCH, "not-a-number");
        std::env::set_var(obs_config::ENV_SERVE_QUEUE, "0");
        let c = ServerConfig::from_env();
        assert_eq!(c.batch_max, ServerConfig::default().batch_max);
        assert_eq!(c.queue_cap, ServerConfig::default().queue_cap);
        std::env::remove_var(obs_config::ENV_SERVE_BATCH);
        std::env::remove_var(obs_config::ENV_SERVE_QUEUE);
    }

    #[test]
    fn lru_cache_evicts_least_recently_used() {
        let cache = ModelCache::new(2);
        let art = |label: &str| {
            let (a, _) = ModelArtifact::from_bytes(&demo_artifact(label).to_bytes()).unwrap();
            Arc::new(a)
        };
        cache.insert("a".into(), art("a"));
        cache.insert("b".into(), art("b"));
        assert!(cache.get("a").is_some(), "touch `a` so `b` becomes LRU");
        cache.insert("c".into(), art("c"));
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert!(cache.get("b").is_none(), "`b` was least recently used");
        assert_eq!(cache.len(), 2);
    }

    fn demo_artifact(label: &str) -> ModelArtifact {
        let coef = Matrix::from_fn(2, 2, |i, j| (i + j) as f64 * 0.5 + 0.25);
        ModelArtifact {
            label: label.into(),
            selection: crate::artifact::SelectionMeta {
                epsilon: 0.05,
                epsilon_r: 0.01,
                eta: 0.05,
                rank: 2,
                effective_rank: 2,
                t_cons: 100.0,
                selected: vec![0, 1],
                remaining: vec![2, 3],
            },
            guard_band_phi: 1.0,
            predictor: MeasurementPredictor::from_parts(
                coef,
                vec![10.0, 11.0],
                vec![12.0, 13.0],
                vec![0.1, 0.2],
                3.0,
            )
            .unwrap(),
        }
    }

    #[test]
    fn queue_batches_same_model_and_respects_flush_size() {
        let q = BatchQueue::new(16);
        let stopped = AtomicBool::new(false);
        let art = Arc::new(demo_artifact("q").predictor);
        let mk = |model: &str| {
            let (tx, _rx) = mpsc::channel();
            // Leak the receiver: these pendings are only inspected, never
            // replied to.
            std::mem::forget(_rx);
            Pending {
                model_id: model.into(),
                predictor: Arc::clone(&art),
                measured: vec![0.0, 0.0],
                parent_span: None,
                trace_ctx: None,
                reply: tx,
            }
        };
        for model in ["m1", "m1", "m2", "m1", "m1", "m1"] {
            q.push(mk(model));
        }
        let b1 = q.pop_batch(3, &stopped).unwrap();
        assert_eq!(b1.len(), 3, "flush-on-size caps the batch");
        assert!(b1.iter().all(|p| p.model_id == "m1"));
        let b2 = q.pop_batch(3, &stopped).unwrap();
        assert_eq!(b2.len(), 1, "the m2 row runs alone, order preserved");
        assert_eq!(b2[0].model_id, "m2");
        let b3 = q.pop_batch(3, &stopped).unwrap();
        assert_eq!(b3.len(), 2);
        assert!(b3.iter().all(|p| p.model_id == "m1"));
        stopped.store(true, Ordering::SeqCst);
        assert!(q.pop_batch(3, &stopped).is_none(), "drained + stopped ends the loop");
    }
}
