//! Compact binary wire protocol, negotiated per-frame beside the JSON one.
//!
//! The JSON protocol ([`crate::protocol`]) spends most of a hot predict
//! request rendering and parsing 17-digit float literals. This module
//! defines a fixed-layout binary frame for the two hot request kinds
//! (`predict`, `predict_batch`) and their replies, carrying every `f64` as
//! its exact IEEE-754 bit pattern (`to_bits`/`from_bits`, little-endian) —
//! the wire transport is bit-exact by construction, including NaN
//! payloads, signed zeros, subnormals and infinities.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       1     magic0 = 0xB7
//! 1       1     magic1 = 0x50 ('P')
//! 2       1     version = 0x01
//! 3       1     opcode
//! 4       4     payload length, u32 little-endian
//! 8       len   payload
//! ```
//!
//! The payload begins with a `flags` byte; bit 0 announces a trace context
//! (`trace_id` u64 LE + `request_seq` u64 LE follow immediately). The body
//! after the optional trace context depends on the opcode:
//!
//! | opcode | kind                | body |
//! |--------|---------------------|------|
//! | `0x01` | predict             | `model_len` u16 LE, model id bytes, `n` u32 LE, `n` × f64 bits LE |
//! | `0x02` | predict_batch       | `model_len` u16 LE, model id bytes, `rows` u32 LE, `cols` u32 LE, `rows·cols` × f64 bits LE (row-major) |
//! | `0x81` | predicted           | `n` u32 LE, `n` × f64 bits LE |
//! | `0x82` | predicted_batch     | `rows` u32 LE, `cols` u32 LE, `rows·cols` × f64 bits LE |
//! | `0xEE` | error               | `msg_len` u32 LE, UTF-8 message bytes |
//!
//! ## Coexistence with JSON
//!
//! A JSON frame starts with a 4-byte big-endian length ≤
//! [`MAX_FRAME_BYTES`] (64 MiB), so its first byte is at most `0x04`;
//! `0xB7` can therefore never open a valid JSON frame and one peeked byte
//! decides the protocol. Both server runtimes accept both framings on the
//! same connection and always reply in the protocol of the request frame,
//! so a binary client still sends control requests (`load_model`,
//! `stats`, `shutdown`, …) as JSON on the same socket.
//!
//! Batch payloads decode in a single pass into one contiguous row-major
//! `Vec<f64>` — no per-row allocations — which feeds the fused
//! `predict_batch` kernel directly.

use std::io::Read;

use crate::protocol::{ProtocolError, TraceContext, MAX_FRAME_BYTES};

/// First magic byte; outside the value range a JSON length prefix can open with.
pub const MAGIC0: u8 = 0xB7;
/// Second magic byte (`'P'` for pathrep).
pub const MAGIC1: u8 = 0x50;
/// Protocol version carried in every frame header.
pub const VERSION: u8 = 0x01;
/// Fixed header size preceding the payload.
pub const HEADER_LEN: usize = 8;

/// Opcode: predict one measurement vector.
pub const OP_PREDICT: u8 = 0x01;
/// Opcode: predict a batch of measurement vectors.
pub const OP_PREDICT_BATCH: u8 = 0x02;
/// Opcode: reply to [`OP_PREDICT`].
pub const OP_PREDICTED: u8 = 0x81;
/// Opcode: reply to [`OP_PREDICT_BATCH`].
pub const OP_PREDICTED_BATCH: u8 = 0x82;
/// Opcode: error reply.
pub const OP_ERROR: u8 = 0xEE;

/// A hot-path request decoded from a binary frame.
#[derive(Debug, Clone, PartialEq)]
pub enum BinRequest {
    /// Predict target delays from one measurement vector.
    Predict {
        /// Content-hash model id.
        model: String,
        /// Measured delays in artifact `selected` order.
        measured: Vec<f64>,
    },
    /// Predict for `rows` measurement vectors of width `cols`.
    PredictBatch {
        /// Content-hash model id.
        model: String,
        /// Number of measurement vectors.
        rows: usize,
        /// Width of each vector.
        cols: usize,
        /// Row-major `rows × cols` values, decoded in one pass.
        data: Vec<f64>,
    },
}

/// A hot-path reply encoded into a binary frame.
#[derive(Debug, Clone, PartialEq)]
pub enum BinResponse {
    /// Reply to [`BinRequest::Predict`].
    Predicted {
        /// One delay per target.
        predicted: Vec<f64>,
    },
    /// Reply to [`BinRequest::PredictBatch`].
    PredictedBatch {
        /// Number of rows.
        rows: usize,
        /// Width of each row.
        cols: usize,
        /// Row-major predicted values.
        data: Vec<f64>,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// One frame read off the wire before protocol-level decoding: either a
/// JSON payload or a binary `(opcode, payload)` pair.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// A length-prefixed JSON frame payload.
    Json(String),
    /// A binary frame: opcode plus raw payload bytes.
    Binary {
        /// Frame opcode (`OP_*`).
        op: u8,
        /// Payload bytes (flags, optional trace context, body).
        payload: Vec<u8>,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const FLAG_TRACE: u8 = 0x01;

fn frame_with(op: u8, trace: Option<TraceContext>, body_len: usize, fill: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let trace_len = if trace.is_some() { 16 } else { 0 };
    let payload_len = 1 + trace_len + body_len;
    let mut out = Vec::with_capacity(HEADER_LEN + payload_len);
    out.extend_from_slice(&[MAGIC0, MAGIC1, VERSION, op]);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    match trace {
        Some(t) => {
            out.push(FLAG_TRACE);
            out.extend_from_slice(&t.trace_id.to_le_bytes());
            out.extend_from_slice(&t.request_seq.to_le_bytes());
        }
        None => out.push(0),
    }
    fill(&mut out);
    debug_assert_eq!(out.len(), HEADER_LEN + payload_len);
    out
}

fn push_f64s(out: &mut Vec<u8>, values: &[f64]) {
    out.reserve(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn push_model(out: &mut Vec<u8>, model: &str) {
    out.extend_from_slice(&(model.len() as u16).to_le_bytes());
    out.extend_from_slice(model.as_bytes());
}

impl BinRequest {
    /// Render the request as one complete frame (header + payload).
    pub fn encode(&self, trace: Option<TraceContext>) -> Vec<u8> {
        match self {
            BinRequest::Predict { model, measured } => frame_with(
                OP_PREDICT,
                trace,
                2 + model.len() + 4 + measured.len() * 8,
                |out| {
                    push_model(out, model);
                    out.extend_from_slice(&(measured.len() as u32).to_le_bytes());
                    push_f64s(out, measured);
                },
            ),
            BinRequest::PredictBatch { model, rows, cols, data } => frame_with(
                OP_PREDICT_BATCH,
                trace,
                2 + model.len() + 8 + data.len() * 8,
                |out| {
                    push_model(out, model);
                    out.extend_from_slice(&(*rows as u32).to_le_bytes());
                    out.extend_from_slice(&(*cols as u32).to_le_bytes());
                    push_f64s(out, data);
                },
            ),
        }
    }

    /// Build a batch request from per-row vectors (client convenience).
    ///
    /// # Panics
    ///
    /// If rows have unequal widths — the binary batch layout is rectangular.
    pub fn batch_from_rows(model: &str, rows: &[Vec<f64>]) -> BinRequest {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "binary batch rows must share one width");
            data.extend_from_slice(row);
        }
        BinRequest::PredictBatch { model: model.to_owned(), rows: rows.len(), cols, data }
    }
}

impl BinResponse {
    /// Render the response as one complete frame (header + payload).
    pub fn encode(&self, trace: Option<TraceContext>) -> Vec<u8> {
        match self {
            BinResponse::Predicted { predicted } => {
                frame_with(OP_PREDICTED, trace, 4 + predicted.len() * 8, |out| {
                    out.extend_from_slice(&(predicted.len() as u32).to_le_bytes());
                    push_f64s(out, predicted);
                })
            }
            BinResponse::PredictedBatch { rows, cols, data } => {
                frame_with(OP_PREDICTED_BATCH, trace, 8 + data.len() * 8, |out| {
                    out.extend_from_slice(&(*rows as u32).to_le_bytes());
                    out.extend_from_slice(&(*cols as u32).to_le_bytes());
                    push_f64s(out, data);
                })
            }
            BinResponse::Error { message } => {
                frame_with(OP_ERROR, trace, 4 + message.len(), |out| {
                    out.extend_from_slice(&(message.len() as u32).to_le_bytes());
                    out.extend_from_slice(message.as_bytes());
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Forward-only cursor over a frame payload; every short read maps to
/// [`ProtocolError::Malformed`] so corrupt frames surface as typed errors.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            ProtocolError::Malformed("truncated binary frame body".into())
        })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Decode `n` f64 bit patterns in one pass into a fresh contiguous Vec.
    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, ProtocolError> {
        let bytes = self.take(n.checked_mul(8).ok_or_else(|| {
            ProtocolError::Malformed("binary frame float count overflows".into())
        })?)?;
        let mut out = Vec::with_capacity(n);
        for chunk in bytes.chunks_exact(8) {
            out.push(f64::from_bits(u64::from_le_bytes(chunk.try_into().unwrap())));
        }
        Ok(out)
    }

    fn string(&mut self, n: usize) -> Result<String, ProtocolError> {
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| ProtocolError::Malformed("binary frame string is not UTF-8".into()))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "binary frame has {} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }

    fn trace(&mut self) -> Result<Option<TraceContext>, ProtocolError> {
        let flags = self.u8()?;
        match flags {
            0 => Ok(None),
            FLAG_TRACE => Ok(Some(TraceContext { trace_id: self.u64()?, request_seq: self.u64()? })),
            other => Err(ProtocolError::Malformed(format!(
                "unknown binary frame flags 0x{other:02x}"
            ))),
        }
    }
}

impl BinRequest {
    /// Decode a request payload for the given opcode.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation, trailing bytes, unknown
    /// flags, non-UTF-8 model ids, or a non-request opcode.
    pub fn decode(op: u8, payload: &[u8]) -> Result<(BinRequest, Option<TraceContext>), ProtocolError> {
        let mut cur = Cursor::new(payload);
        let trace = cur.trace()?;
        let req = match op {
            OP_PREDICT => {
                let model_len = cur.u16()? as usize;
                let model = cur.string(model_len)?;
                let n = cur.u32()? as usize;
                BinRequest::Predict { model, measured: cur.f64s(n)? }
            }
            OP_PREDICT_BATCH => {
                let model_len = cur.u16()? as usize;
                let model = cur.string(model_len)?;
                let rows = cur.u32()? as usize;
                let cols = cur.u32()? as usize;
                let count = rows.checked_mul(cols).ok_or_else(|| {
                    ProtocolError::Malformed("binary batch shape overflows".into())
                })?;
                BinRequest::PredictBatch { model, rows, cols, data: cur.f64s(count)? }
            }
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown binary request opcode 0x{other:02x}"
                )))
            }
        };
        cur.finish()?;
        Ok((req, trace))
    }
}

impl BinResponse {
    /// Decode a response payload for the given opcode.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation, trailing bytes, unknown
    /// flags, or a non-response opcode.
    pub fn decode(op: u8, payload: &[u8]) -> Result<(BinResponse, Option<TraceContext>), ProtocolError> {
        let mut cur = Cursor::new(payload);
        let trace = cur.trace()?;
        let resp = match op {
            OP_PREDICTED => {
                let n = cur.u32()? as usize;
                BinResponse::Predicted { predicted: cur.f64s(n)? }
            }
            OP_PREDICTED_BATCH => {
                let rows = cur.u32()? as usize;
                let cols = cur.u32()? as usize;
                let count = rows.checked_mul(cols).ok_or_else(|| {
                    ProtocolError::Malformed("binary batch shape overflows".into())
                })?;
                BinResponse::PredictedBatch { rows, cols, data: cur.f64s(count)? }
            }
            OP_ERROR => {
                let n = cur.u32()? as usize;
                BinResponse::Error { message: cur.string(n)? }
            }
            other => {
                return Err(ProtocolError::Malformed(format!(
                    "unknown binary response opcode 0x{other:02x}"
                )))
            }
        };
        cur.finish()?;
        Ok((resp, trace))
    }
}

// ---------------------------------------------------------------------------
// Mixed-protocol frame reading
// ---------------------------------------------------------------------------

/// Validate a binary frame header and return `(opcode, payload_len)`.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on bad magic or version,
/// [`ProtocolError::Oversized`] on an over-limit payload length.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize), ProtocolError> {
    if header[0] != MAGIC0 || header[1] != MAGIC1 {
        return Err(ProtocolError::Malformed("bad binary frame magic".into()));
    }
    if header[2] != VERSION {
        return Err(ProtocolError::Malformed(format!(
            "unsupported binary protocol version {}",
            header[2]
        )));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized(len));
    }
    Ok((header[3], len))
}

/// Read one frame of either protocol from a blocking reader; `Ok(None)` on
/// a clean EOF at a frame boundary. The first byte decides the framing:
/// [`MAGIC0`] opens a binary frame, anything else is the high byte of a
/// JSON length prefix.
///
/// # Errors
///
/// [`ProtocolError::Io`] on socket failure or mid-frame EOF,
/// [`ProtocolError::Oversized`] on over-limit lengths,
/// [`ProtocolError::Malformed`] on bad magic/version or non-UTF-8 JSON.
pub fn read_any_frame(r: &mut impl Read) -> Result<Option<WireFrame>, ProtocolError> {
    let mut first = [0u8; 1];
    match r.read(&mut first)? {
        0 => return Ok(None),
        _ => {}
    }
    let eof_err = || {
        ProtocolError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "EOF inside a frame header",
        ))
    };
    if first[0] == MAGIC0 {
        let mut header = [0u8; HEADER_LEN];
        header[0] = MAGIC0;
        r.read_exact(&mut header[1..]).map_err(|_| eof_err())?;
        let (op, len) = parse_header(&header)?;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload).map_err(|_| {
            ProtocolError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "EOF inside a binary frame payload",
            ))
        })?;
        return Ok(Some(WireFrame::Binary { op, payload }));
    }
    let mut len_buf = [0u8; 4];
    len_buf[0] = first[0];
    r.read_exact(&mut len_buf[1..]).map_err(|_| eof_err())?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|_| {
        ProtocolError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "EOF inside a frame payload",
        ))
    })?;
    String::from_utf8(payload)
        .map(|s| Some(WireFrame::Json(s)))
        .map_err(|_| ProtocolError::Malformed("frame payload is not UTF-8".into()))
}

/// Scan an in-memory buffer (the reactor's accumulation buffer) for one
/// complete frame of either protocol. Returns `Ok(None)` when more bytes
/// are needed, or `Some((frame, consumed))` where `consumed` bytes should
/// be dropped from the front of the buffer.
///
/// # Errors
///
/// Same taxonomy as [`read_any_frame`], minus `Io` (no socket involved).
pub fn scan_frame(buf: &[u8]) -> Result<Option<(WireFrame, usize)>, ProtocolError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] == MAGIC0 {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().unwrap();
        let (op, len) = parse_header(header)?;
        if buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = buf[HEADER_LEN..HEADER_LEN + len].to_vec();
        return Ok(Some((WireFrame::Binary { op, payload }, HEADER_LEN + len)));
    }
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = std::str::from_utf8(&buf[4..4 + len])
        .map_err(|_| ProtocolError::Malformed("frame payload is not UTF-8".into()))?;
    Ok(Some((WireFrame::Json(payload.to_owned()), 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_frame;

    fn frame_of(req: &BinRequest, trace: Option<TraceContext>) -> (u8, Vec<u8>) {
        let bytes = req.encode(trace);
        let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
        let (op, len) = parse_header(header).unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + len);
        (op, bytes[HEADER_LEN..].to_vec())
    }

    #[test]
    fn requests_round_trip_bit_exactly() {
        let tricky = vec![
            f64::from_bits(0x7ff8_0000_0000_0001), // NaN with payload
            -0.0,
            f64::MIN_POSITIVE / 4.0, // subnormal
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0 / 3.0,
        ];
        let ctx = TraceContext { trace_id: (9 << 32) | 4, request_seq: 4 };
        for trace in [None, Some(ctx)] {
            let req = BinRequest::Predict { model: "deadbeef00112233".into(), measured: tricky.clone() };
            let (op, payload) = frame_of(&req, trace);
            let (back, t) = BinRequest::decode(op, &payload).unwrap();
            assert_eq!(t, trace);
            match back {
                BinRequest::Predict { model, measured } => {
                    assert_eq!(model, "deadbeef00112233");
                    for (a, b) in tricky.iter().zip(&measured) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn batch_layout_is_rectangular_row_major() {
        let rows = vec![vec![1.5, 2.5, 3.5], vec![-1.0, 0.0, f64::NAN]];
        let req = BinRequest::batch_from_rows("m", &rows);
        let (op, payload) = frame_of(&req, None);
        let (back, _) = BinRequest::decode(op, &payload).unwrap();
        match back {
            BinRequest::PredictBatch { rows: r, cols: c, data, .. } => {
                assert_eq!((r, c), (2, 3));
                let flat: Vec<u64> = rows.iter().flatten().map(|v| v.to_bits()).collect();
                let got: Vec<u64> = data.iter().map(|v| v.to_bits()).collect();
                assert_eq!(flat, got);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            BinResponse::Predicted { predicted: vec![0.1, -0.0, f64::INFINITY] },
            BinResponse::PredictedBatch { rows: 2, cols: 2, data: vec![1.0, 2.0, 3.0, 4.0] },
            BinResponse::Error { message: "no such model".into() },
        ];
        for resp in cases {
            let bytes = resp.encode(None);
            let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
            let (op, _) = parse_header(header).unwrap();
            let (back, _) = BinResponse::decode(op, &bytes[HEADER_LEN..]).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn corrupt_frames_map_to_typed_errors() {
        // Bad magic1.
        let bad_magic = [MAGIC0, 0x00, VERSION, OP_PREDICT, 1, 0, 0, 0];
        assert!(matches!(parse_header(&bad_magic), Err(ProtocolError::Malformed(_))));
        // Future version.
        let bad_version = [MAGIC0, MAGIC1, 9, OP_PREDICT, 1, 0, 0, 0];
        assert!(matches!(parse_header(&bad_version), Err(ProtocolError::Malformed(_))));
        // Oversized payload length.
        let mut oversized = [MAGIC0, MAGIC1, VERSION, OP_PREDICT, 0, 0, 0, 0];
        oversized[4..8].copy_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
        assert!(matches!(parse_header(&oversized), Err(ProtocolError::Oversized(_))));
        // Truncated body: count claims more floats than the payload holds.
        let req = BinRequest::Predict { model: "m".into(), measured: vec![1.0, 2.0] };
        let bytes = req.encode(None);
        let cut = &bytes[HEADER_LEN..bytes.len() - 3];
        assert!(matches!(BinRequest::decode(OP_PREDICT, cut), Err(ProtocolError::Malformed(_))));
        // Trailing bytes are rejected, not ignored.
        let mut padded = bytes[HEADER_LEN..].to_vec();
        padded.push(0);
        assert!(matches!(BinRequest::decode(OP_PREDICT, &padded), Err(ProtocolError::Malformed(_))));
        // Unknown opcode and unknown flags.
        assert!(matches!(BinRequest::decode(0x7f, &[0]), Err(ProtocolError::Malformed(_))));
        assert!(matches!(BinRequest::decode(OP_PREDICT, &[0x80]), Err(ProtocolError::Malformed(_))));
        // Mid-frame EOF through the blocking reader is an Io error.
        let mut r = &bytes[..HEADER_LEN + 2];
        assert!(matches!(read_any_frame(&mut r), Err(ProtocolError::Io(_))));
    }

    #[test]
    fn mixed_protocol_frames_interleave_on_one_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "{\"type\":\"stats\"}").unwrap();
        let bin = BinRequest::Predict { model: "m".into(), measured: vec![4.25] };
        wire.extend_from_slice(&bin.encode(None));
        write_frame(&mut wire, "{\"type\":\"shutdown\"}").unwrap();

        // Blocking reader sees all three in order.
        let mut r = &wire[..];
        assert_eq!(read_any_frame(&mut r).unwrap(), Some(WireFrame::Json("{\"type\":\"stats\"}".into())));
        match read_any_frame(&mut r).unwrap() {
            Some(WireFrame::Binary { op, payload }) => {
                assert_eq!(op, OP_PREDICT);
                assert_eq!(BinRequest::decode(op, &payload).unwrap().0, bin);
            }
            other => panic!("expected binary frame, got {other:?}"),
        }
        assert_eq!(read_any_frame(&mut r).unwrap(), Some(WireFrame::Json("{\"type\":\"shutdown\"}".into())));
        assert_eq!(read_any_frame(&mut r).unwrap(), None);

        // Buffer scanner agrees byte-for-byte, including partial-frame waits.
        let mut pos = 0;
        let mut kinds = Vec::new();
        while pos < wire.len() {
            match scan_frame(&wire[pos..]).unwrap() {
                Some((frame, used)) => {
                    kinds.push(matches!(frame, WireFrame::Binary { .. }));
                    pos += used;
                }
                None => panic!("scanner stalled on a complete buffer"),
            }
        }
        assert_eq!(kinds, vec![false, true, false]);
        assert!(scan_frame(&wire[..3]).unwrap().is_none(), "partial prefix needs more bytes");
        assert!(scan_frame(&bin.encode(None)[..HEADER_LEN - 1]).unwrap().is_none());
    }
}
