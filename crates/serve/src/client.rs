//! Blocking client for the `pathrep-serve` daemon: one request, one
//! response, over a persistent connection.

use crate::binproto::{read_any_frame, BinRequest, BinResponse, WireFrame};
use crate::protocol::{
    read_frame, write_frame, ProtocolError, Request, Response, ServerStats, TraceContext,
};
use pathrep_obs::{config as obs_config, trace};
use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};

/// Which wire encoding the client uses for the prediction hot path.
/// Control requests (`load_model`, `stats`, …) always travel as JSON; the
/// daemon auto-detects the protocol per frame, so one connection can mix
/// both freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireProtocol {
    /// Length-prefixed JSON frames (the original protocol).
    #[default]
    Json,
    /// Compact binary frames: exact `f64` bit patterns, no text rendering.
    Binary,
}

impl WireProtocol {
    /// Reads `PATHREP_SERVE_PROTO` (`"binary"` selects
    /// [`WireProtocol::Binary`]; anything else, or unset, is JSON).
    pub fn from_env() -> WireProtocol {
        match std::env::var(obs_config::ENV_SERVE_PROTO) {
            Ok(v) if v.eq_ignore_ascii_case("binary") => WireProtocol::Binary,
            _ => WireProtocol::Json,
        }
    }
}

/// Any client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing failure.
    Protocol(ProtocolError),
    /// The daemon answered with an error response.
    Server(String),
    /// The daemon answered with a response of the wrong kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// Identity of a model resident on the daemon, echoed by `load_model`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedModel {
    /// Content-hash model id to use in predict requests.
    pub model: String,
    /// Artifact label.
    pub label: String,
    /// Number of predicted targets.
    pub targets: usize,
    /// Number of required measurements.
    pub measurements: usize,
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
    /// Hot-path encoding; control requests stay JSON regardless.
    proto: WireProtocol,
    /// Trace context echoed by the daemon on the last response, if any.
    /// An old daemon echoes nothing; that is not an error.
    last_trace: Option<TraceContext>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// The underlying connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response ping-pong: Nagle-delaying the small request
        // frames would cost ~40 ms per round trip.
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            proto: WireProtocol::from_env(),
            last_trace: None,
        })
    }

    /// Selects the hot-path wire encoding (overrides the
    /// `PATHREP_SERVE_PROTO` default picked up at connect time).
    pub fn set_protocol(&mut self, proto: WireProtocol) {
        self.proto = proto;
    }

    /// The hot-path wire encoding currently in use.
    pub fn protocol(&self) -> WireProtocol {
        self.proto
    }

    /// The trace context the daemon echoed on the most recent response,
    /// or `None` when talking to a pre-trace daemon.
    pub fn last_trace(&self) -> Option<TraceContext> {
        self.last_trace
    }

    /// Sends the caller's active trace context (see
    /// [`pathrep_obs::trace::set_context`]) with the request, so client
    /// spans and daemon spans share one `trace_id`, and records whatever
    /// context the daemon echoes back.
    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode_with_trace(trace::current_context()))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Protocol(ProtocolError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            )))
        })?;
        let (resp, echoed) = Response::decode_with_trace(&payload)?;
        self.last_trace = echoed;
        match resp {
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Ok(other),
        }
    }

    /// Binary-protocol round trip: same trace plumbing as JSON, exact
    /// `f64` bit patterns on the wire.
    fn binary_round_trip(&mut self, req: &BinRequest) -> Result<BinResponse, ClientError> {
        self.stream.write_all(&req.encode(trace::current_context()))?;
        let (op, payload) = match read_any_frame(&mut self.stream)? {
            Some(WireFrame::Binary { op, payload }) => (op, payload),
            Some(WireFrame::Json(payload)) => {
                return Err(ClientError::Unexpected(format!(
                    "JSON reply to a binary request: {payload}"
                )))
            }
            None => {
                return Err(ClientError::Protocol(ProtocolError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection before responding",
                ))))
            }
        };
        let (resp, echoed) = BinResponse::decode(op, &payload)?;
        self.last_trace = echoed;
        match resp {
            BinResponse::Error { message } => Err(ClientError::Server(message)),
            other => Ok(other),
        }
    }

    /// Asks the daemon to load the artifact at `path` (a path on the
    /// daemon's host).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with the daemon's typed artifact error
    /// message, or a protocol failure.
    pub fn load_model(&mut self, path: &str) -> Result<LoadedModel, ClientError> {
        match self.round_trip(&Request::LoadModel { path: path.into() })? {
            Response::Loaded {
                model,
                label,
                targets,
                measurements,
            } => Ok(LoadedModel {
                model,
                label,
                targets,
                measurements,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Predicts target delays for one measurement vector.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on an unknown model or wrong-length vector.
    pub fn predict(&mut self, model: &str, measured: &[f64]) -> Result<Vec<f64>, ClientError> {
        if self.proto == WireProtocol::Binary {
            return match self.binary_round_trip(&BinRequest::Predict {
                model: model.into(),
                measured: measured.to_vec(),
            })? {
                BinResponse::Predicted { predicted } => Ok(predicted),
                other => Err(ClientError::Unexpected(format!("{other:?}"))),
            };
        }
        match self.round_trip(&Request::Predict {
            model: model.into(),
            measured: measured.to_vec(),
        })? {
            Response::Predicted { predicted } => Ok(predicted),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Predicts target delays for a batch of measurement vectors.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on an unknown model or wrong-length rows.
    pub fn predict_batch(
        &mut self,
        model: &str,
        measured: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, ClientError> {
        let width = measured.first().map_or(0, Vec::len);
        if self.proto == WireProtocol::Binary && measured.iter().all(|r| r.len() == width) {
            // Ragged batches (a caller error the daemon reports per-row)
            // cannot ride the rectangular binary layout; fall through to
            // JSON for those so the error text matches either way.
            return match self.binary_round_trip(&BinRequest::batch_from_rows(model, measured))? {
                BinResponse::PredictedBatch { rows, cols, data } => Ok(if cols == 0 {
                    vec![Vec::new(); rows]
                } else {
                    data.chunks(cols).map(<[f64]>::to_vec).collect()
                }),
                other => Err(ClientError::Unexpected(format!("{other:?}"))),
            };
        }
        match self.round_trip(&Request::PredictBatch {
            model: model.into(),
            measured: measured.to_vec(),
        })? {
            Response::PredictedBatch { predicted } => Ok(predicted),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the daemon's lifetime statistics.
    ///
    /// # Errors
    ///
    /// Protocol failures only.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the daemon to write its flight-recorder ring to disk (on the
    /// daemon's host); `path: None` uses the daemon's configured dump
    /// path. Returns `(path, records, dropped)`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the daemon cannot write the file.
    pub fn dump_flight(
        &mut self,
        path: Option<&str>,
    ) -> Result<(String, u64, u64), ClientError> {
        match self.round_trip(&Request::DumpFlight {
            path: path.map(str::to_owned),
        })? {
            Response::FlightDumped {
                path,
                records,
                dropped,
            } => Ok((path, records, dropped)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Injects an artificial per-batch slowdown of `slowdown_ms`
    /// milliseconds (`0` restores health). The daemon refuses unless it
    /// was started with `--allow-fault`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when fault injection is disabled.
    pub fn set_fault(&mut self, slowdown_ms: u64) -> Result<u64, ClientError> {
        match self.round_trip(&Request::SetFault { slowdown_ms })? {
            Response::FaultSet { slowdown_ms } => Ok(slowdown_ms),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Protocol failures only.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
