//! Stitching Chrome traces from several processes into one file.
//!
//! With `PATHREP_OBS_TRACE` set on both sides, the client and the daemon
//! each export their own Chrome trace (`pathrep_obs::trace`). Because the
//! wire protocol propagates [`crate::protocol::TraceContext`], the spans
//! of one logical request carry the same `trace_id` in *both* files —
//! stitching them into a single array lets `chrome://tracing` /
//! Perfetto show the client-side wait and the daemon-side handling
//! together, correlated by the `args.trace_id` field.
//!
//! Timestamps are **not** rebased: each process's `ts` values come from
//! its own monotonic epoch, so absolute offsets between processes are
//! meaningless; the per-process ordering (and therefore B/E nesting) is
//! preserved exactly. Correlate across processes by `trace_id`, not by
//! wall-clock.

use pathrep_obs::json::{parse, JsonValue};

/// Merges Chrome trace arrays into one, preserving each input's event
/// order (so begin/end nesting stays balanced per thread) and tagging
/// every event's `pid` with the input's index to keep processes distinct
/// even when both traces used the same pid.
///
/// # Errors
///
/// A human-readable message naming the offending input when one is not a
/// JSON array of objects.
pub fn stitch_traces(inputs: &[(String, String)]) -> Result<String, String> {
    let mut merged: Vec<JsonValue> = Vec::new();
    for (idx, (name, content)) in inputs.iter().enumerate() {
        let v = parse(content).map_err(|e| format!("{name}: {e}"))?;
        let events = v
            .array()
            .map_err(|e| format!("{name}: expected a Chrome trace array: {e}"))?;
        for ev in events {
            merged.push(retag_pid(ev, idx as f64).map_err(|e| format!("{name}: {e}"))?);
        }
    }
    let body: Vec<String> = merged.iter().map(JsonValue::render).collect();
    Ok(format!("[{}]\n", body.join(",\n")))
}

/// Replaces the event's `pid` with `process` (the input file's index) so
/// viewers lay each source process out on its own track.
fn retag_pid(event: &JsonValue, process: f64) -> Result<JsonValue, String> {
    match event {
        JsonValue::Object(fields) => {
            let mut out = Vec::with_capacity(fields.len() + 1);
            let mut seen = false;
            for (k, v) in fields {
                if k == "pid" {
                    out.push((k.clone(), JsonValue::Number(process)));
                    seen = true;
                } else {
                    out.push((k.clone(), v.clone()));
                }
            }
            if !seen {
                out.push(("pid".to_owned(), JsonValue::Number(process)));
            }
            Ok(JsonValue::Object(out))
        }
        _ => Err("trace event is not a JSON object".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stitching_preserves_order_and_retags_pids() {
        let a = r#"[{"name":"client.predict","ph":"B","ts":1,"pid":7,"tid":1,
                     "args":{"trace_id":42,"request_seq":0}},
                    {"name":"client.predict","ph":"E","ts":9,"pid":7,"tid":1}]"#
            .replace('\n', "");
        let b = r#"[{"name":"serve.request","ph":"B","ts":100,"pid":7,"tid":3,
                     "args":{"trace_id":42,"request_seq":0}},
                    {"name":"serve.request","ph":"E","ts":105,"pid":7,"tid":3}]"#
            .replace('\n', "");
        let merged =
            stitch_traces(&[("a".into(), a), ("b".into(), b)]).expect("stitch succeeds");
        let events = parse(&merged).unwrap();
        let events = events.array().unwrap();
        assert_eq!(events.len(), 4);
        // Per-file order preserved: B before E within each source.
        let phases: Vec<String> = events
            .iter()
            .map(|e| e.field("ph").unwrap().string().unwrap())
            .collect();
        assert_eq!(phases, ["B", "E", "B", "E"]);
        // pids retagged by input index; both files shared pid 7 on disk.
        let pids: Vec<f64> = events
            .iter()
            .map(|e| e.field("pid").unwrap().number().unwrap())
            .collect();
        assert_eq!(pids, [0.0, 0.0, 1.0, 1.0]);
        // The shared trace_id survives for cross-process correlation.
        let tid0 = events[0].field("args").unwrap().field("trace_id").unwrap();
        let tid2 = events[2].field("args").unwrap().field("trace_id").unwrap();
        assert_eq!(tid0.number().unwrap(), tid2.number().unwrap());
    }

    #[test]
    fn stitching_rejects_non_arrays() {
        let err = stitch_traces(&[("bad.json".into(), "{\"a\":1}".into())]).unwrap_err();
        assert!(err.contains("bad.json"), "{err}");
    }
}
