//! Versioned, checksummed model artifacts: the persistence format that
//! turns a one-shot selection run into a servable asset.
//!
//! An artifact file is a single header line followed by a canonical JSON
//! body:
//!
//! ```text
//! PATHREP-ARTIFACT v1 len:<body bytes> fnv1a64:<16 hex digits>\n
//! {"schema_version":1,"label":…,"selection":…,"guard_band_phi":…,"predictor":…}
//! ```
//!
//! The body is rendered through [`pathrep_obs::json`], whose number
//! formatter round-trips every finite `f64` exactly (17 significant
//! digits), so save → load → predict is bit-identical to predicting with
//! the in-memory model. Rendering is fully deterministic — same model,
//! same bytes — which is what the committed golden artifact's
//! byte-stability test pins down.
//!
//! The FNV-1a 64 digest of the body doubles as the **model id**: clients
//! address models by content, so a daemon can never silently serve a
//! different model under a stale name. Every failure mode is a typed
//! [`ArtifactError`]; version skew, truncation and corruption are told
//! apart instead of collapsing into a generic parse error.

use pathrep_core::predictor::MeasurementPredictor;
use pathrep_linalg::Matrix;
use pathrep_obs::json::{self, JsonValue};
use std::fmt;
use std::io::{Read, Write};

/// Version stamped in both the header line and the body; bump on any
/// incompatible change to the layout or the meaning of a stored field.
pub const ARTIFACT_SCHEMA_VERSION: u64 = 1;

/// Leading magic of the header line.
pub const ARTIFACT_MAGIC: &str = "PATHREP-ARTIFACT";

/// Everything that can go wrong reading or writing an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file-system failure.
    Io(std::io::Error),
    /// The file ends before the declared body length.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The header or body is not well-formed.
    Corrupt(String),
    /// The artifact was written by an incompatible schema version.
    VersionMismatch {
        /// Version found in the file.
        found: u64,
        /// Version this library reads.
        supported: u64,
    },
    /// The body does not hash to the id in the header — bit rot or a
    /// hand-edited file.
    ChecksumMismatch {
        /// Digest declared in the header.
        expected: String,
        /// Digest of the bytes actually read.
        computed: String,
    },
    /// The stored numbers do not assemble into a valid predictor.
    InvalidModel(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::Truncated { expected, got } => write!(
                f,
                "artifact truncated: header declares {expected} body bytes, found {got}"
            ),
            ArtifactError::Corrupt(what) => write!(f, "artifact corrupt: {what}"),
            ArtifactError::VersionMismatch { found, supported } => write!(
                f,
                "artifact schema version {found} unsupported (this library reads {supported})"
            ),
            ArtifactError::ChecksumMismatch { expected, computed } => write!(
                f,
                "artifact checksum mismatch: header says {expected}, body hashes to {computed}"
            ),
            ArtifactError::InvalidModel(what) => write!(f, "artifact holds an invalid model: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// FNV-1a 64-bit digest — tiny, dependency-free, and plenty for
/// content-addressing artifacts against accidental corruption (this is an
/// integrity check, not a cryptographic seal).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How the representative set was chosen — the paper-side provenance a
/// post-silicon flow needs next to the raw coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionMeta {
    /// Requested tolerance ε (fraction of `T_cons`).
    pub epsilon: f64,
    /// Achieved worst-case error `ε_r`.
    pub epsilon_r: f64,
    /// Effective-rank energy threshold η.
    pub eta: f64,
    /// Numerical rank of the sensitivity matrix.
    pub rank: usize,
    /// Effective rank at η.
    pub effective_rank: usize,
    /// Timing constraint `T_cons` (ps).
    pub t_cons: f64,
    /// Indices of the representative (measured) paths.
    pub selected: Vec<usize>,
    /// Indices of the predicted paths, in predictor target order.
    pub remaining: Vec<usize>,
}

/// One servable model: the Theorem-2 predictor plus its selection
/// provenance and the guard-band `φ = ε_r·T_cons`.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// Human-readable workload label (e.g. `"quickstart"`).
    pub label: String,
    /// Selection provenance.
    pub selection: SelectionMeta,
    /// Guard-band `φ` in ps to add to predicted delays before a
    /// pass/fail verdict.
    pub guard_band_phi: f64,
    /// The predictor itself.
    pub predictor: MeasurementPredictor,
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn nums(v: &[f64]) -> JsonValue {
    JsonValue::Array(v.iter().map(|&x| JsonValue::Number(x)).collect())
}

fn indices(v: &[usize]) -> JsonValue {
    JsonValue::Array(v.iter().map(|&x| JsonValue::Number(x as f64)).collect())
}

fn usize_field(v: &JsonValue, name: &str) -> Result<usize, ArtifactError> {
    let n = v
        .field(name)
        .and_then(|f| f.number())
        .map_err(ArtifactError::Corrupt)?;
    if n < 0.0 || n != n.trunc() {
        return Err(ArtifactError::Corrupt(format!(
            "field `{name}` must be a non-negative integer, got {n}"
        )));
    }
    Ok(n as usize)
}

fn num_field(v: &JsonValue, name: &str) -> Result<f64, ArtifactError> {
    v.field(name)
        .and_then(|f| f.number())
        .map_err(ArtifactError::Corrupt)
}

fn nums_field(v: &JsonValue, name: &str) -> Result<Vec<f64>, ArtifactError> {
    v.field(name)
        .and_then(|f| f.number_array())
        .map_err(ArtifactError::Corrupt)
}

fn index_field(v: &JsonValue, name: &str) -> Result<Vec<usize>, ArtifactError> {
    let raw = nums_field(v, name)?;
    raw.iter()
        .map(|&n| {
            if n < 0.0 || n != n.trunc() {
                Err(ArtifactError::Corrupt(format!(
                    "`{name}` entries must be non-negative integers, got {n}"
                )))
            } else {
                Ok(n as usize)
            }
        })
        .collect()
}

impl ModelArtifact {
    /// Renders the canonical JSON body (no header). Deterministic: field
    /// order is fixed and every number round-trips exactly.
    fn body_json(&self) -> String {
        let p = &self.predictor;
        let sel = &self.selection;
        JsonValue::Object(vec![
            (
                "schema_version".into(),
                JsonValue::Number(ARTIFACT_SCHEMA_VERSION as f64),
            ),
            ("label".into(), JsonValue::String(self.label.clone())),
            (
                "selection".into(),
                JsonValue::Object(vec![
                    ("epsilon".into(), num(sel.epsilon)),
                    ("epsilon_r".into(), num(sel.epsilon_r)),
                    ("eta".into(), num(sel.eta)),
                    ("rank".into(), num(sel.rank as f64)),
                    ("effective_rank".into(), num(sel.effective_rank as f64)),
                    ("t_cons".into(), num(sel.t_cons)),
                    ("selected".into(), indices(&sel.selected)),
                    ("remaining".into(), indices(&sel.remaining)),
                ]),
            ),
            ("guard_band_phi".into(), num(self.guard_band_phi)),
            (
                "predictor".into(),
                JsonValue::Object(vec![
                    ("kappa".into(), num(p.kappa())),
                    ("targets".into(), num(p.target_count() as f64)),
                    ("measurements".into(), num(p.measurement_count() as f64)),
                    ("meas_mu".into(), nums(p.meas_mu())),
                    ("target_mu".into(), nums(p.target_mu())),
                    ("stds".into(), nums(p.stds())),
                    ("coef".into(), nums(p.coef().as_slice())),
                ]),
            ),
        ])
        .render()
    }

    /// Serializes to the on-disk byte format (header line + body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.body_json();
        let mut out = format!(
            "{ARTIFACT_MAGIC} v{ARTIFACT_SCHEMA_VERSION} len:{} fnv1a64:{:016x}\n",
            body.len(),
            fnv1a64(body.as_bytes())
        )
        .into_bytes();
        out.extend_from_slice(body.as_bytes());
        out
    }

    /// The content hash serving as the model id (16 lowercase hex digits).
    pub fn model_id(&self) -> String {
        format!("{:016x}", fnv1a64(self.body_json().as_bytes()))
    }

    /// Parses the byte format, verifying length, checksum, schema version
    /// and model validity. Returns the artifact and its model id.
    ///
    /// # Errors
    ///
    /// A typed [`ArtifactError`] naming the exact failure mode.
    pub fn from_bytes(bytes: &[u8]) -> Result<(Self, String), ArtifactError> {
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| ArtifactError::Corrupt("missing header line".into()))?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| ArtifactError::Corrupt("header is not UTF-8".into()))?;
        let mut parts = header.split(' ');
        let magic = parts.next().unwrap_or("");
        if magic != ARTIFACT_MAGIC {
            return Err(ArtifactError::Corrupt(format!(
                "bad magic `{magic}` (expected `{ARTIFACT_MAGIC}`)"
            )));
        }
        let version = parts
            .next()
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| ArtifactError::Corrupt("unreadable version field".into()))?;
        if version != ARTIFACT_SCHEMA_VERSION {
            return Err(ArtifactError::VersionMismatch {
                found: version,
                supported: ARTIFACT_SCHEMA_VERSION,
            });
        }
        let len = parts
            .next()
            .and_then(|v| v.strip_prefix("len:"))
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| ArtifactError::Corrupt("unreadable length field".into()))?;
        let declared = parts
            .next()
            .and_then(|v| v.strip_prefix("fnv1a64:"))
            .ok_or_else(|| ArtifactError::Corrupt("unreadable checksum field".into()))?
            .to_owned();
        let body = &bytes[newline + 1..];
        if body.len() < len {
            return Err(ArtifactError::Truncated {
                expected: len,
                got: body.len(),
            });
        }
        if body.len() > len {
            return Err(ArtifactError::Corrupt(format!(
                "{} trailing bytes after the declared body",
                body.len() - len
            )));
        }
        let computed = format!("{:016x}", fnv1a64(body));
        if computed != declared {
            return Err(ArtifactError::ChecksumMismatch {
                expected: declared,
                computed,
            });
        }
        let body = std::str::from_utf8(body)
            .map_err(|_| ArtifactError::Corrupt("body is not UTF-8".into()))?;
        let v = json::parse(body).map_err(ArtifactError::Corrupt)?;
        let body_version = usize_field(&v, "schema_version")? as u64;
        if body_version != ARTIFACT_SCHEMA_VERSION {
            return Err(ArtifactError::VersionMismatch {
                found: body_version,
                supported: ARTIFACT_SCHEMA_VERSION,
            });
        }
        let label = v
            .field("label")
            .and_then(|f| f.string())
            .map_err(ArtifactError::Corrupt)?;
        let sel = v.field("selection").map_err(ArtifactError::Corrupt)?;
        let selection = SelectionMeta {
            epsilon: num_field(sel, "epsilon")?,
            epsilon_r: num_field(sel, "epsilon_r")?,
            eta: num_field(sel, "eta")?,
            rank: usize_field(sel, "rank")?,
            effective_rank: usize_field(sel, "effective_rank")?,
            t_cons: num_field(sel, "t_cons")?,
            selected: index_field(sel, "selected")?,
            remaining: index_field(sel, "remaining")?,
        };
        let guard_band_phi = num_field(&v, "guard_band_phi")?;
        let p = v.field("predictor").map_err(ArtifactError::Corrupt)?;
        let targets = usize_field(p, "targets")?;
        let measurements = usize_field(p, "measurements")?;
        let coef_data = nums_field(p, "coef")?;
        if coef_data.len() != targets * measurements {
            return Err(ArtifactError::Corrupt(format!(
                "coef has {} entries, expected {targets}×{measurements}",
                coef_data.len()
            )));
        }
        let coef = Matrix::from_vec(targets, measurements, coef_data)
            .map_err(|e| ArtifactError::Corrupt(format!("coef matrix: {e}")))?;
        let predictor = MeasurementPredictor::from_parts(
            coef,
            nums_field(p, "meas_mu")?,
            nums_field(p, "target_mu")?,
            nums_field(p, "stds")?,
            num_field(p, "kappa")?,
        )
        .map_err(|e| ArtifactError::InvalidModel(e.to_string()))?;
        let artifact = ModelArtifact {
            label,
            selection,
            guard_band_phi,
            predictor,
        };
        Ok((artifact, computed))
    }

    /// Writes the artifact to `path`, returning its model id.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on any file-system failure.
    pub fn save(&self, path: &str) -> Result<String, ArtifactError> {
        let bytes = self.to_bytes();
        let mut file = std::fs::File::create(path)?;
        file.write_all(&bytes)?;
        Ok(self.model_id())
    }

    /// Reads and validates the artifact at `path`, returning it and its
    /// model id.
    ///
    /// # Errors
    ///
    /// A typed [`ArtifactError`] naming the exact failure mode.
    pub fn load(path: &str) -> Result<(Self, String), ArtifactError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrep_linalg::Matrix;

    fn sample_artifact() -> ModelArtifact {
        let coef = Matrix::from_fn(3, 2, |i, j| ((i * 2 + j) as f64 * 0.3).sin() * 2.0);
        let predictor = MeasurementPredictor::from_parts(
            coef,
            vec![101.25, 99.5],
            vec![100.0, 102.5, 98.75],
            vec![0.5, 0.25, 1.0 / 3.0],
            3.0,
        )
        .unwrap();
        ModelArtifact {
            label: "unit".into(),
            selection: SelectionMeta {
                epsilon: 0.05,
                epsilon_r: 0.03,
                eta: 0.05,
                rank: 3,
                effective_rank: 2,
                t_cons: 110.0,
                selected: vec![1, 4],
                remaining: vec![0, 2, 3],
            },
            guard_band_phi: 3.3,
            predictor,
        }
    }

    #[test]
    fn round_trip_is_bit_exact_and_deterministic() {
        let art = sample_artifact();
        let bytes = art.to_bytes();
        assert_eq!(bytes, art.to_bytes(), "serialization must be deterministic");
        let (back, id) = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(id, art.model_id());
        assert_eq!(back.label, art.label);
        assert_eq!(back.selection, art.selection);
        assert_eq!(back.guard_band_phi.to_bits(), art.guard_band_phi.to_bits());
        let m = [101.5, 99.0];
        let a = art.predictor.predict(&m).unwrap();
        let b = back.predictor.predict(&m).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "load must not perturb a bit");
        }
    }

    #[test]
    fn corruption_modes_are_told_apart() {
        let art = sample_artifact();
        let bytes = art.to_bytes();
        // Truncation.
        let cut = &bytes[..bytes.len() - 5];
        assert!(matches!(
            ModelArtifact::from_bytes(cut),
            Err(ArtifactError::Truncated { .. })
        ));
        // Bit rot in the body.
        let mut rotten = bytes.clone();
        let last = rotten.len() - 1;
        rotten[last] ^= 0x01;
        assert!(matches!(
            ModelArtifact::from_bytes(&rotten),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        // Version skew (header).
        let text = String::from_utf8(bytes.clone()).unwrap();
        let skewed = text.replacen("v1 ", "v9 ", 1);
        assert!(matches!(
            ModelArtifact::from_bytes(skewed.as_bytes()),
            Err(ArtifactError::VersionMismatch { found: 9, .. })
        ));
        // Not an artifact at all.
        assert!(matches!(
            ModelArtifact::from_bytes(b"GARBAGE v1\n{}"),
            Err(ArtifactError::Corrupt(_))
        ));
        assert!(matches!(
            ModelArtifact::from_bytes(b"no newline at all"),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn invalid_model_is_rejected_after_checksum_passes() {
        let art = sample_artifact();
        // Rewrite kappa to an invalid value and re-seal the checksum, so
        // only the model validation can catch it.
        let body = String::from_utf8(art.to_bytes()).unwrap();
        let body = body.split_once('\n').unwrap().1.replace(
            "\"kappa\":3",
            "\"kappa\":0",
        );
        let resealed = format!(
            "{ARTIFACT_MAGIC} v{ARTIFACT_SCHEMA_VERSION} len:{} fnv1a64:{:016x}\n{}",
            body.len(),
            fnv1a64(body.as_bytes()),
            body
        );
        assert!(matches!(
            ModelArtifact::from_bytes(resealed.as_bytes()),
            Err(ArtifactError::InvalidModel(_))
        ));
    }

    #[test]
    fn model_id_tracks_content() {
        let a = sample_artifact();
        let mut b = sample_artifact();
        assert_eq!(a.model_id(), b.model_id());
        b.guard_band_phi += 0.5;
        assert_ne!(a.model_id(), b.model_id());
    }
}
