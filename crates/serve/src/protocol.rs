//! The length-prefixed JSON wire protocol between `pathrep-client` and the
//! `pathrep-serve` daemon.
//!
//! Every frame is a 4-byte big-endian length followed by that many bytes
//! of UTF-8 JSON — trivially parseable from any language, no async
//! machinery required. Numbers travel through [`pathrep_obs::json`], whose
//! formatter round-trips every finite `f64` exactly; predictions received
//! over the wire are therefore byte-identical to the server's in-memory
//! results, which the soak gate and the determinism tests rely on.
//!
//! Requests carry a `"type"` tag (`load_model`, `predict`,
//! `predict_batch`, `stats`, `dump_flight`, `set_fault`, `shutdown`);
//! responses mirror it (`loaded`, `predicted`, `predicted_batch`,
//! `stats`, `flight_dumped`, `fault_set`, `shutting_down`, `error`).
//! `dump_flight` asks the daemon to write its flight-recorder ring
//! ([`pathrep_obs::flight`]) to disk for post-mortem analysis;
//! `set_fault` injects an artificial batcher slowdown and is only
//! honoured when the daemon was started with `--allow-fault` (it exists
//! for the observability gate, not for production).
//!
//! ## Trace context (optional, backward-compatible)
//!
//! A frame may additionally carry top-level `trace_id` and `request_seq`
//! fields ([`TraceContext`]) correlating client and server telemetry for
//! one request. The fields are **additive**: decoding ignores unknown
//! fields, so an old server accepts traced frames, and
//! [`Request::decode_with_trace`] treats their absence as "no context"
//! (the server then generates an id). [`Request::encode`] without a
//! context renders byte-identically to the pre-trace protocol. Ids are
//! carried as JSON numbers and must stay below 2⁵³ to survive the `f64`
//! round trip; both sides allocate well under that.

use pathrep_obs::json::{self, JsonValue};
use std::io::{Read, Write};

pub use pathrep_obs::trace::TraceContext;

/// Upper bound on a single frame; anything larger is a protocol error,
/// not an allocation request (protects the daemon from garbage bytes).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A client → server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Load (or re-validate) the artifact at `path` on the server host.
    LoadModel {
        /// Artifact path as seen by the daemon.
        path: String,
    },
    /// Predict target delays from one measurement vector.
    Predict {
        /// Content-hash model id returned by `LoadModel`.
        model: String,
        /// Measured delays, in the artifact's `selected` order.
        measured: Vec<f64>,
    },
    /// Predict for several measurement vectors in one request.
    PredictBatch {
        /// Content-hash model id returned by `LoadModel`.
        model: String,
        /// One measurement vector per row.
        measured: Vec<Vec<f64>>,
    },
    /// Fetch the daemon's lifetime statistics.
    Stats,
    /// Write the daemon's flight-recorder ring to disk as a balanced
    /// Chrome trace (see [`pathrep_obs::flight::dump_to`]).
    DumpFlight {
        /// Destination path on the daemon's host; `None` uses the
        /// daemon's configured dump path (`PATHREP_OBS_FLIGHT_DUMP`).
        path: Option<String>,
    },
    /// Inject an artificial per-batch slowdown of `slowdown_ms`
    /// milliseconds into the batcher (`0` clears it). Refused unless the
    /// daemon runs with `--allow-fault`.
    SetFault {
        /// Milliseconds to sleep per drained batch; `0` restores health.
        slowdown_ms: u64,
    },
    /// Drain the queue, stop accepting connections and exit.
    Shutdown,
}

/// Lifetime statistics reported by [`Response::Stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Requests received (all kinds).
    pub requests: u64,
    /// Individual prediction rows computed.
    pub predictions: u64,
    /// Batched kernel invocations (≤ predictions; smaller when
    /// micro-batching coalesced concurrent requests).
    pub batches: u64,
    /// Largest batch coalesced so far.
    pub max_batch: u64,
    /// Successful artifact loads.
    pub model_loads: u64,
    /// Predict requests served from the LRU cache.
    pub cache_hits: u64,
    /// Predict requests that missed the cache.
    pub cache_misses: u64,
    /// Requests answered with [`Response::Error`].
    pub errors: u64,
    /// High-water mark of the prediction queue depth.
    pub queue_high_water: u64,
    /// Models currently resident in the cache.
    pub models_cached: u64,
}

/// A server → client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Artifact loaded (or already resident); echoes its identity.
    Loaded {
        /// Content-hash model id.
        model: String,
        /// Artifact label.
        label: String,
        /// Number of predicted targets.
        targets: usize,
        /// Number of required measurements.
        measurements: usize,
    },
    /// Predicted target delays for one measurement vector.
    Predicted {
        /// One delay per target, in artifact `remaining` order.
        predicted: Vec<f64>,
    },
    /// Predicted target delays for a batch.
    PredictedBatch {
        /// One row per request row.
        predicted: Vec<Vec<f64>>,
    },
    /// Daemon statistics.
    Stats(ServerStats),
    /// Flight-recorder ring written to disk.
    FlightDumped {
        /// Path the dump landed at (on the daemon's host).
        path: String,
        /// Records written (after balance repair source records).
        records: u64,
        /// Ring records overwritten (lost) before the dump.
        dropped: u64,
    },
    /// Fault injection acknowledged.
    FaultSet {
        /// The now-active per-batch slowdown (0 = healthy).
        slowdown_ms: u64,
    },
    /// Shutdown acknowledged; the daemon drains and exits.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// Any protocol-layer failure.
#[derive(Debug)]
pub enum ProtocolError {
    /// Socket failure.
    Io(std::io::Error),
    /// A frame that is not valid UTF-8 JSON of the expected shape.
    Malformed(String),
    /// A frame larger than [`MAX_FRAME_BYTES`].
    Oversized(usize),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol I/O error: {e}"),
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtocolError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`ProtocolError::Io`] on socket failure, [`ProtocolError::Oversized`]
/// if the payload exceeds [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), ProtocolError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized(bytes.len()));
    }
    // One write per frame: a separate 4-byte prefix write would interact
    // with Nagle's algorithm + delayed ACK into ~40 ms stalls per request
    // on a request/response workload.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection).
///
/// # Errors
///
/// [`ProtocolError::Io`] on socket failure or mid-frame EOF,
/// [`ProtocolError::Oversized`] on an over-limit length prefix,
/// [`ProtocolError::Malformed`] on non-UTF-8 payload.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        mut n => {
            while n < 4 {
                let got = r.read(&mut len_buf[n..])?;
                if got == 0 {
                    return Err(ProtocolError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "EOF inside a frame length prefix",
                    )));
                }
                n += got;
            }
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| ProtocolError::Malformed("frame payload is not UTF-8".into()))
}

fn floats(v: &[f64]) -> JsonValue {
    JsonValue::Array(v.iter().map(|&x| JsonValue::Number(x)).collect())
}

fn str_field(v: &JsonValue, name: &str) -> Result<String, ProtocolError> {
    v.field(name)
        .and_then(|f| f.string())
        .map_err(ProtocolError::Malformed)
}

fn floats_field(v: &JsonValue, name: &str) -> Result<Vec<f64>, ProtocolError> {
    v.field(name)
        .and_then(|f| f.number_array())
        .map_err(ProtocolError::Malformed)
}

fn u64_field(v: &JsonValue, name: &str) -> Result<u64, ProtocolError> {
    v.field(name)
        .and_then(|f| f.number())
        .map(|n| n as u64)
        .map_err(ProtocolError::Malformed)
}

/// Appends the optional trace-context fields to an encoded object and
/// renders it.
fn render_with_trace(mut v: JsonValue, trace: Option<TraceContext>) -> String {
    if let (JsonValue::Object(fields), Some(t)) = (&mut v, trace) {
        fields.push(("trace_id".into(), JsonValue::Number(t.trace_id as f64)));
        fields.push((
            "request_seq".into(),
            JsonValue::Number(t.request_seq as f64),
        ));
    }
    v.render()
}

/// Extracts the optional trace context from a parsed frame: `None` when
/// the peer predates (or chose not to send) the trace fields. A
/// `trace_id` without `request_seq` defaults the sequence to 0.
fn trace_from_value(v: &JsonValue) -> Option<TraceContext> {
    let trace_id = v.field("trace_id").ok()?.number().ok()? as u64;
    let request_seq = v
        .field("request_seq")
        .ok()
        .and_then(|f| f.number().ok())
        .unwrap_or(0.0) as u64;
    Some(TraceContext {
        trace_id,
        request_seq,
    })
}

impl Request {
    /// Renders the request as one JSON frame payload (no trace context;
    /// byte-identical to the pre-trace protocol).
    pub fn encode(&self) -> String {
        self.to_value().render()
    }

    /// Renders the request with an optional [`TraceContext`] envelope.
    pub fn encode_with_trace(&self, trace: Option<TraceContext>) -> String {
        render_with_trace(self.to_value(), trace)
    }

    fn to_value(&self) -> JsonValue {
        match self {
            Request::LoadModel { path } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("load_model".into())),
                ("path".into(), JsonValue::String(path.clone())),
            ]),
            Request::Predict { model, measured } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("predict".into())),
                ("model".into(), JsonValue::String(model.clone())),
                ("measured".into(), floats(measured)),
            ]),
            Request::PredictBatch { model, measured } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("predict_batch".into())),
                ("model".into(), JsonValue::String(model.clone())),
                (
                    "measured".into(),
                    JsonValue::Array(measured.iter().map(|row| floats(row)).collect()),
                ),
            ]),
            Request::Stats => JsonValue::Object(vec![(
                "type".into(),
                JsonValue::String("stats".into()),
            )]),
            Request::DumpFlight { path } => {
                let mut fields = vec![(
                    "type".to_owned(),
                    JsonValue::String("dump_flight".into()),
                )];
                if let Some(p) = path {
                    fields.push(("path".into(), JsonValue::String(p.clone())));
                }
                JsonValue::Object(fields)
            }
            Request::SetFault { slowdown_ms } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("set_fault".into())),
                (
                    "slowdown_ms".into(),
                    JsonValue::Number(*slowdown_ms as f64),
                ),
            ]),
            Request::Shutdown => JsonValue::Object(vec![(
                "type".into(),
                JsonValue::String("shutdown".into()),
            )]),
        }
    }

    /// Parses a request frame payload, dropping any trace context.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on unknown type or missing fields.
    pub fn decode(payload: &str) -> Result<Self, ProtocolError> {
        Self::decode_with_trace(payload).map(|(req, _)| req)
    }

    /// Parses a request frame payload together with its optional
    /// [`TraceContext`] (absent on frames from pre-trace clients).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on unknown type or missing fields.
    pub fn decode_with_trace(
        payload: &str,
    ) -> Result<(Self, Option<TraceContext>), ProtocolError> {
        let v = json::parse(payload).map_err(ProtocolError::Malformed)?;
        let trace = trace_from_value(&v);
        Self::from_value(&v).map(|req| (req, trace))
    }

    fn from_value(v: &JsonValue) -> Result<Self, ProtocolError> {
        let kind = str_field(v, "type")?;
        match kind.as_str() {
            "load_model" => Ok(Request::LoadModel {
                path: str_field(v, "path")?,
            }),
            "predict" => Ok(Request::Predict {
                model: str_field(v, "model")?,
                measured: floats_field(v, "measured")?,
            }),
            "predict_batch" => {
                let rows = v
                    .field("measured")
                    .and_then(|f| f.array().map(<[JsonValue]>::to_vec))
                    .map_err(ProtocolError::Malformed)?;
                let measured = rows
                    .iter()
                    .map(|row| row.number_array().map_err(ProtocolError::Malformed))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::PredictBatch {
                    model: str_field(v, "model")?,
                    measured,
                })
            }
            "stats" => Ok(Request::Stats),
            "dump_flight" => Ok(Request::DumpFlight {
                path: v.field("path").ok().and_then(|f| f.string().ok()),
            }),
            "set_fault" => Ok(Request::SetFault {
                slowdown_ms: u64_field(v, "slowdown_ms")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::Malformed(format!(
                "unknown request type `{other}`"
            ))),
        }
    }
}

impl ServerStats {
    fn to_json(&self) -> JsonValue {
        let int = |v: u64| JsonValue::Number(v as f64);
        JsonValue::Object(vec![
            ("requests".into(), int(self.requests)),
            ("predictions".into(), int(self.predictions)),
            ("batches".into(), int(self.batches)),
            ("max_batch".into(), int(self.max_batch)),
            ("model_loads".into(), int(self.model_loads)),
            ("cache_hits".into(), int(self.cache_hits)),
            ("cache_misses".into(), int(self.cache_misses)),
            ("errors".into(), int(self.errors)),
            ("queue_high_water".into(), int(self.queue_high_water)),
            ("models_cached".into(), int(self.models_cached)),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, ProtocolError> {
        Ok(ServerStats {
            requests: u64_field(v, "requests")?,
            predictions: u64_field(v, "predictions")?,
            batches: u64_field(v, "batches")?,
            max_batch: u64_field(v, "max_batch")?,
            model_loads: u64_field(v, "model_loads")?,
            cache_hits: u64_field(v, "cache_hits")?,
            cache_misses: u64_field(v, "cache_misses")?,
            errors: u64_field(v, "errors")?,
            queue_high_water: u64_field(v, "queue_high_water")?,
            models_cached: u64_field(v, "models_cached")?,
        })
    }
}

impl Response {
    /// Renders the response as one JSON frame payload (no trace context;
    /// byte-identical to the pre-trace protocol).
    pub fn encode(&self) -> String {
        self.to_value().render()
    }

    /// Renders the response with an optional [`TraceContext`] envelope
    /// (the server echoes the request's effective context).
    pub fn encode_with_trace(&self, trace: Option<TraceContext>) -> String {
        render_with_trace(self.to_value(), trace)
    }

    fn to_value(&self) -> JsonValue {
        match self {
            Response::Loaded {
                model,
                label,
                targets,
                measurements,
            } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("loaded".into())),
                ("model".into(), JsonValue::String(model.clone())),
                ("label".into(), JsonValue::String(label.clone())),
                ("targets".into(), JsonValue::Number(*targets as f64)),
                (
                    "measurements".into(),
                    JsonValue::Number(*measurements as f64),
                ),
            ]),
            Response::Predicted { predicted } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("predicted".into())),
                ("predicted".into(), floats(predicted)),
            ]),
            Response::PredictedBatch { predicted } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("predicted_batch".into())),
                (
                    "predicted".into(),
                    JsonValue::Array(predicted.iter().map(|row| floats(row)).collect()),
                ),
            ]),
            Response::Stats(stats) => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("stats".into())),
                ("stats".into(), stats.to_json()),
            ]),
            Response::FlightDumped {
                path,
                records,
                dropped,
            } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("flight_dumped".into())),
                ("path".into(), JsonValue::String(path.clone())),
                ("records".into(), JsonValue::Number(*records as f64)),
                ("dropped".into(), JsonValue::Number(*dropped as f64)),
            ]),
            Response::FaultSet { slowdown_ms } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("fault_set".into())),
                (
                    "slowdown_ms".into(),
                    JsonValue::Number(*slowdown_ms as f64),
                ),
            ]),
            Response::ShuttingDown => JsonValue::Object(vec![(
                "type".into(),
                JsonValue::String("shutting_down".into()),
            )]),
            Response::Error { message } => JsonValue::Object(vec![
                ("type".into(), JsonValue::String("error".into())),
                ("message".into(), JsonValue::String(message.clone())),
            ]),
        }
    }

    /// Parses a response frame payload, dropping any trace context.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on unknown type or missing fields.
    pub fn decode(payload: &str) -> Result<Self, ProtocolError> {
        Self::decode_with_trace(payload).map(|(resp, _)| resp)
    }

    /// Parses a response frame payload together with the server's echoed
    /// [`TraceContext`] (absent on frames from pre-trace servers).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on unknown type or missing fields.
    pub fn decode_with_trace(
        payload: &str,
    ) -> Result<(Self, Option<TraceContext>), ProtocolError> {
        let v = json::parse(payload).map_err(ProtocolError::Malformed)?;
        let trace = trace_from_value(&v);
        Self::from_value(&v).map(|resp| (resp, trace))
    }

    fn from_value(v: &JsonValue) -> Result<Self, ProtocolError> {
        let kind = str_field(v, "type")?;
        match kind.as_str() {
            "loaded" => Ok(Response::Loaded {
                model: str_field(v, "model")?,
                label: str_field(v, "label")?,
                targets: u64_field(v, "targets")? as usize,
                measurements: u64_field(v, "measurements")? as usize,
            }),
            "predicted" => Ok(Response::Predicted {
                predicted: floats_field(v, "predicted")?,
            }),
            "predicted_batch" => {
                let rows = v
                    .field("predicted")
                    .and_then(|f| f.array().map(<[JsonValue]>::to_vec))
                    .map_err(ProtocolError::Malformed)?;
                let predicted = rows
                    .iter()
                    .map(|row| row.number_array().map_err(ProtocolError::Malformed))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::PredictedBatch { predicted })
            }
            "stats" => Ok(Response::Stats(ServerStats::from_json(
                v.field("stats").map_err(ProtocolError::Malformed)?,
            )?)),
            "flight_dumped" => Ok(Response::FlightDumped {
                path: str_field(v, "path")?,
                records: u64_field(v, "records")?,
                dropped: u64_field(v, "dropped")?,
            }),
            "fault_set" => Ok(Response::FaultSet {
                slowdown_ms: u64_field(v, "slowdown_ms")?,
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                message: str_field(v, "message")?,
            }),
            other => Err(ProtocolError::Malformed(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::LoadModel {
                path: "/tmp/m.artifact".into(),
            },
            Request::Predict {
                model: "deadbeef00112233".into(),
                measured: vec![101.5, 1.0 / 3.0, -2.25],
            },
            Request::PredictBatch {
                model: "deadbeef00112233".into(),
                measured: vec![vec![1.0, 2.0], vec![0.1, 0.2]],
            },
            Request::Stats,
            Request::DumpFlight { path: None },
            Request::DumpFlight {
                path: Some("/tmp/flight.json".into()),
            },
            Request::SetFault { slowdown_ms: 25 },
            Request::SetFault { slowdown_ms: 0 },
            Request::Shutdown,
        ];
        for req in cases {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip_with_exact_floats() {
        let tricky = vec![1.0 / 3.0, 6.02214076e23, -1.25e-12, 98.7654321];
        let cases = [
            Response::Loaded {
                model: "a".repeat(16),
                label: "quickstart".into(),
                targets: 3,
                measurements: 2,
            },
            Response::Predicted {
                predicted: tricky.clone(),
            },
            Response::PredictedBatch {
                predicted: vec![tricky, vec![0.0]],
            },
            Response::Stats(ServerStats {
                requests: 10,
                predictions: 9,
                batches: 3,
                max_batch: 4,
                model_loads: 1,
                cache_hits: 8,
                cache_misses: 1,
                errors: 0,
                queue_high_water: 5,
                models_cached: 1,
            }),
            Response::FlightDumped {
                path: "flight_1234.json".into(),
                records: 4096,
                dropped: 17,
            },
            Response::FaultSet { slowdown_ms: 25 },
            Response::ShuttingDown,
            Response::Error {
                message: "no such model".into(),
            },
        ];
        for resp in cases {
            let back = Response::decode(&resp.encode()).unwrap();
            assert_eq!(back, resp);
            if let (Response::Predicted { predicted: a }, Response::Predicted { predicted: b }) =
                (&resp, &back)
            {
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "wire transport must be bit-exact");
                }
            }
        }
    }

    #[test]
    fn frames_round_trip_over_a_byte_pipe() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "first").unwrap();
        write_frame(&mut buf, "second frame").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("first"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("second frame"));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // Mid-frame EOF is an error, not a silent None.
        let mut cut = &buf[..6];
        assert!(matches!(read_frame(&mut cut), Err(ProtocolError::Io(_))));
        // Oversized length prefix is rejected before allocation.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(ProtocolError::Oversized(_))
        ));
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        assert!(Request::decode("{}").is_err());
        assert!(Request::decode("{\"type\":\"nope\"}").is_err());
        assert!(Response::decode("not json").is_err());
    }

    #[test]
    fn untraced_frames_are_byte_identical_to_the_old_protocol() {
        // The exact payload an old client produced and an old server
        // expects (non-integer floats render in the 17-digit exact
        // round-trip form): encode() must keep emitting it, and a frame
        // without the trace fields must decode to (request, None).
        let req = Request::Predict {
            model: "deadbeef00112233".into(),
            measured: vec![101.5, -2.25],
        };
        let old_payload = "{\"type\":\"predict\",\"model\":\"deadbeef00112233\",\
             \"measured\":[1.01500000000000000e2,-2.25000000000000000e0]}";
        assert_eq!(req.encode(), old_payload);
        assert_eq!(req.encode_with_trace(None), old_payload);
        let (back, trace) = Request::decode_with_trace(old_payload).unwrap();
        assert_eq!(back, req);
        assert_eq!(trace, None, "absent trace fields mean no context");

        let resp = Response::Predicted {
            predicted: vec![1.0 / 3.0],
        };
        assert_eq!(resp.encode_with_trace(None), resp.encode());
        let (rback, rtrace) = Response::decode_with_trace(&resp.encode()).unwrap();
        assert_eq!((rback, rtrace), (resp, None));
    }

    #[test]
    fn traced_frames_round_trip_and_old_peers_ignore_them() {
        let ctx = TraceContext {
            trace_id: (7 << 32) | 12,
            request_seq: 12,
        };
        let req = Request::Stats;
        let payload = req.encode_with_trace(Some(ctx));
        // New server: request + context both recovered.
        let (back, trace) = Request::decode_with_trace(&payload).unwrap();
        assert_eq!((back, trace), (Request::Stats, Some(ctx)));
        // Old server (pre-trace decode path): unknown fields are ignored
        // and the request parses exactly as before.
        assert_eq!(Request::decode(&payload).unwrap(), Request::Stats);

        let resp = Response::ShuttingDown;
        let echoed = resp.encode_with_trace(Some(ctx));
        let (rback, rtrace) = Response::decode_with_trace(&echoed).unwrap();
        assert_eq!((rback, rtrace), (Response::ShuttingDown, Some(ctx)));
        assert_eq!(Response::decode(&echoed).unwrap(), Response::ShuttingDown);
    }
}
