//! The quickstart (paper Figure 1) model as a servable artifact, plus a
//! deterministic chip-measurement generator — shared by the golden
//! byte-stability test, the end-to-end serving tests, the `serving`
//! example, and the `pathrep-client` load generator, so every consumer
//! exercises *the same* model the README quickstart builds.

use crate::artifact::{ModelArtifact, SelectionMeta};
use pathrep_circuit::cell::{CellKind, CellLibrary};
use pathrep_circuit::generator::PlacedCircuit;
use pathrep_circuit::netlist::{Netlist, Signal};
use pathrep_circuit::paths::{decompose_into_segments, Path};
use pathrep_circuit::placement::Placement;
use pathrep_core::approx::{approx_select, ApproxConfig};
use pathrep_variation::model::VariationModel;
use pathrep_variation::sampler::VariationSampler;
use pathrep_variation::sensitivity::DelayModel;
use std::error::Error;

/// Seed shared with `examples/quickstart.rs` — the demo artifact *is* the
/// quickstart model.
pub const DEMO_SEED: u64 = 2024;

/// The quickstart model with enough context to fabricate virtual chips.
pub struct DemoModel {
    /// The servable artifact (selection + predictor + guard band).
    pub artifact: ModelArtifact,
    /// The linear delay model, for generating chip measurements.
    pub delay_model: DelayModel,
}

/// Builds the Figure-1 model exactly as `examples/quickstart.rs` does:
/// nine gates, four paths merging at G5, three-level variation model,
/// approximate selection at ε = 5 % of `T_cons`.
///
/// # Errors
///
/// Propagates any pipeline failure (cannot happen for this fixed circuit
/// unless the underlying algorithms regress).
pub fn build_quickstart_model() -> Result<DemoModel, Box<dyn Error>> {
    let mut nl = Netlist::new(2);
    let g1 = nl.add_gate(CellKind::Buf, vec![Signal::Input(0)])?;
    let g2 = nl.add_gate(CellKind::Buf, vec![Signal::Input(1)])?;
    let g3 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g1)])?;
    let g4 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g2)])?;
    let g5 = nl.add_gate(CellKind::Nand2, vec![Signal::Gate(g3), Signal::Gate(g4)])?;
    let g6 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)])?;
    let g7 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)])?;
    let g8 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g6)])?;
    let g9 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g7)])?;
    nl.mark_output(g8)?;
    nl.mark_output(g9)?;
    let circuit = PlacedCircuit::from_parts(
        nl,
        Placement::new(vec![(0.5, 0.5); 9]),
        CellLibrary::synthetic_90nm(),
    );
    let paths = vec![
        Path::new(vec![g1, g3, g5, g7, g9])?,
        Path::new(vec![g1, g3, g5, g6, g8])?,
        Path::new(vec![g2, g4, g5, g6, g8])?,
        Path::new(vec![g2, g4, g5, g7, g9])?,
    ];
    let dec = decompose_into_segments(&paths)?;
    let model = VariationModel::three_level();
    let delay_model = DelayModel::build(&circuit, &paths, &dec, &model)?;

    let t_cons = delay_model
        .mu_paths()
        .iter()
        .cloned()
        .fold(0.0_f64, f64::max)
        * 1.05;
    let config = ApproxConfig::new(0.05, t_cons);
    let sel = approx_select(delay_model.a(), delay_model.mu_paths(), &config)?;

    let artifact = ModelArtifact {
        label: "quickstart".into(),
        selection: SelectionMeta {
            epsilon: config.epsilon,
            epsilon_r: sel.epsilon_r,
            eta: config.eta,
            rank: sel.rank,
            effective_rank: sel.effective_rank,
            t_cons,
            selected: sel.selected,
            remaining: sel.remaining,
        },
        guard_band_phi: sel.epsilon_r * t_cons,
        predictor: sel.predictor,
    };
    Ok(DemoModel {
        artifact,
        delay_model,
    })
}

impl DemoModel {
    /// "Fabricates" `n` virtual chips from `seed` and returns, per chip,
    /// the measured delays of the representative paths (the predict
    /// request payload) — deterministic for a given `(n, seed)`.
    ///
    /// # Errors
    ///
    /// Propagates delay-evaluation failures (fixed circuit: none in
    /// practice).
    pub fn measure_chips(&self, n: usize, seed: u64) -> Result<Vec<Vec<f64>>, Box<dyn Error>> {
        let mut sampler = VariationSampler::new(self.delay_model.variable_count(), seed);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let x = sampler.draw();
            let d_all = self.delay_model.path_delays(&x)?;
            out.push(
                self.artifact
                    .selection
                    .selected
                    .iter()
                    .map(|&i| d_all[i])
                    .collect(),
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_model_builds_and_measures() {
        let demo = build_quickstart_model().unwrap();
        let p = &demo.artifact.predictor;
        assert_eq!(
            p.measurement_count(),
            demo.artifact.selection.selected.len()
        );
        assert_eq!(p.target_count(), demo.artifact.selection.remaining.len());
        assert!(demo.artifact.guard_band_phi >= 0.0);
        let chips = demo.measure_chips(3, DEMO_SEED).unwrap();
        assert_eq!(chips.len(), 3);
        assert!(chips.iter().all(|c| c.len() == p.measurement_count()));
        // Determinism: the same seed fabricates the same chips.
        let again = demo.measure_chips(3, DEMO_SEED).unwrap();
        assert_eq!(chips, again);
    }
}
