//! The `pathrep-serve` daemon: binds, prints its address, serves until a
//! `shutdown` request drains it, then emits the telemetry report (which
//! honours `PATHREP_OBS_PROM` / `PATHREP_OBS_LEDGER` / … exports).
//!
//! Usage: `pathrep-serve [--addr HOST:PORT] [--allow-fault]
//! [--inject-panic N]`
//! Environment: `PATHREP_SERVE_ADDR`, `PATHREP_SERVE_BATCH`,
//! `PATHREP_SERVE_QUEUE`, `PATHREP_SERVE_CACHE`,
//! `PATHREP_SERVE_WATCHDOG_MS` (see the README env table). `--addr`
//! overrides the environment.
//!
//! The daemon installs the flight-recorder panic hook with exit code 101:
//! a panic on any handler thread dumps the ring
//! (`PATHREP_OBS_FLIGHT_DUMP`) and kills the whole process, instead of
//! silently losing one thread. `--allow-fault` enables wire-level fault
//! injection (`set_fault`) and `--inject-panic N` panics inside the Nth
//! request's span — both exist for `scripts/obs_gate.sh`.

use pathrep_serve::{Server, ServerConfig};
use std::io::Write;

fn main() {
    let mut config = ServerConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => {
                    eprintln!("pathrep-serve: --addr needs a HOST:PORT value");
                    std::process::exit(2);
                }
            },
            "--allow-fault" => config.allow_fault = true,
            "--inject-panic" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => config.inject_panic = Some(n),
                None => {
                    eprintln!("pathrep-serve: --inject-panic needs a request count");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: pathrep-serve [--addr HOST:PORT] [--allow-fault] \
                     [--inject-panic N]"
                );
                return;
            }
            other => {
                eprintln!("pathrep-serve: unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    // Black-box recording: a panic anywhere in the daemon dumps the
    // flight ring to disk, then exits 101 so supervisors see the crash.
    pathrep_obs::flight::install_panic_hook(Some(101));
    pathrep_obs::ledger::set_run_context("pathrep-serve", 0);
    let server = match Server::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pathrep-serve: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    // The gate scripts parse this exact line to learn the ephemeral port.
    println!(
        "pathrep-serve: listening on {addr} (batch={} queue={} cache={} watchdog={} shards={})",
        config.batch_max, config.queue_cap, config.cache_cap,
        match config.watchdog_ms {
            Some(ms) => format!("{ms}ms"),
            None => "off".to_owned(),
        },
        config.shards);
    // Live telemetry plane (PATHREP_OBS_HTTP): scrape-only HTTP endpoints
    // over the in-process registry. Gate scripts parse this line too.
    match pathrep_obs::http::start_from_env() {
        Some(Ok(obs_http)) => {
            println!("pathrep-serve: obs http listening on {}", obs_http.addr());
        }
        Some(Err(e)) => {
            eprintln!("pathrep-serve: cannot bind the obs http endpoint: {e}");
            std::process::exit(1);
        }
        None => {}
    }
    let _ = std::io::stdout().flush();

    match server.run() {
        Ok(stats) => {
            println!(
                "pathrep-serve: drained — {} requests, {} predictions in {} batches \
                 (max batch {}), {} errors",
                stats.requests, stats.predictions, stats.batches, stats.max_batch, stats.errors
            );
            pathrep_obs::report("pathrep-serve");
        }
        Err(e) => {
            eprintln!("pathrep-serve: fatal listener error: {e}");
            pathrep_obs::report("pathrep-serve");
            std::process::exit(1);
        }
    }
}
