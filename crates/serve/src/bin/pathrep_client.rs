//! The `pathrep-client` CLI: build/save artifacts, query a running
//! daemon, and load-generate for the soak gate.
//!
//! ```text
//! pathrep-client build-artifact <out-path>
//! pathrep-client load     <addr> <artifact-path>
//! pathrep-client predict  <addr> <model-id> <v1,v2,...>
//! pathrep-client stats    <addr>
//! pathrep-client shutdown <addr>
//! pathrep-client scrape   <addr> </metrics|/healthz|/snapshot.json>
//! pathrep-client stitch-trace <out.json> <trace.json>...
//! pathrep-client loadgen  <addr> <artifact-path> [--clients N] [--requests M]
//!                         [--rate R] [--inject-mismatch]
//! ```
//!
//! `loadgen` is the soak driver: N concurrent connections each send M
//! `predict` requests plus one `predict_batch`, and every reply is
//! bit-compared against the offline `MeasurementPredictor::predict` on
//! the locally-loaded artifact. `--inject-mismatch` corrupts one expected
//! value on purpose so `serve_gate.sh --self-test` can prove the check
//! trips.
//!
//! With `--rate R` the workers follow a fixed arrival schedule of R
//! requests/second (aggregate) and measure each latency from the request's
//! *intended* send time — the coordinated-omission-safe convention, so a
//! daemon stall inflates the tail instead of silently pausing the load.
//! p50/p99/p999 come from the same ~2 %-error HDR histogram the daemon
//! uses for `serve.request_ns`.
//!
//! `scrape` is a dependency-free `curl` stand-in for the daemon's live
//! telemetry endpoints (`PATHREP_OBS_HTTP`); `stitch-trace` merges Chrome
//! traces from both processes into one file correlated by the shared
//! `trace_id`s the wire protocol propagates.

use pathrep_obs::trace;
use pathrep_obs::HdrHistogram;
use pathrep_serve::{Client, ModelArtifact, TraceContext};
use std::io::{Read, Write};
use std::process::exit;
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("pathrep-client: {msg}");
    exit(1)
}

fn usage() -> ! {
    eprintln!(
        "usage: pathrep-client \
         <build-artifact|load|predict|stats|shutdown|scrape|stitch-trace|loadgen> …\n\
         (see the crate docs for per-command arguments)"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("build-artifact") => build_artifact(args.get(1).unwrap_or_else(|| usage())),
        Some("load") => load(&args),
        Some("predict") => predict(&args),
        Some("stats") => stats(&args),
        Some("shutdown") => shutdown(&args),
        Some("scrape") => scrape(&args),
        Some("stitch-trace") => stitch_trace(&args),
        Some("loadgen") => loadgen(&args),
        _ => usage(),
    }
}

fn build_artifact(out: &str) {
    let demo = pathrep_serve::demo::build_quickstart_model()
        .unwrap_or_else(|e| die(&format!("building the quickstart model failed: {e}")));
    let id = demo
        .artifact
        .save(out)
        .unwrap_or_else(|e| die(&format!("saving {out} failed: {e}")));
    println!(
        "pathrep-client: wrote {out} (model {id}, {} measurements -> {} targets, phi {:.3} ps)",
        demo.artifact.predictor.measurement_count(),
        demo.artifact.predictor.target_count(),
        demo.artifact.guard_band_phi
    );
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")))
}

fn load(args: &[String]) {
    let (addr, path) = match (args.get(1), args.get(2)) {
        (Some(a), Some(p)) => (a, p),
        _ => usage(),
    };
    let loaded = connect(addr)
        .load_model(path)
        .unwrap_or_else(|e| die(&format!("load_model failed: {e}")));
    println!(
        "pathrep-client: loaded {} ({}, {} measurements -> {} targets)",
        loaded.model, loaded.label, loaded.measurements, loaded.targets
    );
}

fn predict(args: &[String]) {
    let (addr, model, csv) = match (args.get(1), args.get(2), args.get(3)) {
        (Some(a), Some(m), Some(c)) => (a, m, c),
        _ => usage(),
    };
    let measured: Vec<f64> = csv
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .unwrap_or_else(|_| die(&format!("`{t}` is not a number")))
        })
        .collect();
    let predicted = connect(addr)
        .predict(model, &measured)
        .unwrap_or_else(|e| die(&format!("predict failed: {e}")));
    let rendered: Vec<String> = predicted.iter().map(|v| format!("{v:.6}")).collect();
    println!("pathrep-client: predicted [{}]", rendered.join(", "));
}

fn stats(args: &[String]) {
    let addr = args.get(1).unwrap_or_else(|| usage());
    let s = connect(addr)
        .stats()
        .unwrap_or_else(|e| die(&format!("stats failed: {e}")));
    println!(
        "requests={} predictions={} batches={} max_batch={} model_loads={} \
         cache_hits={} cache_misses={} errors={} queue_high_water={} models_cached={}",
        s.requests,
        s.predictions,
        s.batches,
        s.max_batch,
        s.model_loads,
        s.cache_hits,
        s.cache_misses,
        s.errors,
        s.queue_high_water,
        s.models_cached
    );
}

fn shutdown(args: &[String]) {
    let addr = args.get(1).unwrap_or_else(|| usage());
    connect(addr)
        .shutdown()
        .unwrap_or_else(|e| die(&format!("shutdown failed: {e}")));
    println!("pathrep-client: daemon acknowledged shutdown");
}

/// GETs one of the daemon's live telemetry endpoints and prints the body,
/// so gate scripts can scrape without `curl` on the host.
fn scrape(args: &[String]) {
    let (addr, path) = match (args.get(1), args.get(2)) {
        (Some(a), Some(p)) => (a, p),
        _ => usage(),
    };
    let mut stream = std::net::TcpStream::connect(addr)
        .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(5))))
        .unwrap_or_else(|e| die(&format!("cannot set socket timeouts: {e}")));
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .unwrap_or_else(|e| die(&format!("request failed: {e}")));
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .unwrap_or_else(|e| die(&format!("reading the response failed: {e}")));
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die("malformed HTTP response"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    print!("{body}");
    if status != 200 {
        die(&format!("GET {path} returned HTTP {status}"));
    }
}

/// Merges Chrome trace files (client + daemon) into one, correlated by
/// the shared `trace_id` args. See [`pathrep_serve::stitch`].
fn stitch_trace(args: &[String]) {
    let out = args.get(1).unwrap_or_else(|| usage());
    if args.len() < 3 {
        usage();
    }
    let inputs: Vec<(String, String)> = args[2..]
        .iter()
        .map(|p| {
            let content = std::fs::read_to_string(p)
                .unwrap_or_else(|e| die(&format!("cannot read {p}: {e}")));
            (p.clone(), content)
        })
        .collect();
    let merged =
        pathrep_serve::stitch_traces(&inputs).unwrap_or_else(|e| die(&format!("stitch failed: {e}")));
    std::fs::write(out, &merged).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "pathrep-client: stitched {} trace files into {out}",
        inputs.len()
    );
}

/// Deterministic synthetic measurement for (client, request, coordinate):
/// the artifact's mean, displaced by a smooth ±3 ps excursion.
fn synthetic_measurement(meas_mu: &[f64], client: usize, request: usize) -> Vec<f64> {
    meas_mu
        .iter()
        .enumerate()
        .map(|(j, &mu)| mu + (((client * 977 + request * 131 + j * 17) as f64) * 0.37).sin() * 3.0)
        .collect()
}

fn loadgen(args: &[String]) {
    let (addr, path) = match (args.get(1), args.get(2)) {
        (Some(a), Some(p)) => (a.clone(), p.clone()),
        _ => usage(),
    };
    let mut clients = 4usize;
    let mut requests = 25usize;
    let mut rate = 0.0f64;
    let mut inject = false;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                clients = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--clients needs a positive integer"));
                i += 2;
            }
            "--requests" => {
                requests = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--requests needs a positive integer"));
                i += 2;
            }
            "--rate" => {
                rate = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|r: &f64| *r > 0.0)
                    .unwrap_or_else(|| die("--rate needs a positive requests/second"));
                i += 2;
            }
            "--inject-mismatch" => {
                inject = true;
                i += 1;
            }
            other => die(&format!("unknown loadgen flag `{other}`")),
        }
    }

    // The offline reference: the same artifact the daemon will serve.
    let (artifact, local_id) =
        ModelArtifact::load(&path).unwrap_or_else(|e| die(&format!("cannot load {path}: {e}")));
    let loaded = connect(&addr)
        .load_model(&path)
        .unwrap_or_else(|e| die(&format!("daemon rejected the artifact: {e}")));
    if loaded.model != local_id {
        die(&format!(
            "model id mismatch: daemon says {}, local file hashes to {local_id}",
            loaded.model
        ));
    }

    let artifact = std::sync::Arc::new(artifact);
    let model_id = loaded.model;
    // One shared epoch: with --rate, request g = k*clients + c is *due* at
    // epoch + g/rate, and its latency is measured from that intended time
    // (coordinated-omission-safe) — a stalled daemon shows up as tail
    // latency rather than as a silently paused arrival schedule.
    let epoch = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let artifact = std::sync::Arc::clone(&artifact);
            let model_id = model_id.clone();
            std::thread::spawn(move || -> (u64, u64, HdrHistogram) {
                let mut latency = HdrHistogram::new();
                let mut client = match Client::connect(&addr) {
                    Ok(cl) => cl,
                    Err(e) => {
                        eprintln!("loadgen client {c}: connect failed: {e}");
                        return (0, 1, latency);
                    }
                };
                let mut mismatches = 0u64;
                let mut errors = 0u64;
                for k in 0..requests {
                    let measured = synthetic_measurement(artifact.predictor.meas_mu(), c, k);
                    let mut expected = artifact
                        .predictor
                        .predict(&measured)
                        .expect("offline prediction succeeds");
                    if inject && k == requests / 2 {
                        // Self-test: provably detectable corruption.
                        expected[0] += 1.0;
                    }
                    // Every request carries a unique trace context: the
                    // daemon stamps it on its spans and echoes it back, so
                    // client and server traces stitch into one timeline.
                    let _ctx = trace::set_context(TraceContext {
                        trace_id: ((c as u64 + 1) << 20) | k as u64,
                        request_seq: k as u64,
                    });
                    let _span = pathrep_obs::span!("client.predict");
                    let intended = if rate > 0.0 {
                        let due = Duration::from_secs_f64((k * clients + c) as f64 / rate);
                        while epoch.elapsed() < due {
                            std::thread::sleep(due - epoch.elapsed());
                        }
                        due
                    } else {
                        epoch.elapsed()
                    };
                    match client.predict(&model_id, &measured) {
                        Ok(got) => {
                            latency.record((epoch.elapsed() - intended).as_nanos() as f64);
                            let same = got.len() == expected.len()
                                && got
                                    .iter()
                                    .zip(expected.iter())
                                    .all(|(a, b)| a.to_bits() == b.to_bits());
                            if !same {
                                mismatches += 1;
                            }
                        }
                        Err(e) => {
                            eprintln!("loadgen client {c} request {k}: {e}");
                            errors += 1;
                        }
                    }
                }
                // One batched request per client, same byte-identity bar.
                let rows: Vec<Vec<f64>> = (0..4)
                    .map(|k| synthetic_measurement(artifact.predictor.meas_mu(), c, 10_000 + k))
                    .collect();
                match client.predict_batch(&model_id, &rows) {
                    Ok(got) => {
                        for (row, m) in got.iter().zip(rows.iter()) {
                            let expected =
                                artifact.predictor.predict(m).expect("offline prediction");
                            if row.len() != expected.len()
                                || row
                                    .iter()
                                    .zip(expected.iter())
                                    .any(|(a, b)| a.to_bits() != b.to_bits())
                            {
                                mismatches += 1;
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("loadgen client {c} batch: {e}");
                        errors += 1;
                    }
                }
                (mismatches, errors, latency)
            })
        })
        .collect();

    let mut mismatches = 0u64;
    let mut errors = 0u64;
    let mut latency = HdrHistogram::new();
    for w in workers {
        let (m, e, h) = w.join().expect("loadgen worker panicked");
        mismatches += m;
        errors += e;
        latency.merge(&h);
    }
    let total = clients * (requests + 4);
    println!(
        "pathrep-client: loadgen {clients} clients x {requests} predicts (+1 batch each): \
         {total} rows, {mismatches} mismatches, {errors} errors"
    );
    if latency.count() > 0 {
        let us = |q: f64| latency.quantile(q) / 1_000.0;
        let basis = if rate > 0.0 {
            format!("intended-start @ {rate}/s, coordinated-omission-safe")
        } else {
            "service-time".to_owned()
        };
        println!(
            "pathrep-client: loadgen latency p50={:.1}us p99={:.1}us p999={:.1}us ({basis})",
            us(0.50),
            us(0.99),
            us(0.999)
        );
    }
    // Honour PATHREP_OBS_TRACE etc. so the client-side Chrome trace (with
    // the per-request trace ids) is exported for stitch-trace.
    pathrep_obs::report("pathrep-client");
    if mismatches > 0 || errors > 0 {
        eprintln!("pathrep-client: loadgen FAILED — served predictions must be byte-identical");
        exit(1);
    }
    println!("pathrep-client: loadgen OK — all replies byte-identical to offline predictions");
}
