//! The `pathrep-client` CLI: build/save artifacts, query a running
//! daemon, and load-generate for the soak gate.
//!
//! ```text
//! pathrep-client build-artifact <out-path>
//! pathrep-client load     <addr> <artifact-path>
//! pathrep-client predict  <addr> <model-id> <v1,v2,...>
//! pathrep-client stats    <addr>
//! pathrep-client shutdown <addr>
//! pathrep-client scrape   <addr> </metrics|/healthz|/snapshot.json|/slo.json>
//!                         [--timeout-ms T]
//! pathrep-client slo      <addr> [--timeout-ms T]
//! pathrep-client dump-flight <addr> [out-path]
//! pathrep-client fault    <addr> <slowdown-ms>
//! pathrep-client check-flight <flight-dump.json>
//! pathrep-client stitch-trace <out.json> <trace.json>...
//! pathrep-client loadgen  <addr> <artifact-path> [--clients N] [--requests M]
//!                         [--rate R] [--binary] [--inject-mismatch]
//! ```
//!
//! `loadgen` is the soak driver: N concurrent connections each send M
//! `predict` requests plus one `predict_batch`, and every reply is
//! bit-compared against the offline `MeasurementPredictor::predict` on
//! the locally-loaded artifact. `--binary` sends the hot path over the
//! compact binary frame protocol instead of JSON — the byte-identity bar
//! is the same. `--inject-mismatch` corrupts one expected
//! value on purpose so `serve_gate.sh --self-test` can prove the check
//! trips.
//!
//! With `--rate R` the workers follow a fixed arrival schedule of R
//! requests/second (aggregate) and measure each latency from the request's
//! *intended* send time — the coordinated-omission-safe convention, so a
//! daemon stall inflates the tail instead of silently pausing the load.
//! p50/p99/p999 come from the same ~2 %-error HDR histogram the daemon
//! uses for `serve.request_ns`.
//!
//! `scrape` is a dependency-free `curl` stand-in for the daemon's live
//! telemetry endpoints (`PATHREP_OBS_HTTP`); both it and `slo` take
//! `--timeout-ms` (default 5000) as connect *and* read/write deadlines,
//! so a hung daemon fails a probe instead of wedging it. `slo` renders
//! `/slo.json` as one line per objective×window with the error-budget
//! burn rate. `dump-flight` asks the daemon to write its flight-recorder
//! ring; `fault` injects a batcher slowdown (daemon must run with
//! `--allow-fault`); `check-flight` validates a flight dump off-line —
//! parseable Chrome JSON with balanced B/E nesting per thread — and exits
//! nonzero otherwise, so gate scripts need no JSON tooling on the host.
//! `stitch-trace` merges Chrome traces from both processes into one file
//! correlated by the shared `trace_id`s the wire protocol propagates.

use pathrep_obs::trace;
use pathrep_obs::HdrHistogram;
use pathrep_serve::{Client, ModelArtifact, TraceContext, WireProtocol};
use std::io::{Read, Write};
use std::process::exit;
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("pathrep-client: {msg}");
    exit(1)
}

fn usage() -> ! {
    eprintln!(
        "usage: pathrep-client \
         <build-artifact|load|predict|stats|shutdown|scrape|slo|dump-flight|\
         fault|check-flight|stitch-trace|loadgen> …\n\
         (see the crate docs for per-command arguments)"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("build-artifact") => build_artifact(args.get(1).unwrap_or_else(|| usage())),
        Some("load") => load(&args),
        Some("predict") => predict(&args),
        Some("stats") => stats(&args),
        Some("shutdown") => shutdown(&args),
        Some("scrape") => scrape(&args),
        Some("slo") => slo(&args),
        Some("dump-flight") => dump_flight(&args),
        Some("fault") => fault(&args),
        Some("check-flight") => check_flight(args.get(1).unwrap_or_else(|| usage())),
        Some("stitch-trace") => stitch_trace(&args),
        Some("loadgen") => loadgen(&args),
        _ => usage(),
    }
}

fn build_artifact(out: &str) {
    let demo = pathrep_serve::demo::build_quickstart_model()
        .unwrap_or_else(|e| die(&format!("building the quickstart model failed: {e}")));
    let id = demo
        .artifact
        .save(out)
        .unwrap_or_else(|e| die(&format!("saving {out} failed: {e}")));
    println!(
        "pathrep-client: wrote {out} (model {id}, {} measurements -> {} targets, phi {:.3} ps)",
        demo.artifact.predictor.measurement_count(),
        demo.artifact.predictor.target_count(),
        demo.artifact.guard_band_phi
    );
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")))
}

fn load(args: &[String]) {
    let (addr, path) = match (args.get(1), args.get(2)) {
        (Some(a), Some(p)) => (a, p),
        _ => usage(),
    };
    let loaded = connect(addr)
        .load_model(path)
        .unwrap_or_else(|e| die(&format!("load_model failed: {e}")));
    println!(
        "pathrep-client: loaded {} ({}, {} measurements -> {} targets)",
        loaded.model, loaded.label, loaded.measurements, loaded.targets
    );
}

fn predict(args: &[String]) {
    let (addr, model, csv) = match (args.get(1), args.get(2), args.get(3)) {
        (Some(a), Some(m), Some(c)) => (a, m, c),
        _ => usage(),
    };
    let measured: Vec<f64> = csv
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .unwrap_or_else(|_| die(&format!("`{t}` is not a number")))
        })
        .collect();
    let predicted = connect(addr)
        .predict(model, &measured)
        .unwrap_or_else(|e| die(&format!("predict failed: {e}")));
    let rendered: Vec<String> = predicted.iter().map(|v| format!("{v:.6}")).collect();
    println!("pathrep-client: predicted [{}]", rendered.join(", "));
}

fn stats(args: &[String]) {
    let addr = args.get(1).unwrap_or_else(|| usage());
    let s = connect(addr)
        .stats()
        .unwrap_or_else(|e| die(&format!("stats failed: {e}")));
    println!(
        "requests={} predictions={} batches={} max_batch={} model_loads={} \
         cache_hits={} cache_misses={} errors={} queue_high_water={} models_cached={}",
        s.requests,
        s.predictions,
        s.batches,
        s.max_batch,
        s.model_loads,
        s.cache_hits,
        s.cache_misses,
        s.errors,
        s.queue_high_water,
        s.models_cached
    );
}

fn shutdown(args: &[String]) {
    let addr = args.get(1).unwrap_or_else(|| usage());
    connect(addr)
        .shutdown()
        .unwrap_or_else(|e| die(&format!("shutdown failed: {e}")));
    println!("pathrep-client: daemon acknowledged shutdown");
}

/// Parses a trailing `--timeout-ms T` flag (default 5000 ms) out of
/// `args[from..]`; anything else there is a usage error.
fn timeout_flag(args: &[String], from: usize) -> Duration {
    let mut timeout_ms = 5000u64;
    let mut i = from;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout-ms" => {
                timeout_ms = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .unwrap_or_else(|| die("--timeout-ms needs a positive integer"));
                i += 2;
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    Duration::from_millis(timeout_ms)
}

/// One deadline-bounded HTTP GET: `timeout` applies to the connect *and*
/// to every socket read/write, so a hung daemon fails the probe instead
/// of wedging the caller. Returns (status, body).
fn http_get(addr: &str, path: &str, timeout: Duration) -> (u16, String) {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| die(&format!("cannot resolve {addr}")));
    let mut stream = std::net::TcpStream::connect_timeout(&sock, timeout)
        .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .unwrap_or_else(|e| die(&format!("cannot set socket timeouts: {e}")));
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .unwrap_or_else(|e| die(&format!("request failed: {e}")));
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .unwrap_or_else(|e| die(&format!("reading the response failed: {e}")));
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die("malformed HTTP response"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    (status, body.to_owned())
}

/// GETs one of the daemon's live telemetry endpoints and prints the body,
/// so gate scripts can scrape without `curl` on the host.
fn scrape(args: &[String]) {
    let (addr, path) = match (args.get(1), args.get(2)) {
        (Some(a), Some(p)) => (a, p),
        _ => usage(),
    };
    let timeout = timeout_flag(args, 3);
    let (status, body) = http_get(addr, path, timeout);
    print!("{body}");
    if status != 200 {
        die(&format!("GET {path} returned HTTP {status}"));
    }
}

/// Fetches `/slo.json` and prints one line per objective×window with the
/// error-budget burn rate, e.g.
/// `slo serve.request_ns p999<5000000ns target=99.9% window=1s count=812
/// quantile=1.2ms burn=0.31 ok`. Gate scripts grep the `burn=`/`BREACH`
/// tokens; the command always exits 0 on a well-formed report.
fn slo(args: &[String]) {
    let addr = args.get(1).unwrap_or_else(|| usage());
    let timeout = timeout_flag(args, 2);
    let (status, body) = http_get(addr, "/slo.json", timeout);
    if status != 200 {
        die(&format!("GET /slo.json returned HTTP {status}"));
    }
    let v = pathrep_obs::json::parse(&body)
        .unwrap_or_else(|e| die(&format!("/slo.json is not valid JSON: {e}")));
    let objectives = v
        .field("objectives")
        .and_then(|f| f.array().map(<[pathrep_obs::json::JsonValue]>::to_vec))
        .unwrap_or_else(|e| die(&format!("/slo.json has no objectives array: {e}")));
    if objectives.is_empty() {
        println!("pathrep-client: slo — no objectives declared (set PATHREP_OBS_SLO)");
        return;
    }
    for obj in &objectives {
        let s = |name: &str| {
            obj.field(name)
                .and_then(|f| f.string())
                .unwrap_or_else(|e| die(&format!("malformed objective: {e}")))
        };
        let metric = s("metric");
        let objective = s("objective");
        let target = obj
            .field("target_pct")
            .and_then(|f| f.number())
            .unwrap_or_else(|e| die(&format!("malformed objective: {e}")));
        let windows = obj
            .field("windows")
            .and_then(|f| f.array().map(<[pathrep_obs::json::JsonValue]>::to_vec))
            .unwrap_or_default();
        for w in &windows {
            let num = |name: &str| w.field(name).and_then(|f| f.number()).unwrap_or(0.0);
            let label = w
                .field("window")
                .and_then(|f| f.string())
                .unwrap_or_else(|_| "?".into());
            let ok = match w.field("ok") {
                Ok(pathrep_obs::json::JsonValue::Bool(b)) => *b,
                _ => true,
            };
            println!(
                "pathrep-client: slo {metric} {objective} target={target}% \
                 window={label} count={} quantile={:.1}us burn={:.3} {}",
                num("count") as u64,
                num("quantile_ns") / 1_000.0,
                num("burn_rate"),
                if ok { "ok" } else { "BREACH" }
            );
        }
    }
}

/// Asks the daemon to write its flight-recorder ring to disk.
fn dump_flight(args: &[String]) {
    let addr = args.get(1).unwrap_or_else(|| usage());
    let (path, records, dropped) = connect(addr)
        .dump_flight(args.get(2).map(String::as_str))
        .unwrap_or_else(|e| die(&format!("dump_flight failed: {e}")));
    println!(
        "pathrep-client: daemon dumped {records} flight records \
         ({dropped} overwritten) to {path}"
    );
}

/// Injects (or clears, with 0) a batcher slowdown on the daemon.
fn fault(args: &[String]) {
    let (addr, ms) = match (args.get(1), args.get(2)) {
        (Some(a), Some(m)) => (
            a,
            m.parse::<u64>()
                .unwrap_or_else(|_| die("fault needs a slowdown in milliseconds")),
        ),
        _ => usage(),
    };
    let active = connect(addr)
        .set_fault(ms)
        .unwrap_or_else(|e| die(&format!("set_fault failed: {e}")));
    println!("pathrep-client: daemon batcher slowdown now {active} ms");
}

/// Validates a flight dump off-line: parseable Chrome Trace JSON whose
/// B/E events nest and balance per (pid, tid) track. Exits 1 on any
/// violation — the obs gate's proof that panic/watchdog dumps are loadable.
fn check_flight(path: &str) {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let v = pathrep_obs::json::parse(&raw)
        .unwrap_or_else(|e| die(&format!("{path} is not valid JSON: {e}")));
    let events = v
        .array()
        .unwrap_or_else(|e| die(&format!("{path} is not a Chrome trace array: {e}")));
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> =
        std::collections::BTreeMap::new();
    let (mut begins, mut ends, mut instants, mut traced) = (0u64, 0u64, 0u64, 0u64);
    for ev in events {
        let ph = ev
            .field("ph")
            .and_then(|f| f.string())
            .unwrap_or_else(|e| die(&format!("event without ph: {e}")));
        let num = |name: &str| ev.field(name).and_then(|f| f.number()).unwrap_or(0.0) as u64;
        let key = (num("pid"), num("tid"));
        let name = ev
            .field("name")
            .and_then(|f| f.string())
            .unwrap_or_default();
        if let Ok(args) = ev.field("args") {
            if args.field("trace_id").is_ok() {
                traced += 1;
            }
        }
        match ph.as_str() {
            "B" => {
                stacks.entry(key).or_default().push(name);
                begins += 1;
            }
            "E" => {
                ends += 1;
                match stacks.entry(key).or_default().pop() {
                    Some(open) if open == name => {}
                    Some(open) => die(&format!(
                        "mismatched nesting on pid {} tid {}: E `{name}` closes B `{open}`",
                        key.0, key.1
                    )),
                    None => die(&format!(
                        "unbalanced dump: E `{name}` without an open B on pid {} tid {}",
                        key.0, key.1
                    )),
                }
            }
            "i" => instants += 1,
            other => die(&format!("unexpected phase `{other}` in {path}")),
        }
    }
    for (key, stack) in &stacks {
        if !stack.is_empty() {
            die(&format!(
                "unbalanced dump: {} spans left open on pid {} tid {}: {stack:?}",
                stack.len(),
                key.0,
                key.1
            ));
        }
    }
    println!(
        "pathrep-client: {path} OK — {begins} begins / {ends} ends balanced, \
         {instants} instants, {traced} events carry a trace_id"
    );
}

/// Merges Chrome trace files (client + daemon) into one, correlated by
/// the shared `trace_id` args. See [`pathrep_serve::stitch`].
fn stitch_trace(args: &[String]) {
    let out = args.get(1).unwrap_or_else(|| usage());
    if args.len() < 3 {
        usage();
    }
    let inputs: Vec<(String, String)> = args[2..]
        .iter()
        .map(|p| {
            let content = std::fs::read_to_string(p)
                .unwrap_or_else(|e| die(&format!("cannot read {p}: {e}")));
            (p.clone(), content)
        })
        .collect();
    let merged =
        pathrep_serve::stitch_traces(&inputs).unwrap_or_else(|e| die(&format!("stitch failed: {e}")));
    std::fs::write(out, &merged).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "pathrep-client: stitched {} trace files into {out}",
        inputs.len()
    );
}

/// Deterministic synthetic measurement for (client, request, coordinate):
/// the artifact's mean, displaced by a smooth ±3 ps excursion.
fn synthetic_measurement(meas_mu: &[f64], client: usize, request: usize) -> Vec<f64> {
    meas_mu
        .iter()
        .enumerate()
        .map(|(j, &mu)| mu + (((client * 977 + request * 131 + j * 17) as f64) * 0.37).sin() * 3.0)
        .collect()
}

fn loadgen(args: &[String]) {
    let (addr, path) = match (args.get(1), args.get(2)) {
        (Some(a), Some(p)) => (a.clone(), p.clone()),
        _ => usage(),
    };
    let mut clients = 4usize;
    let mut requests = 25usize;
    let mut rate = 0.0f64;
    let mut inject = false;
    let mut binary = false;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                clients = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--clients needs a positive integer"));
                i += 2;
            }
            "--requests" => {
                requests = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--requests needs a positive integer"));
                i += 2;
            }
            "--rate" => {
                rate = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|r: &f64| *r > 0.0)
                    .unwrap_or_else(|| die("--rate needs a positive requests/second"));
                i += 2;
            }
            "--inject-mismatch" => {
                inject = true;
                i += 1;
            }
            "--binary" => {
                binary = true;
                i += 1;
            }
            other => die(&format!("unknown loadgen flag `{other}`")),
        }
    }

    // The offline reference: the same artifact the daemon will serve.
    let (artifact, local_id) =
        ModelArtifact::load(&path).unwrap_or_else(|e| die(&format!("cannot load {path}: {e}")));
    let loaded = connect(&addr)
        .load_model(&path)
        .unwrap_or_else(|e| die(&format!("daemon rejected the artifact: {e}")));
    if loaded.model != local_id {
        die(&format!(
            "model id mismatch: daemon says {}, local file hashes to {local_id}",
            loaded.model
        ));
    }

    let artifact = std::sync::Arc::new(artifact);
    let model_id = loaded.model;
    // One shared epoch: with --rate, request g = k*clients + c is *due* at
    // epoch + g/rate, and its latency is measured from that intended time
    // (coordinated-omission-safe) — a stalled daemon shows up as tail
    // latency rather than as a silently paused arrival schedule.
    let epoch = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let artifact = std::sync::Arc::clone(&artifact);
            let model_id = model_id.clone();
            std::thread::spawn(move || -> (u64, u64, HdrHistogram) {
                let mut latency = HdrHistogram::new();
                let mut client = match Client::connect(&addr) {
                    Ok(cl) => cl,
                    Err(e) => {
                        eprintln!("loadgen client {c}: connect failed: {e}");
                        return (0, 1, latency);
                    }
                };
                if binary {
                    client.set_protocol(WireProtocol::Binary);
                }
                let mut mismatches = 0u64;
                let mut errors = 0u64;
                for k in 0..requests {
                    let measured = synthetic_measurement(artifact.predictor.meas_mu(), c, k);
                    let mut expected = artifact
                        .predictor
                        .predict(&measured)
                        .expect("offline prediction succeeds");
                    if inject && k == requests / 2 {
                        // Self-test: provably detectable corruption.
                        expected[0] += 1.0;
                    }
                    // Every request carries a unique trace context: the
                    // daemon stamps it on its spans and echoes it back, so
                    // client and server traces stitch into one timeline.
                    let _ctx = trace::set_context(TraceContext {
                        trace_id: ((c as u64 + 1) << 20) | k as u64,
                        request_seq: k as u64,
                    });
                    let _span = pathrep_obs::span!("client.predict");
                    let intended = if rate > 0.0 {
                        let due = Duration::from_secs_f64((k * clients + c) as f64 / rate);
                        while epoch.elapsed() < due {
                            std::thread::sleep(due - epoch.elapsed());
                        }
                        due
                    } else {
                        epoch.elapsed()
                    };
                    match client.predict(&model_id, &measured) {
                        Ok(got) => {
                            latency.record((epoch.elapsed() - intended).as_nanos() as f64);
                            let same = got.len() == expected.len()
                                && got
                                    .iter()
                                    .zip(expected.iter())
                                    .all(|(a, b)| a.to_bits() == b.to_bits());
                            if !same {
                                mismatches += 1;
                            }
                        }
                        Err(e) => {
                            eprintln!("loadgen client {c} request {k}: {e}");
                            errors += 1;
                        }
                    }
                }
                // One batched request per client, same byte-identity bar.
                let rows: Vec<Vec<f64>> = (0..4)
                    .map(|k| synthetic_measurement(artifact.predictor.meas_mu(), c, 10_000 + k))
                    .collect();
                match client.predict_batch(&model_id, &rows) {
                    Ok(got) => {
                        for (row, m) in got.iter().zip(rows.iter()) {
                            let expected =
                                artifact.predictor.predict(m).expect("offline prediction");
                            if row.len() != expected.len()
                                || row
                                    .iter()
                                    .zip(expected.iter())
                                    .any(|(a, b)| a.to_bits() != b.to_bits())
                            {
                                mismatches += 1;
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("loadgen client {c} batch: {e}");
                        errors += 1;
                    }
                }
                (mismatches, errors, latency)
            })
        })
        .collect();

    let mut mismatches = 0u64;
    let mut errors = 0u64;
    let mut latency = HdrHistogram::new();
    for w in workers {
        let (m, e, h) = w.join().expect("loadgen worker panicked");
        mismatches += m;
        errors += e;
        latency.merge(&h);
    }
    let total = clients * (requests + 4);
    let proto = if binary { "binary" } else { "json" };
    println!(
        "pathrep-client: loadgen {clients} clients x {requests} predicts (+1 batch each, \
         {proto}): {total} rows, {mismatches} mismatches, {errors} errors"
    );
    if latency.count() > 0 {
        let us = |q: f64| latency.quantile(q) / 1_000.0;
        let basis = if rate > 0.0 {
            format!("intended-start @ {rate}/s, coordinated-omission-safe")
        } else {
            "service-time".to_owned()
        };
        println!(
            "pathrep-client: loadgen latency p50={:.1}us p99={:.1}us p999={:.1}us ({basis})",
            us(0.50),
            us(0.99),
            us(0.999)
        );
    }
    // Honour PATHREP_OBS_TRACE etc. so the client-side Chrome trace (with
    // the per-request trace ids) is exported for stitch-trace.
    pathrep_obs::report("pathrep-client");
    if mismatches > 0 || errors > 0 {
        eprintln!("pathrep-client: loadgen FAILED — served predictions must be byte-identical");
        exit(1);
    }
    println!("pathrep-client: loadgen OK — all replies byte-identical to offline predictions");
}
