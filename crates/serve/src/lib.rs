//! # pathrep-serve — batching prediction server + versioned artifact store
//!
//! The paper selects a small representative path set at design time so
//! that, post-silicon, *every* fabricated die's full timing can be
//! predicted from a handful of measurements — an inherently online,
//! high-fan-out workload. This crate turns the batch pipeline into that
//! online system:
//!
//! * [`artifact`] — schema-versioned, checksummed persistence of a
//!   [`pathrep_core::predictor::MeasurementPredictor`] plus its selection
//!   provenance (ε, η, r, selected path ids) and guard-band φ; the FNV-1a
//!   content hash is the model id.
//! * [`protocol`] — a length-prefixed JSON wire protocol (`load_model`,
//!   `predict`, `predict_batch`, `stats`, `shutdown`) with exact `f64`
//!   round-trips, so wire results are bit-identical to in-memory ones.
//! * [`binproto`] — a compact fixed-layout binary frame protocol beside
//!   the JSON one (one peeked byte disambiguates, per frame, on one
//!   socket): every `f64` travels as its raw IEEE-754 bit pattern, so
//!   the wire is bit-exact by construction, and batch payloads decode
//!   in one pass into the fused kernel's row-major layout.
//! * [`server`] — the daemon: thread-per-connection over `std::net`, a
//!   bounded micro-batch queue that coalesces concurrent predictions for
//!   the same model into one fused kernel (deterministic per-request
//!   output regardless of batching), an LRU artifact cache, condvar
//!   backpressure, and a clean drain on shutdown. No async runtime; the
//!   numeric fan-out is the existing `pathrep-par` pool.
//! * [`shard`] — the scale-out runtime (`PATHREP_SERVE_SHARDS=N`): N
//!   reactor shards on the `pathrep-net` readiness loop, consistent-hash
//!   routing of model ids to per-shard bounded queues (same-model
//!   traffic batches locally), load-shedding instead of blocking when a
//!   queue fills, and the same graceful drain. Replies stay bit-identical
//!   to the offline predictor at any shard count or protocol.
//! * [`client`] — a blocking client used by `pathrep-client` and tests.
//!   Requests carry the caller's [`pathrep_obs::trace::TraceContext`]
//!   (backward-compatibly — old peers ignore it), so client and daemon
//!   spans share one `trace_id`.
//! * [`stitch`] — merges the client's and daemon's Chrome traces into a
//!   single file correlated by those shared trace ids.
//! * [`demo`] — the quickstart (Figure-1) model as a servable artifact.
//!
//! Configuration comes from `PATHREP_SERVE_ADDR` / `PATHREP_SERVE_BATCH` /
//! `PATHREP_SERVE_QUEUE` / `PATHREP_SERVE_CACHE` /
//! `PATHREP_SERVE_WATCHDOG_MS` / `PATHREP_SERVE_SHARDS` /
//! `PATHREP_SERVE_PROTO`, all registered in
//! [`pathrep_obs::config::ALL_ENV_VARS`]. Telemetry: per-request spans,
//! `serve.*` counters/gauges/histograms (exported as `pathrep_serve_*`
//! Prometheus families), and a `serve/model_load` ledger record per
//! artifact load.
//!
//! Failure-time forensics: the daemon binary installs the flight-recorder
//! panic hook (dump then exit 101), the server runs a batcher-heartbeat
//! stall watchdog, `dump_flight` requests pull the ring over the wire,
//! and `set_fault` (behind `--allow-fault`) lets gates inject sickness —
//! see [`pathrep_obs::flight`] and `scripts/obs_gate.sh`.

#![deny(missing_docs)]

pub mod artifact;
pub mod binproto;
pub mod client;
pub mod demo;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod stitch;

pub use artifact::{ArtifactError, ModelArtifact, SelectionMeta, ARTIFACT_SCHEMA_VERSION};
pub use client::{Client, ClientError, LoadedModel, WireProtocol};
pub use protocol::{Request, Response, ServerStats, TraceContext};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stitch::stitch_traces;
