//! The sharded readiness-loop runtime: `pathrep-serve` rebuilt on
//! [`pathrep_net`].
//!
//! Selected with `PATHREP_SERVE_SHARDS=N` (N > 0); `0` keeps the original
//! thread-per-connection runtime in [`crate::server`]. Architecture:
//!
//! ```text
//! accept thread ── round-robins sockets over N reactor shards
//!   reactor shard i (epoll loop, non-blocking):
//!     parse frames (JSON or binary, auto-detected per frame)
//!       control requests ─ answered inline
//!       predict rows ──── consistent-hash on model id ──> job queue[h(model)]
//!                                                             │ pop ≤ batch_max,
//!                                                             v same model+width
//!                                              batcher thread h ── predict_batch
//!     completions ◄──── mailbox + wake pipe ◄── one Done per row
//!     encode reply (same protocol as the request), flush opportunistically
//! ```
//!
//! **Locality.** Jobs route by consistent hash of the model id
//! ([`pathrep_net::HashRing`]), so concurrent requests for one model land
//! in one queue and coalesce into one fused kernel no matter which reactor
//! owns their sockets. Only the owning reactor ever writes a socket;
//! batchers talk to reactors exclusively through mailboxes.
//!
//! **Determinism.** Identical to the legacy runtime: the batcher pops
//! same-model same-width rows in arrival order and `predict_batch`
//! computes each row by the exact floating-point sequence of a solo
//! `predict`, so replies are bit-identical to the offline predictor at any
//! shard count, batching, or protocol.
//!
//! **Backpressure & shedding.** Each shard's job queue is bounded
//! (`queue_cap`). A reactor never blocks, so instead of waiting it (a)
//! stops *parsing* a connection while a request is in flight — pipelined
//! bytes sit in the buffer and TCP flow control pushes back — and (b)
//! sheds with a typed error reply (counted in `serve.shard.shed`) when a
//! routed queue is full.
//!
//! **Drain.** A `shutdown` request flips the stop flag, notifies every
//! shard and nudges the acceptor. Reactors stop parsing new frames,
//! batchers drain their queues to empty (the queues reject pushes once
//! stopping, so no job can slip in behind the drain), completions flow
//! back, replies flush, and every thread joins — no accepted request is
//! dropped.

use crate::binproto::{self, BinRequest, BinResponse, WireFrame};
use crate::protocol::{write_frame, Request, Response, ServerStats, TraceContext};
use crate::server::{
    effective_trace, resolve_model, respond_to, Shared, Stats, BATCH_EDGES,
};
use pathrep_core::predictor::MeasurementPredictor;
use pathrep_linalg::Matrix;
use pathrep_obs::{ledger, trace};
use pathrep_net::{Event, HashRing, Interest, Mailbox, MailboxSender, Shard as NetShard, Token};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Per-shard gauge names. The metrics API takes `&'static str`, so the
/// formatted names are interned once per distinct name for the process
/// lifetime (bounded: two short strings per shard index ever seen).
#[derive(Clone, Copy)]
struct ShardGauges {
    conns: &'static str,
    queue_depth: &'static str,
}

/// Interns a metric name, returning the same `&'static str` for repeated
/// requests so restarted daemons in one process do not leak afresh.
fn intern(name: String) -> &'static str {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static POOL: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = pool.lock().unwrap();
    if let Some(&s) = map.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    map.insert(name, leaked);
    leaked
}

fn shard_gauges(n: usize) -> Vec<ShardGauges> {
    (0..n)
        .map(|i| ShardGauges {
            conns: intern(format!("serve.shard.{i}.conns")),
            queue_depth: intern(format!("serve.shard.{i}.queue_depth")),
        })
        .collect()
}

/// Reply protocol for one request, decided by its request frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Proto {
    Json,
    Binary,
}

/// One queued prediction row, owned by a shard batcher.
struct Job {
    model_id: String,
    predictor: Arc<MeasurementPredictor>,
    measured: Vec<f64>,
    parent_span: Option<String>,
    trace_ctx: Option<TraceContext>,
    /// Completion routing: the reactor that owns the socket, its conn
    /// token, the request serial, and this row's index within the request.
    home: usize,
    conn: Token,
    serial: u64,
    row: usize,
}

/// Why a non-blocking push was refused.
enum PushRefused {
    /// The queue is at capacity; the request should shed.
    Full(usize),
    /// The daemon is draining; new work is refused.
    Stopping,
}

/// Bounded per-shard job queue: non-blocking producers (reactors shed
/// instead of waiting), condvar-blocking consumer (the shard batcher).
struct JobQueue {
    inner: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue { inner: Mutex::new(VecDeque::new()), not_empty: Condvar::new(), cap }
    }

    /// Atomically enqueue all rows of one request, or none of them.
    /// Checking `stopping` under the queue lock is what makes the drain
    /// airtight: once the flag is set no new job can enter, so "stopping
    /// and empty" really means the batcher is done.
    fn try_push_all(&self, jobs: Vec<Job>, stopping: &AtomicBool) -> Result<usize, PushRefused> {
        let mut q = self.inner.lock().unwrap();
        if stopping.load(Ordering::SeqCst) {
            return Err(PushRefused::Stopping);
        }
        if q.len() + jobs.len() > self.cap {
            return Err(PushRefused::Full(q.len()));
        }
        q.extend(jobs);
        let depth = q.len();
        drop(q);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Pops the front row plus every queued row for the same model and
    /// width (up to `batch_max`, preserving arrival order of the rest) —
    /// the same coalescing rule as the legacy queue. Blocks while empty;
    /// `None` once `stopped` is set *and* the queue has drained.
    fn pop_batch(&self, batch_max: usize, stopped: &AtomicBool) -> Option<Vec<Job>> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(front) = q.pop_front() {
                let mut batch = vec![front];
                let mut i = 0;
                while batch.len() < batch_max && i < q.len() {
                    if q[i].model_id == batch[0].model_id
                        && q[i].measured.len() == batch[0].measured.len()
                    {
                        batch.push(q.remove(i).expect("index i is in bounds"));
                    } else {
                        i += 1;
                    }
                }
                return Some(batch);
            }
            if stopped.load(Ordering::SeqCst) {
                return None;
            }
            q = self.not_empty.wait(q).unwrap();
        }
    }

    /// Wakes the batcher so it can observe the stop flag.
    fn wake_all(&self) {
        self.not_empty.notify_all();
    }

    /// Rows currently queued (the watchdog's "work is pending" signal).
    fn depth(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

/// Cross-thread messages a reactor drains from its mailbox.
enum Msg {
    /// A freshly-accepted socket to adopt.
    Conn(TcpStream),
    /// One prediction row finished (or failed) in a batcher.
    Done { conn: Token, serial: u64, row: usize, result: Result<Vec<f64>, String> },
    /// Begin draining: stop parsing new frames, finish in-flight work.
    Stop,
}

/// How to shape the reply once every row of a request has completed.
#[derive(Clone, Copy)]
enum ReplyKind {
    /// `predict` — one row in, one row out.
    Single,
    /// `predict_batch` — reply carries all rows.
    Batch,
}

/// A request whose rows are out with the batchers.
struct Inflight {
    serial: u64,
    kind: ReplyKind,
    proto: Proto,
    ctx: TraceContext,
    t0: Instant,
    results: Vec<Option<Vec<f64>>>,
    done: usize,
    error: Option<String>,
}

/// Per-connection reactor state (the `D` of [`NetShard`]).
#[derive(Default)]
struct ConnState {
    inflight: Option<Inflight>,
    /// Close once the write buffer drains (set after protocol errors).
    close_after_flush: bool,
}

/// Renders a JSON payload as one length-prefixed frame.
fn json_frame(payload: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    write_frame(&mut buf, payload).expect("in-memory frame write cannot fail");
    buf
}

struct Reactor {
    idx: usize,
    net: NetShard<ConnState>,
    mailbox: Mailbox<Msg>,
    senders: Vec<MailboxSender<Msg>>,
    queues: Arc<Vec<JobQueue>>,
    ring: Arc<HashRing>,
    shared: Arc<Shared>,
    gauges: Arc<Vec<ShardGauges>>,
    listen_addr: SocketAddr,
    draining: bool,
    inflight_count: usize,
    next_serial: u64,
}

impl Reactor {
    fn conns_gauge(&self) {
        pathrep_obs::gauge_set(self.gauges[self.idx].conns, self.net.conn_count() as f64);
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut mail: Vec<Msg> = Vec::new();
        loop {
            let woken = match self.net.poll(&mut events, None) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("pathrep-serve: [warn] shard {} poll failed: {e}", self.idx);
                    break;
                }
            };
            if woken {
                self.mailbox.drain_into(&mut mail);
                for msg in mail.drain(..) {
                    match msg {
                        Msg::Conn(stream) => self.adopt(stream),
                        Msg::Done { conn, serial, row, result } => {
                            self.complete(conn, serial, row, result)
                        }
                        Msg::Stop => self.draining = true,
                    }
                }
            }
            for i in 0..events.len() {
                self.handle_event(events[i]);
            }
            if self.draining && self.inflight_count == 0 && self.all_flushed() {
                break;
            }
        }
        // Teardown: dropping the conns closes the sockets.
        for token in self.net.tokens() {
            self.net.remove_conn(token);
        }
        self.conns_gauge();
        pathrep_obs::gauge_set(self.gauges[self.idx].queue_depth, 0.0);
    }

    fn adopt(&mut self, stream: TcpStream) {
        if self.draining {
            return; // late racer: dropping the socket closes it
        }
        match self.net.add_conn(stream, ConnState::default()) {
            Ok(_) => self.conns_gauge(),
            Err(e) => eprintln!("pathrep-serve: [warn] shard {} adopt failed: {e}", self.idx),
        }
    }

    fn all_flushed(&mut self) -> bool {
        self.net.tokens().into_iter().all(|t| {
            self.net
                .conn_mut(t)
                .map_or(true, |(conn, _)| !conn.wants_write())
        })
    }

    fn handle_event(&mut self, ev: Event) {
        if ev.error {
            self.close_conn(ev.token);
            return;
        }
        if ev.readable {
            let fill_failed = match self.net.conn_mut(ev.token) {
                Some((conn, _)) => conn.fill().is_err(),
                None => return,
            };
            if fill_failed {
                self.close_conn(ev.token);
                return;
            }
            self.pump_conn(ev.token);
        }
        if ev.writable {
            let flush_failed = match self.net.conn_mut(ev.token) {
                Some((conn, _)) => conn.flush().is_err(),
                None => return,
            };
            if flush_failed {
                self.close_conn(ev.token);
                return;
            }
            self.rearm(ev.token);
        }
        self.maybe_close(ev.token);
    }

    /// Parse and serve as many buffered frames as flow control allows: at
    /// most one hot-path request in flight per connection (replies stay in
    /// request order and pipelining clients get backpressure instead of
    /// unbounded queueing).
    fn pump_conn(&mut self, token: Token) {
        loop {
            enum Scanned {
                Frame(WireFrame),
                None,
                Bad(String),
            }
            let scanned = {
                let (conn, state) = match self.net.conn_mut(token) {
                    Some(x) => x,
                    None => return,
                };
                if state.inflight.is_some() || state.close_after_flush || self.draining {
                    break;
                }
                match binproto::scan_frame(conn.data()) {
                    Ok(Some((frame, used))) => {
                        conn.consume(used);
                        Scanned::Frame(frame)
                    }
                    Ok(None) => Scanned::None,
                    Err(e) => Scanned::Bad(e.to_string()),
                }
            };
            match scanned {
                Scanned::Frame(frame) => self.handle_frame(token, frame),
                Scanned::None => break,
                Scanned::Bad(message) => {
                    // Framing is broken; answer once and close (mirrors the
                    // legacy runtime's frame-level error handling).
                    self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    pathrep_obs::counter_add("serve.errors", 1);
                    let reply = json_frame(&Response::Error { message }.encode());
                    self.queue_reply(token, &reply);
                    if let Some((_, state)) = self.net.conn_mut(token) {
                        state.close_after_flush = true;
                    }
                    break;
                }
            }
        }
        self.maybe_close(token);
    }

    fn handle_frame(&mut self, token: Token, frame: WireFrame) {
        let t0 = Instant::now();
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        pathrep_obs::counter_add("serve.requests", 1);
        pathrep_obs::counter_add("serve.shard.requests", 1);
        match frame {
            WireFrame::Json(payload) => match Request::decode_with_trace(&payload) {
                Err(e) => {
                    self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    pathrep_obs::counter_add("serve.errors", 1);
                    let reply = json_frame(&Response::Error { message: e.to_string() }.encode());
                    self.queue_reply(token, &reply);
                }
                Ok((req, wire_ctx)) => {
                    let ctx = effective_trace(wire_ctx);
                    let _ctx = trace::set_context(ctx);
                    let _span = pathrep_obs::span!("serve.shard.request");
                    match req {
                        Request::Predict { model, measured } => {
                            self.start_predict(
                                token,
                                Proto::Json,
                                ctx,
                                t0,
                                ReplyKind::Single,
                                model,
                                vec![measured],
                            );
                        }
                        Request::PredictBatch { model, measured } => {
                            if measured.is_empty() {
                                let resp = Response::PredictedBatch { predicted: vec![] };
                                self.finish_control(token, t0, resp, ctx);
                            } else {
                                self.start_predict(
                                    token,
                                    Proto::Json,
                                    ctx,
                                    t0,
                                    ReplyKind::Batch,
                                    model,
                                    measured,
                                );
                            }
                        }
                        Request::Shutdown => {
                            self.finish_control(token, t0, Response::ShuttingDown, ctx);
                            self.initiate_shutdown();
                        }
                        other => {
                            let resp = respond_to(&self.shared, other);
                            self.finish_control(token, t0, resp, ctx);
                        }
                    }
                }
            },
            WireFrame::Binary { op, payload } => match BinRequest::decode(op, &payload) {
                Err(e) => {
                    self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    pathrep_obs::counter_add("serve.errors", 1);
                    let reply = BinResponse::Error { message: e.to_string() }.encode(None);
                    self.queue_reply(token, &reply);
                }
                Ok((req, wire_ctx)) => {
                    let ctx = effective_trace(wire_ctx);
                    let _ctx = trace::set_context(ctx);
                    let _span = pathrep_obs::span!("serve.shard.request");
                    match req {
                        BinRequest::Predict { model, measured } => {
                            self.start_predict(
                                token,
                                Proto::Binary,
                                ctx,
                                t0,
                                ReplyKind::Single,
                                model,
                                vec![measured],
                            );
                        }
                        BinRequest::PredictBatch { model, rows, cols, data } => {
                            if rows == 0 {
                                let reply = BinResponse::PredictedBatch {
                                    rows: 0,
                                    cols: 0,
                                    data: vec![],
                                }
                                .encode(Some(ctx));
                                self.queue_reply(token, &reply);
                                pathrep_obs::histogram_record_hdr(
                                    "serve.request_ns",
                                    t0.elapsed().as_nanos() as f64,
                                );
                            } else {
                                let row_vecs: Vec<Vec<f64>> =
                                    data.chunks(cols.max(1)).map(<[f64]>::to_vec).collect();
                                self.start_predict(
                                    token,
                                    Proto::Binary,
                                    ctx,
                                    t0,
                                    ReplyKind::Batch,
                                    model,
                                    row_vecs,
                                );
                            }
                        }
                    }
                }
            },
        }
    }

    /// Answer a control request (or an immediate error) in JSON and record
    /// its latency.
    fn finish_control(&mut self, token: Token, t0: Instant, resp: Response, ctx: TraceContext) {
        if matches!(resp, Response::Error { .. }) {
            self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            pathrep_obs::counter_add("serve.errors", 1);
        }
        let reply = json_frame(&resp.encode_with_trace(Some(ctx)));
        self.queue_reply(token, &reply);
        pathrep_obs::histogram_record_hdr("serve.request_ns", t0.elapsed().as_nanos() as f64);
    }

    /// Reply to a failed hot-path request in its own protocol.
    fn reply_error(
        &mut self,
        token: Token,
        proto: Proto,
        ctx: TraceContext,
        t0: Instant,
        message: String,
    ) {
        self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        pathrep_obs::counter_add("serve.errors", 1);
        let reply = match proto {
            Proto::Json => {
                json_frame(&Response::Error { message }.encode_with_trace(Some(ctx)))
            }
            Proto::Binary => BinResponse::Error { message }.encode(Some(ctx)),
        };
        self.queue_reply(token, &reply);
        pathrep_obs::histogram_record_hdr("serve.request_ns", t0.elapsed().as_nanos() as f64);
    }

    /// Validate a hot-path request, route its rows to the owning shard's
    /// job queue (consistent hash of the model id) and park the request as
    /// in-flight on the connection.
    #[allow(clippy::too_many_arguments)]
    fn start_predict(
        &mut self,
        token: Token,
        proto: Proto,
        ctx: TraceContext,
        t0: Instant,
        kind: ReplyKind,
        model: String,
        rows: Vec<Vec<f64>>,
    ) {
        let artifact = match resolve_model(&self.shared, &model) {
            Ok(a) => a,
            Err(message) => return self.reply_error(token, proto, ctx, t0, message),
        };
        let want = artifact.predictor.measurement_count();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != want {
                let message =
                    format!("row {i}: expected {want} measurements, got {}", row.len());
                return self.reply_error(token, proto, ctx, t0, message);
            }
        }
        let serial = self.next_serial;
        self.next_serial += 1;
        let parent_span = pathrep_obs::current_span_path();
        let predictor = Arc::new(artifact.predictor.clone());
        let target = self.ring.shard_for(&model);
        let n_rows = rows.len();
        let jobs: Vec<Job> = rows
            .into_iter()
            .enumerate()
            .map(|(row, measured)| Job {
                model_id: model.clone(),
                predictor: Arc::clone(&predictor),
                measured,
                parent_span: parent_span.clone(),
                trace_ctx: Some(ctx),
                home: self.idx,
                conn: token,
                serial,
                row,
            })
            .collect();
        match self.queues[target].try_push_all(jobs, &self.shared.stopping) {
            Ok(depth) => {
                Stats::bump_max(&self.shared.stats.queue_high_water, depth as u64);
                pathrep_obs::gauge_set(self.gauges[target].queue_depth, depth as f64);
                if let Some((_, state)) = self.net.conn_mut(token) {
                    state.inflight = Some(Inflight {
                        serial,
                        kind,
                        proto,
                        ctx,
                        t0,
                        results: vec![None; n_rows],
                        done: 0,
                        error: None,
                    });
                    self.inflight_count += 1;
                }
            }
            Err(PushRefused::Full(depth)) => {
                pathrep_obs::counter_add("serve.shard.shed", 1);
                let message = format!(
                    "server overloaded: shard {target} queue is full \
                     ({depth} rows queued, capacity {})",
                    self.shared.config.queue_cap
                );
                self.reply_error(token, proto, ctx, t0, message);
            }
            Err(PushRefused::Stopping) => {
                self.reply_error(token, proto, ctx, t0, "server is shutting down".into());
            }
        }
    }

    /// Apply one row completion; when the request is whole, encode and
    /// queue the reply, then resume parsing the connection's buffer.
    fn complete(&mut self, token: Token, serial: u64, row: usize, result: Result<Vec<f64>, String>) {
        let finished = {
            let inf = match self.net.conn_mut(token) {
                Some((_, state)) => match state.inflight.as_mut() {
                    Some(inf) if inf.serial == serial => inf,
                    // Stale completion for a conn that died (or a token
                    // that was recycled): the serial can never match a
                    // different request, so it is safe to drop.
                    _ => return,
                },
                None => return,
            };
            match result {
                Ok(values) => {
                    inf.results[row] = Some(values);
                    self.shared.stats.predictions.fetch_add(1, Ordering::Relaxed);
                    pathrep_obs::counter_add("serve.predictions", 1);
                }
                Err(e) => {
                    if inf.error.is_none() {
                        inf.error = Some(e);
                    }
                }
            }
            inf.done += 1;
            inf.done == inf.results.len()
        };
        if !finished {
            return;
        }
        let inf = match self.net.conn_mut(token) {
            Some((_, state)) => state.inflight.take().expect("inflight present when finished"),
            None => return,
        };
        self.inflight_count -= 1;
        let reply = match inf.error {
            Some(message) => {
                self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                pathrep_obs::counter_add("serve.errors", 1);
                match inf.proto {
                    Proto::Json => json_frame(
                        &Response::Error { message }.encode_with_trace(Some(inf.ctx)),
                    ),
                    Proto::Binary => BinResponse::Error { message }.encode(Some(inf.ctx)),
                }
            }
            None => {
                let rows: Vec<Vec<f64>> = inf
                    .results
                    .into_iter()
                    .map(|r| r.expect("all rows completed without error"))
                    .collect();
                match (inf.kind, inf.proto) {
                    (ReplyKind::Single, Proto::Json) => json_frame(
                        &Response::Predicted { predicted: rows.into_iter().next().unwrap() }
                            .encode_with_trace(Some(inf.ctx)),
                    ),
                    (ReplyKind::Batch, Proto::Json) => json_frame(
                        &Response::PredictedBatch { predicted: rows }
                            .encode_with_trace(Some(inf.ctx)),
                    ),
                    (ReplyKind::Single, Proto::Binary) => BinResponse::Predicted {
                        predicted: rows.into_iter().next().unwrap(),
                    }
                    .encode(Some(inf.ctx)),
                    (ReplyKind::Batch, Proto::Binary) => {
                        let cols = rows.first().map_or(0, Vec::len);
                        let mut flat = Vec::with_capacity(rows.len() * cols);
                        for r in &rows {
                            flat.extend_from_slice(r);
                        }
                        BinResponse::PredictedBatch { rows: rows.len(), cols, data: flat }
                            .encode(Some(inf.ctx))
                    }
                }
            }
        };
        self.queue_reply(token, &reply);
        pathrep_obs::histogram_record_hdr(
            "serve.request_ns",
            inf.t0.elapsed().as_nanos() as f64,
        );
        // The connection may have whole frames buffered behind the one we
        // just answered — serve them now that the in-flight slot is free.
        self.pump_conn(token);
    }

    /// Queue reply bytes, flush what the socket will take immediately, and
    /// arm write interest for the rest.
    fn queue_reply(&mut self, token: Token, bytes: &[u8]) {
        let flush_failed = match self.net.conn_mut(token) {
            Some((conn, _)) => {
                conn.queue_write(bytes);
                conn.flush().is_err()
            }
            None => return,
        };
        if flush_failed {
            self.close_conn(token);
            return;
        }
        self.rearm(token);
    }

    /// Point the poller at what this connection actually needs next.
    fn rearm(&mut self, token: Token) {
        let interest = match self.net.conn_mut(token) {
            Some((conn, _)) => {
                if conn.wants_write() {
                    Interest::BOTH
                } else {
                    Interest::READ
                }
            }
            None => return,
        };
        let _ = self.net.set_interest(token, interest);
    }

    /// Close now if the peer is gone (or errored out) and nothing is owed.
    fn maybe_close(&mut self, token: Token) {
        let should_close = match self.net.conn_mut(token) {
            Some((conn, state)) => {
                (conn.is_eof() || state.close_after_flush)
                    && state.inflight.is_none()
                    && !conn.wants_write()
            }
            None => false,
        };
        if should_close {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: Token) {
        if let Some((_, state)) = self.net.remove_conn(token) {
            if state.inflight.is_some() {
                // Queued rows will still complete; their Done messages
                // fail the serial match and fall on the floor.
                self.inflight_count -= 1;
            }
            self.conns_gauge();
        }
    }

    fn initiate_shutdown(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        for s in &self.senders {
            s.send(Msg::Stop);
        }
        for q in self.queues.iter() {
            q.wake_all();
        }
        // Nudge the accept loop awake so it observes the flag.
        let _ = TcpStream::connect(self.listen_addr);
    }
}

/// One shard's batcher: pops coalesced same-model batches from its queue,
/// runs the fused kernel, and mails one `Done` per row back to the reactor
/// that owns each row's socket. Never blocks on a reactor.
fn shard_batcher(
    idx: usize,
    shared: &Shared,
    queues: &[JobQueue],
    senders: &[MailboxSender<Msg>],
    heartbeats: &[AtomicU64],
    gauges: &[ShardGauges],
) {
    let beat = || {
        heartbeats[idx].store(shared.epoch.elapsed().as_millis() as u64, Ordering::Relaxed)
    };
    while let Some(batch) = queues[idx].pop_batch(shared.config.batch_max, &shared.stopping) {
        beat();
        let fault_ms = shared.fault_ms.load(Ordering::Relaxed);
        if fault_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(fault_ms));
        }
        let rows = batch.len();
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        Stats::bump_max(&shared.stats.max_batch, rows as u64);
        pathrep_obs::histogram_record_with("serve.batch_rows", BATCH_EDGES, rows as f64);
        pathrep_obs::gauge_set(gauges[idx].queue_depth, queues[idx].depth() as f64);
        let _parent = pathrep_obs::adopt_span_parent(batch[0].parent_span.clone());
        let _ctx = batch[0].trace_ctx.map(trace::set_context);
        let _span = pathrep_obs::span!("serve.batch");
        let predictor = Arc::clone(&batch[0].predictor);
        let width = batch[0].measured.len();
        let mut data = Vec::with_capacity(rows * width);
        for job in &batch {
            data.extend_from_slice(&job.measured);
        }
        let result = Matrix::from_vec(rows, width, data)
            .map_err(|e| e.to_string())
            .and_then(|m| predictor.predict_batch(&m).map_err(|e| e.to_string()));
        for (i, job) in batch.iter().enumerate() {
            let row_result = match &result {
                Ok(out) => Ok(out.row(i).to_vec()),
                Err(e) => Err(e.clone()),
            };
            senders[job.home].send(Msg::Done {
                conn: job.conn,
                serial: job.serial,
                row: job.row,
                result: row_result,
            });
        }
        beat();
    }
}

/// Sharded stall watchdog: fires once per stalled shard (rows queued but
/// that shard's batcher heartbeat quiet past the deadline), mirroring the
/// legacy watchdog's warn + counter + flight-dump behavior.
fn shard_watchdog(
    shared: &Shared,
    queues: &[JobQueue],
    heartbeats: &[AtomicU64],
    deadline_ms: u64,
) {
    let poll = std::time::Duration::from_millis((deadline_ms / 4).clamp(10, 250));
    let slice = std::time::Duration::from_millis(5);
    let mut fired = vec![false; queues.len()];
    while !shared.stopping.load(Ordering::SeqCst) {
        let wake = std::time::Instant::now() + poll;
        while std::time::Instant::now() < wake && !shared.stopping.load(Ordering::SeqCst) {
            std::thread::sleep(slice);
        }
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let now_ms = shared.epoch.elapsed().as_millis() as u64;
        for (i, q) in queues.iter().enumerate() {
            let depth = q.depth();
            let age = now_ms.saturating_sub(heartbeats[i].load(Ordering::Relaxed));
            if depth > 0 && age > deadline_ms {
                if !fired[i] {
                    fired[i] = true;
                    pathrep_obs::counter_add("serve.watchdog_fires", 1);
                    let diagnosis = format!(
                        "shard {i} batcher heartbeat quiet for {age} ms \
                         (deadline {deadline_ms} ms) with {depth} rows queued"
                    );
                    pathrep_obs::warn("serve.watchdog", || diagnosis.clone());
                    pathrep_obs::flight::instant("serve.watchdog", diagnosis.clone());
                    eprintln!("pathrep-serve: [watchdog] {diagnosis}");
                    pathrep_obs::flight::dump_default();
                }
            } else if age <= deadline_ms {
                fired[i] = false;
            }
        }
    }
}

/// Run the sharded runtime on the calling thread until a `shutdown`
/// request drains it; returns the final lifetime statistics. Called by
/// [`crate::server::Server::run`] when `config.shards > 0`.
pub(crate) fn run_sharded(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> std::io::Result<ServerStats> {
    let addr = listener.local_addr()?;
    let nshards = shared.config.shards.max(1);
    let queues: Arc<Vec<JobQueue>> =
        Arc::new((0..nshards).map(|_| JobQueue::new(shared.config.queue_cap)).collect());
    let ring = Arc::new(HashRing::new(nshards));
    let heartbeats: Arc<Vec<AtomicU64>> =
        Arc::new((0..nshards).map(|_| AtomicU64::new(0)).collect());
    let gauges: Arc<Vec<ShardGauges>> = Arc::new(shard_gauges(nshards));

    let mut mailboxes = Vec::with_capacity(nshards);
    let mut senders = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let (mailbox, sender) = Mailbox::new()?;
        mailboxes.push(mailbox);
        senders.push(sender);
    }

    let mut reactors = Vec::with_capacity(nshards);
    for (idx, mailbox) in mailboxes.into_iter().enumerate() {
        let mut net: NetShard<ConnState> = NetShard::new()?;
        net.attach_wake(mailbox.wake_fd())?;
        let reactor = Reactor {
            idx,
            net,
            mailbox,
            senders: senders.clone(),
            queues: Arc::clone(&queues),
            ring: Arc::clone(&ring),
            shared: Arc::clone(&shared),
            gauges: Arc::clone(&gauges),
            listen_addr: addr,
            draining: false,
            inflight_count: 0,
            next_serial: 0,
        };
        reactors.push(
            std::thread::Builder::new()
                .name(format!("serve-reactor-{idx}"))
                .spawn(move || reactor.run())
                .expect("spawning a reactor thread"),
        );
    }

    let mut batchers = Vec::with_capacity(nshards);
    for idx in 0..nshards {
        let shared = Arc::clone(&shared);
        let queues = Arc::clone(&queues);
        let senders = senders.clone();
        let heartbeats = Arc::clone(&heartbeats);
        let gauges = Arc::clone(&gauges);
        batchers.push(
            std::thread::Builder::new()
                .name(format!("serve-batcher-{idx}"))
                .spawn(move || {
                    shard_batcher(idx, &shared, &queues, &senders, &heartbeats, &gauges)
                })
                .expect("spawning a shard batcher"),
        );
    }

    let watchdog = shared.config.watchdog_ms.map(|deadline_ms| {
        let shared = Arc::clone(&shared);
        let queues = Arc::clone(&queues);
        let heartbeats = Arc::clone(&heartbeats);
        std::thread::Builder::new()
            .name("serve-watchdog".into())
            .spawn(move || shard_watchdog(&shared, &queues, &heartbeats, deadline_ms))
            .expect("spawning the watchdog thread")
    });

    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                senders[next].send(Msg::Conn(s));
                next = (next + 1) % nshards;
            }
            Err(e) => eprintln!("pathrep-serve: [warn] accept failed: {e}"),
        }
    }

    // Drain. The shutdown-handling reactor already broadcast Stop and set
    // the flag; repeat both here so a drain that began any other way (or a
    // Stop lost to a crashed reactor) still converges.
    shared.stopping.store(true, Ordering::SeqCst);
    for q in queues.iter() {
        q.wake_all();
    }
    for s in &senders {
        s.send(Msg::Stop);
    }
    for b in batchers {
        let _ = b.join();
    }
    for r in reactors {
        let _ = r.join();
    }
    if let Some(w) = watchdog {
        let _ = w.join();
    }
    pathrep_obs::gauge_set("serve.queue_depth", 0.0);
    let stats = shared.stats.snapshot(shared.cache_len() as u64);
    ledger::record("serve", "drained", |f| {
        f.text("addr", &addr.to_string())
            .int("requests", stats.requests)
            .int("predictions", stats.predictions)
            .int("errors", stats.errors);
    });
    Ok(stats)
}
