//! End-to-end serving: a real daemon on an ephemeral port, concurrent
//! clients over TCP, byte-identity against the offline predictor, obs
//! families in the Prometheus export, and byte-stability of the committed
//! golden artifact.

use pathrep_serve::demo::build_quickstart_model;
use pathrep_serve::{stitch_traces, Client, ModelArtifact, Server, ServerConfig, TraceContext};
use std::sync::{Arc, Mutex};

/// The daemon tests mutate the global obs registry; serialize them (and
/// recover the lock if an earlier test's assert poisoned it).
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn temp_path(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("pathrep_serve_{}_{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_max: 8,
        queue_cap: 32,
        cache_cap: 4,
        ..ServerConfig::default()
    }
}

#[test]
fn concurrent_clients_get_bit_identical_predictions() {
    let _obs = obs_lock();
    pathrep_obs::set_enabled(true);
    pathrep_obs::ledger::set_collecting(true);
    pathrep_obs::reset();

    let demo = build_quickstart_model().expect("quickstart model builds");
    let path = temp_path("e2e.artifact");
    let model_id = demo.artifact.save(&path).expect("artifact saves");

    let handle = Server::bind(test_config())
        .expect("bind ephemeral port")
        .spawn()
        .expect("server spawns");
    let addr = handle.addr();

    let loaded = Client::connect(addr)
        .expect("connect")
        .load_model(&path)
        .expect("daemon loads the artifact");
    assert_eq!(loaded.model, model_id, "content hash is the model id");
    assert_eq!(loaded.label, "quickstart");

    // ≥ 4 concurrent clients, each predicting several fabricated chips.
    let chips = demo.measure_chips(20, 7).expect("chips fabricate");
    let artifact = Arc::new(demo.artifact);
    let workers: Vec<_> = (0..5)
        .map(|c| {
            let chips = chips.clone();
            let artifact = Arc::clone(&artifact);
            let model_id = model_id.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("worker connects");
                for (k, measured) in chips.iter().enumerate().skip(c % 3) {
                    let got = client.predict(&model_id, measured).expect("predict");
                    let want = artifact.predictor.predict(measured).expect("offline");
                    assert_eq!(got.len(), want.len());
                    for (a, b) in got.iter().zip(want.iter()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "client {c} chip {k}: served != offline"
                        );
                    }
                }
                // The batched endpoint must agree too.
                let got = client.predict_batch(&model_id, &chips).expect("batch");
                for (row, measured) in got.iter().zip(chips.iter()) {
                    let want = artifact.predictor.predict(measured).expect("offline");
                    for (a, b) in row.iter().zip(want.iter()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "client {c}: batch != offline");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker threads succeed");
    }

    let stats = Client::connect(addr).expect("connect").stats().expect("stats");
    assert_eq!(stats.errors, 0, "soak must be error-free: {stats:?}");
    assert_eq!(stats.model_loads, 1);
    assert!(stats.predictions >= 5 * 20, "all rows predicted");
    assert!(stats.batches >= 1);
    assert_eq!(stats.models_cached, 1);

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown acknowledged");
    let final_stats = handle.join();
    assert_eq!(final_stats.errors, 0);

    // The Prometheus export carries the serve families.
    let prom = pathrep_obs::prom::render_prometheus(&pathrep_obs::registry().snapshot());
    for family in [
        "pathrep_serve_requests",
        "pathrep_serve_predictions",
        "pathrep_serve_model_loads",
        "pathrep_serve_batch_rows",
        "pathrep_serve_request_ns",
        "pathrep_serve_queue_depth",
    ] {
        assert!(prom.contains(family), "prometheus export lacks {family}:\n{prom}");
    }
    // The ledger recorded the model load.
    let records = pathrep_obs::ledger::records();
    assert!(
        records
            .iter()
            .any(|r| r.stage == "serve" && r.name == "model_load"),
        "ledger must carry a serve/model_load record"
    );

    pathrep_obs::ledger::set_collecting(false);
    pathrep_obs::set_enabled(false);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_model_and_bad_rows_are_typed_server_errors() {
    let _obs = obs_lock();
    let demo = build_quickstart_model().expect("quickstart model builds");
    let path = temp_path("errors.artifact");
    demo.artifact.save(&path).expect("artifact saves");

    let handle = Server::bind(test_config())
        .expect("bind ephemeral port")
        .spawn()
        .expect("server spawns");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    // Predict against a model that was never loaded.
    let err = client.predict("0000000000000000", &[1.0]).unwrap_err();
    assert!(err.to_string().contains("not loaded"), "{err}");

    // Wrong measurement arity after a successful load.
    let loaded = client.load_model(&path).expect("load");
    let err = client.predict(&loaded.model, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap_err();
    assert!(err.to_string().contains("measurements"), "{err}");

    // Loading a nonexistent path is an error, not a crash.
    let err = client.load_model("/nonexistent/nope.artifact").unwrap_err();
    assert!(err.to_string().contains("I/O"), "{err}");

    // The connection survived all three errors.
    let stats = client.stats().expect("stats still works");
    assert_eq!(stats.errors, 3);

    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn traced_requests_stitch_into_one_chrome_trace() {
    let _obs = obs_lock();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    pathrep_obs::trace::set_collecting(true);

    let demo = build_quickstart_model().expect("quickstart model builds");
    let path = temp_path("trace.artifact");
    demo.artifact.save(&path).expect("artifact saves");
    let handle = Server::bind(test_config())
        .expect("bind ephemeral port")
        .spawn()
        .expect("server spawns");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // An untraced request: the daemon mints a context and echoes it.
    let loaded = client.load_model(&path).expect("load");
    let minted = client.last_trace().expect("daemon echoes a minted context");
    assert!(
        minted.trace_id >= (1 << 48),
        "server-minted ids live above 2^48, got {}",
        minted.trace_id
    );

    // A traced request: the caller's context is propagated and echoed.
    let ctx = TraceContext {
        trace_id: 0xA11CE,
        request_seq: 1,
    };
    let chips = demo.measure_chips(1, 3).expect("chips");
    {
        let _g = pathrep_obs::trace::set_context(ctx);
        let _span = pathrep_obs::span!("client.predict");
        client.predict(&loaded.model, &chips[0]).expect("predict");
    }
    assert_eq!(client.last_trace(), Some(ctx), "daemon echoes the sent context");

    client.shutdown().expect("shutdown");
    handle.join();
    pathrep_obs::trace::set_collecting(false);

    // Client and daemon ran in one process here, so split the shared
    // buffer by span namespace to fabricate the two per-process trace
    // files a real deployment exports.
    let events = pathrep_obs::trace::events();
    let client_evts: Vec<_> = events
        .iter()
        .filter(|e| e.name.starts_with("client."))
        .cloned()
        .collect();
    let server_evts: Vec<_> = events
        .iter()
        .filter(|e| !e.name.starts_with("client."))
        .cloned()
        .collect();
    assert!(!client_evts.is_empty() && !server_evts.is_empty());
    let client_trace = pathrep_obs::trace::render_chrome_trace(&client_evts, 100);
    let server_trace = pathrep_obs::trace::render_chrome_trace(&server_evts, 200);

    let merged = stitch_traces(&[
        ("client_trace.json".to_owned(), client_trace),
        ("server_trace.json".to_owned(), server_trace),
    ])
    .expect("stitch succeeds");
    let parsed = pathrep_obs::json::parse(&merged).expect("merged trace parses");
    let parsed = parsed.array().expect("merged trace is an array");

    // Every (pid, tid) track must carry balanced, never-negative B/E
    // nesting — stitching must not interleave files into broken stacks.
    let mut depth: std::collections::BTreeMap<(u64, u64), i64> = std::collections::BTreeMap::new();
    let mut traced_pids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for ev in parsed {
        let pid = ev.field("pid").unwrap().number().unwrap() as u64;
        let tid = ev.field("tid").unwrap().number().unwrap() as u64;
        let d = depth.entry((pid, tid)).or_insert(0);
        match ev.field("ph").unwrap().string().unwrap().as_str() {
            "B" => *d += 1,
            "E" => {
                *d -= 1;
                assert!(*d >= 0, "end without begin on pid {pid} tid {tid}");
            }
            other => panic!("unexpected phase {other}"),
        }
        if let Ok(args) = ev.field("args") {
            if args.field("trace_id").and_then(|t| t.number()) == Ok(0xA11CE as f64) {
                traced_pids.insert(pid);
            }
        }
    }
    assert!(depth.values().all(|&d| d == 0), "unbalanced spans: {depth:?}");
    // The propagated trace_id shows up in BOTH stitched processes — the
    // cross-process correlation the telemetry plane exists for.
    assert_eq!(
        traced_pids.into_iter().collect::<Vec<_>>(),
        vec![0, 1],
        "trace_id 0xA11CE must appear in both the client and server files"
    );

    pathrep_obs::set_enabled(false);
    pathrep_obs::reset();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_injection_trips_the_watchdog_and_flight_dumps_land_on_disk() {
    let _obs = obs_lock();
    pathrep_obs::set_enabled(true);
    pathrep_obs::reset();
    pathrep_obs::flight::set_capacity(1024);
    // Route watchdog dumps to the temp dir, not the crate directory.
    let watchdog_dump = temp_path("watchdog_flight.json");
    std::env::set_var("PATHREP_OBS_FLIGHT_DUMP", &watchdog_dump);

    let demo = build_quickstart_model().expect("quickstart model builds");
    let path = temp_path("watchdog.artifact");
    demo.artifact.save(&path).expect("artifact saves");

    // Fault injection is refused unless the daemon opted in.
    let plain = Server::bind(test_config())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut refuse = Client::connect(plain.addr()).expect("connect");
    let err = refuse.set_fault(100).unwrap_err();
    assert!(err.to_string().contains("--allow-fault"), "{err}");
    refuse.shutdown().expect("shutdown");
    plain.join();

    // batch_max 1 so a stalled batch leaves the other clients' rows
    // queued — the depth>0 condition the watchdog requires.
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_max: 1,
        queue_cap: 32,
        cache_cap: 2,
        watchdog_ms: Some(50),
        allow_fault: true,
        ..ServerConfig::default()
    };
    let handle = Server::bind(config).expect("bind").spawn().expect("spawn");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    let loaded = client.load_model(&path).expect("load");

    // An on-demand dump to an explicit path works while healthy.
    let ondemand = temp_path("ondemand_flight.json");
    let (dumped_path, _records, _dropped) =
        client.dump_flight(Some(&ondemand)).expect("dump_flight");
    assert_eq!(dumped_path, ondemand);
    let dump = std::fs::read_to_string(&ondemand).expect("dump file exists");
    pathrep_obs::json::parse(&dump)
        .expect("on-demand flight dump is valid JSON")
        .array()
        .expect("chrome trace array");

    // Stall the batcher past the watchdog deadline while rows queue.
    assert_eq!(client.set_fault(200).expect("fault accepted"), 200);
    let chips = demo.measure_chips(2, 11).expect("chips");
    let model_id = loaded.model.clone();
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let chips = chips.clone();
            let model_id = model_id.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("worker connects");
                for m in &chips {
                    c.predict(&model_id, m).expect("predict under fault");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker succeeds");
    }
    assert_eq!(client.set_fault(0).expect("fault cleared"), 0);

    let snap = pathrep_obs::registry().snapshot();
    let fires = snap
        .counters
        .iter()
        .find(|c| c.name == "serve.watchdog_fires")
        .map_or(0, |c| c.value);
    assert!(fires >= 1, "watchdog must fire during the stall: {snap:?}");
    let watchdog_json = std::fs::read_to_string(&watchdog_dump)
        .expect("watchdog wrote its flight dump");
    assert!(
        watchdog_json.contains("serve.watchdog"),
        "dump carries the watchdog's instant mark"
    );

    client.shutdown().expect("shutdown");
    handle.join();
    std::env::remove_var("PATHREP_OBS_FLIGHT_DUMP");
    pathrep_obs::set_enabled(false);
    pathrep_obs::reset();
    for f in [&path, &ondemand, &watchdog_dump] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn golden_artifact_is_byte_stable() {
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../golden/quickstart_model.artifact"
    );
    let committed = std::fs::read(golden).expect(
        "golden/quickstart_model.artifact must be committed \
         (generate with `pathrep-client build-artifact`)",
    );
    let demo = build_quickstart_model().expect("quickstart model builds");
    let rebuilt = demo.artifact.to_bytes();
    assert_eq!(
        committed, rebuilt,
        "the quickstart artifact drifted from the committed golden bytes — \
         an algorithm or serialization change altered the model"
    );
    // And the committed bytes parse back into a valid, usable model.
    let (art, id) = ModelArtifact::from_bytes(&committed).expect("golden parses");
    assert_eq!(id, demo.artifact.model_id());
    let chips = demo.measure_chips(2, 3).expect("chips");
    for m in &chips {
        let a = art.predictor.predict(m).expect("golden predicts");
        let b = demo.artifact.predictor.predict(m).expect("fresh predicts");
        assert_eq!(a, b);
    }
}
