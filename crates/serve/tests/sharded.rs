//! The sharded reactor runtime's core invariant: replies are bit-identical
//! to the offline predictor — and therefore to the thread-per-connection
//! runtime — at any shard count, for either wire protocol, including when
//! JSON and binary clients interleave on one daemon.

use pathrep_serve::demo::{build_quickstart_model, DemoModel};
use pathrep_serve::{Client, Server, ServerConfig, WireProtocol};
use std::sync::{Mutex, OnceLock};

/// Daemon tests mutate the global obs registry; serialize them (and
/// recover the lock if an earlier test's assert poisoned it).
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn demo() -> &'static DemoModel {
    static DEMO: OnceLock<DemoModel> = OnceLock::new();
    DEMO.get_or_init(|| build_quickstart_model().expect("quickstart model builds"))
}

fn artifact_path() -> &'static str {
    static PATH: OnceLock<String> = OnceLock::new();
    PATH.get_or_init(|| {
        let mut p = std::env::temp_dir();
        p.push(format!("pathrep_serve_sharded_{}.artifact", std::process::id()));
        let p = p.to_string_lossy().into_owned();
        demo().artifact.save(&p).expect("artifact saves");
        p
    })
}

fn config(shards: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_max: 4,
        queue_cap: 64,
        cache_cap: 2,
        shards,
        ..ServerConfig::default()
    }
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: element {i} differs");
    }
}

/// Run every chip through one daemon at the given shard count with the
/// given protocol: per-chip `predict` calls plus one `predict_batch`,
/// returning `(per_chip_replies, batch_reply)`.
fn serve_round(
    shards: usize,
    proto: WireProtocol,
    chips: &[Vec<f64>],
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let handle = Server::bind(config(shards)).expect("bind").spawn().expect("spawn");
    let addr = handle.addr();
    let loaded = Client::connect(addr)
        .expect("connect")
        .load_model(artifact_path())
        .expect("load");
    let mut client = Client::connect(addr).expect("connect");
    client.set_protocol(proto);
    let singles: Vec<Vec<f64>> = chips
        .iter()
        .map(|m| client.predict(&loaded.model, m).expect("predict"))
        .collect();
    let batch = client.predict_batch(&loaded.model, chips).expect("batch");
    let stats = Client::connect(addr).expect("connect").stats().expect("stats");
    assert_eq!(stats.errors, 0, "shards={shards} round must be error-free: {stats:?}");
    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
    let final_stats = handle.join();
    assert_eq!(final_stats.errors, 0, "shards={shards}: drain saw errors");
    (singles, batch)
}

#[test]
fn replies_are_byte_identical_at_any_shard_count_and_protocol() {
    let _obs = obs_lock();
    let chips = demo().measure_chips(10, 23).expect("chips fabricate");
    let offline: Vec<Vec<f64>> = chips
        .iter()
        .map(|m| demo().artifact.predictor.predict(m).expect("offline"))
        .collect();

    for shards in [0, 1, 4] {
        for proto in [WireProtocol::Json, WireProtocol::Binary] {
            let (singles, batch) = serve_round(shards, proto, &chips);
            for (k, (got, want)) in singles.iter().zip(offline.iter()).enumerate() {
                assert_bits_eq(got, want, &format!("shards={shards} {proto:?} chip {k}"));
            }
            for (k, (got, want)) in batch.iter().zip(offline.iter()).enumerate() {
                assert_bits_eq(got, want, &format!("shards={shards} {proto:?} batch row {k}"));
            }
        }
    }
}

#[test]
fn mixed_protocol_clients_interleave_on_one_sharded_daemon() {
    let _obs = obs_lock();
    let chips = demo().measure_chips(12, 41).expect("chips fabricate");
    let offline: Vec<Vec<f64>> = chips
        .iter()
        .map(|m| demo().artifact.predictor.predict(m).expect("offline"))
        .collect();

    let handle = Server::bind(config(2)).expect("bind").spawn().expect("spawn");
    let addr = handle.addr();
    let loaded = Client::connect(addr)
        .expect("connect")
        .load_model(artifact_path())
        .expect("load");

    // 2 JSON + 2 binary clients hammer the same chips concurrently, so
    // both framings share reactor loops, shard queues and batches.
    let workers: Vec<_> = [
        WireProtocol::Json,
        WireProtocol::Binary,
        WireProtocol::Json,
        WireProtocol::Binary,
    ]
    .into_iter()
    .enumerate()
    .map(|(c, proto)| {
        let chips = chips.clone();
        let offline = offline.clone();
        let model = loaded.model.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("worker connects");
            client.set_protocol(proto);
            for (k, m) in chips.iter().enumerate().skip(c % 3) {
                let got = client.predict(&model, m).expect("predict");
                assert_bits_eq(&got, &offline[k], &format!("client {c} ({proto:?}) chip {k}"));
            }
            let got = client.predict_batch(&model, &chips).expect("batch");
            for (k, (row, want)) in got.iter().zip(offline.iter()).enumerate() {
                assert_bits_eq(row, want, &format!("client {c} ({proto:?}) batch row {k}"));
            }
        })
    })
    .collect();
    for w in workers {
        w.join().expect("worker threads succeed");
    }

    let stats = Client::connect(addr).expect("connect").stats().expect("stats");
    assert_eq!(stats.errors, 0, "mixed-protocol soak must be error-free: {stats:?}");
    assert!(stats.predictions > 0);
    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
    assert_eq!(handle.join().errors, 0);
}

#[test]
fn binary_protocol_surfaces_typed_server_errors() {
    let _obs = obs_lock();
    let handle = Server::bind(config(2)).expect("bind").spawn().expect("spawn");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.set_protocol(WireProtocol::Binary);

    // Unknown model over the binary framing is a server error reply, and
    // the connection survives it.
    let err = client.predict("0000000000000000", &[1.0]).unwrap_err();
    assert!(err.to_string().contains("not loaded"), "{err}");

    let loaded = client.load_model(artifact_path()).expect("load");
    let err = client
        .predict(&loaded.model, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        .unwrap_err();
    assert!(err.to_string().contains("measurements"), "{err}");

    // The same connection still serves good requests afterwards.
    let chips = demo().measure_chips(1, 5).expect("chips");
    let got = client.predict(&loaded.model, &chips[0]).expect("predict");
    let want = demo().artifact.predictor.predict(&chips[0]).expect("offline");
    assert_bits_eq(&got, &want, "post-error predict");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.errors, 2);
    client.shutdown().expect("shutdown");
    handle.join();
}
