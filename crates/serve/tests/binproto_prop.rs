//! Property tests for the binary wire codec: the transport must be
//! bit-exact for every representable `f64` — including NaN payloads,
//! signed zeros, subnormals and infinities — and every truncated or
//! corrupted frame must surface as the existing typed
//! [`ProtocolError`] taxonomy, never a panic or a silently wrong decode.

use pathrep_serve::binproto::{
    parse_header, scan_frame, BinRequest, BinResponse, WireFrame, HEADER_LEN, MAGIC0, MAGIC1,
    OP_PREDICT, VERSION,
};
use pathrep_serve::protocol::{ProtocolError, TraceContext, MAX_FRAME_BYTES};
use proptest::prelude::*;

/// Map a raw bit pattern plus a selector into an adversarial `f64`:
/// selectors below the table length pick a hand-chosen special value, the
/// rest pass the random bits straight through `from_bits` (which itself
/// covers NaNs, subnormals and infinities with positive probability).
fn adversarial_f64(bits: u64, sel: usize) -> f64 {
    const SPECIALS: [u64; 8] = [
        0x7ff8_0000_0000_0001, // quiet NaN with a payload
        0xfff8_dead_beef_cafe, // negative NaN with a payload
        0x8000_0000_0000_0000, // -0.0
        0x0000_0000_0000_0000, // +0.0
        0x0000_0000_0000_0001, // smallest subnormal
        0x000f_ffff_ffff_ffff, // largest subnormal
        0x7ff0_0000_0000_0000, // +inf
        0xfff0_0000_0000_0000, // -inf
    ];
    match SPECIALS.get(sel) {
        Some(&special) => f64::from_bits(special),
        None => f64::from_bits(bits),
    }
}

fn values_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u64..=u64::MAX, 0usize..16), 0..24)
        .prop_map(|pairs| pairs.into_iter().map(|(b, s)| adversarial_f64(b, s)).collect())
}

fn bits_of(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Split an encoded frame into the `(op, payload)` pair the decoder takes.
fn split_frame(bytes: &[u8]) -> (u8, &[u8]) {
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
    let (op, len) = parse_header(header).expect("self-encoded header parses");
    assert_eq!(bytes.len(), HEADER_LEN + len, "declared length matches frame");
    (op, &bytes[HEADER_LEN..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predict_round_trips_bit_exactly(
        model_bits in 0u64..=u64::MAX,
        measured in values_strategy(),
        trace_id in 0u64..=u64::MAX,
        seq in 0u64..=u64::MAX,
        traced in 0u8..2,
    ) {
        let model = format!("{model_bits:016x}");
        let trace = (traced == 1).then_some(TraceContext { trace_id, request_seq: seq });
        let req = BinRequest::Predict { model: model.clone(), measured: measured.clone() };
        let (op, payload) = {
            let bytes = req.encode(trace);
            let (op, payload) = split_frame(&bytes);
            (op, payload.to_vec())
        };
        let (back, echoed) = BinRequest::decode(op, &payload).expect("round trip decodes");
        prop_assert_eq!(echoed, trace);
        match back {
            BinRequest::Predict { model: m, measured: got } => {
                prop_assert_eq!(m, model);
                prop_assert_eq!(bits_of(&got), bits_of(&measured));
            }
            other => prop_assert!(false, "wrong variant: {:?}", other),
        }
    }

    #[test]
    fn predict_batch_round_trips_bit_exactly(
        rows in 0usize..5,
        cols in 0usize..5,
        pool in values_strategy(),
        trace_id in 0u64..=u64::MAX,
    ) {
        // Tile the generated pool into an exactly rows×cols rectangle.
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| pool.get(i % pool.len().max(1)).copied().unwrap_or(f64::NAN))
            .collect();
        let req = BinRequest::PredictBatch { model: "m0".into(), rows, cols, data: data.clone() };
        let trace = Some(TraceContext { trace_id, request_seq: 0 });
        let bytes = req.encode(trace);
        let (op, payload) = split_frame(&bytes);
        let (back, echoed) = BinRequest::decode(op, payload).expect("round trip decodes");
        prop_assert_eq!(echoed, trace);
        match back {
            BinRequest::PredictBatch { rows: r, cols: c, data: got, .. } => {
                prop_assert_eq!((r, c), (rows, cols));
                prop_assert_eq!(bits_of(&got), bits_of(&data));
            }
            other => prop_assert!(false, "wrong variant: {:?}", other),
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly(
        predicted in values_strategy(),
        rows in 0usize..5,
        cols in 0usize..5,
    ) {
        let single = BinResponse::Predicted { predicted: predicted.clone() };
        let bytes = single.encode(None);
        let (op, payload) = split_frame(&bytes);
        let (back, _) = BinResponse::decode(op, payload).expect("decodes");
        match back {
            BinResponse::Predicted { predicted: got } => {
                prop_assert_eq!(bits_of(&got), bits_of(&predicted));
            }
            other => prop_assert!(false, "wrong variant: {:?}", other),
        }

        let data: Vec<f64> = (0..rows * cols)
            .map(|i| predicted.get(i % predicted.len().max(1)).copied().unwrap_or(-0.0))
            .collect();
        let batch = BinResponse::PredictedBatch { rows, cols, data: data.clone() };
        let bytes = batch.encode(None);
        let (op, payload) = split_frame(&bytes);
        let (back, _) = BinResponse::decode(op, payload).expect("decodes");
        match back {
            BinResponse::PredictedBatch { rows: r, cols: c, data: got } => {
                prop_assert_eq!((r, c), (rows, cols));
                prop_assert_eq!(bits_of(&got), bits_of(&data));
            }
            other => prop_assert!(false, "wrong variant: {:?}", other),
        }
    }

    #[test]
    fn every_payload_truncation_is_a_typed_error(
        measured in values_strategy(),
        cut_seed in 0usize..1000,
    ) {
        let req = BinRequest::Predict { model: "feedface".into(), measured };
        let bytes = req.encode(Some(TraceContext { trace_id: 7, request_seq: 3 }));
        let (op, payload) = split_frame(&bytes);
        // Any strict prefix of the payload must decode to Malformed: the
        // cursor either hits a short read or the finish() length check.
        let cut = cut_seed % payload.len().max(1);
        match BinRequest::decode(op, &payload[..cut]) {
            Err(ProtocolError::Malformed(_)) => {}
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
        // Trailing garbage is rejected too, never silently ignored.
        let mut padded = payload.to_vec();
        padded.push(0xAA);
        match BinRequest::decode(op, &padded) {
            Err(ProtocolError::Malformed(_)) => {}
            other => prop_assert!(false, "padded decode gave {:?}", other),
        }
    }

    #[test]
    fn every_frame_prefix_keeps_the_scanner_waiting(
        measured in values_strategy(),
        cut_seed in 0usize..1000,
    ) {
        // A truncated buffer is "need more bytes", not an error: the
        // reactor accumulates partial frames across readiness events.
        let req = BinRequest::Predict { model: "0123456789abcdef".into(), measured };
        let bytes = req.encode(None);
        let cut = cut_seed % bytes.len();
        prop_assert!(scan_frame(&bytes[..cut]).expect("prefix scan never errors").is_none());
        // The complete buffer yields exactly one frame consuming it all.
        let (frame, used) = scan_frame(&bytes).expect("scan").expect("complete frame");
        prop_assert_eq!(used, bytes.len());
        match frame {
            WireFrame::Binary { op, payload } => {
                // Compare by bits: PartialEq would reject NaN == NaN.
                let (back, _) = BinRequest::decode(op, &payload).expect("decodes");
                match (back, req) {
                    (
                        BinRequest::Predict { model: m1, measured: v1 },
                        BinRequest::Predict { model: m2, measured: v2 },
                    ) => {
                        prop_assert_eq!(m1, m2);
                        prop_assert_eq!(bits_of(&v1), bits_of(&v2));
                    }
                    other => prop_assert!(false, "wrong variants: {:?}", other),
                }
            }
            other => prop_assert!(false, "expected binary frame, got {:?}", other),
        }
    }

    #[test]
    fn corrupt_headers_map_to_typed_errors(
        flip_byte in 0usize..3,
        flip_bit in 0u8..8,
        len in 0u32..1024,
    ) {
        let mut header = [MAGIC0, MAGIC1, VERSION, OP_PREDICT, 0, 0, 0, 0];
        header[4..8].copy_from_slice(&len.to_le_bytes());
        prop_assert!(parse_header(&header).is_ok());
        // Flipping any bit of magic0/magic1/version must be rejected.
        header[flip_byte] ^= 1 << flip_bit;
        match parse_header(&header) {
            Err(ProtocolError::Malformed(_)) => {}
            other => prop_assert!(false, "corrupt header gave {:?}", other),
        }
        // Over-limit declared lengths are typed as Oversized before any
        // allocation happens.
        let mut oversized = [MAGIC0, MAGIC1, VERSION, OP_PREDICT, 0, 0, 0, 0];
        let big = (MAX_FRAME_BYTES as u32) + 1 + len;
        oversized[4..8].copy_from_slice(&big.to_le_bytes());
        match parse_header(&oversized) {
            Err(ProtocolError::Oversized(n)) => prop_assert_eq!(n, big as usize),
            other => prop_assert!(false, "oversized header gave {:?}", other),
        }
    }
}
