//! Property-based tests for the circuit substrate: generator invariants
//! and the segment-decomposition contract.

use pathrep_circuit::generator::{CircuitGenerator, GeneratorConfig};
use pathrep_circuit::netlist::GateId;
use pathrep_circuit::paths::{decompose_into_segments, Path};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (60usize..240, 4usize..24, 2usize..16, 0u64..500, 8usize..14).prop_map(
        |(gates, inputs, outputs, seed, depth)| {
            GeneratorConfig::new(gates, inputs, outputs)
                .with_seed(seed)
                .with_depth(depth)
        },
    )
}

/// Walks a path from a random source to a sink by following fanouts.
fn random_path(
    circuit: &pathrep_circuit::generator::PlacedCircuit,
    start_idx: usize,
    branch_bias: usize,
) -> Option<Path> {
    let graph = circuit.graph();
    let sources = graph.sources();
    if sources.is_empty() {
        return None;
    }
    let mut gate: GateId = sources[start_idx % sources.len()];
    let mut gates = vec![gate];
    loop {
        let fanouts = graph.fanouts(gate);
        if fanouts.is_empty() {
            break;
        }
        gate = fanouts[branch_bias % fanouts.len()];
        gates.push(gate);
    }
    Path::new(gates).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_circuits_are_well_formed(cfg in config_strategy()) {
        let c = CircuitGenerator::new(cfg.clone()).generate().expect("generate");
        prop_assert_eq!(c.netlist().gate_count(), cfg.n_gates);
        let graph = c.graph();
        // DAG: every edge increases the level.
        for g in graph.topo_order() {
            for &f in graph.fanouts(g) {
                prop_assert!(graph.level(f) > graph.level(g));
            }
        }
        // Depth is exactly as configured.
        prop_assert_eq!(graph.depth(), cfg.depth - 1);
        // Every fanout-free gate is an output.
        for g in graph.topo_order() {
            if graph.fanouts(g).is_empty() {
                prop_assert!(graph.sinks().contains(&g));
            }
        }
        // All delays and scales positive.
        for g in c.netlist().gate_ids() {
            prop_assert!(c.nominal_delay(g) > 0.0);
            prop_assert!(c.delay_scale(g) > 0.0);
        }
    }

    #[test]
    fn segment_decomposition_partitions_every_path(
        cfg in config_strategy(),
        starts in proptest::collection::vec(0usize..1000, 3..8),
        bias in 0usize..3,
    ) {
        let c = CircuitGenerator::new(cfg).generate().expect("generate");
        let mut paths: Vec<Path> = starts
            .iter()
            .filter_map(|&s| random_path(&c, s, bias))
            .collect();
        paths.dedup();
        if paths.is_empty() {
            return Ok(());
        }
        let dec = decompose_into_segments(&paths).expect("decompose");
        // Contract: concatenating a path's segments reproduces its gate
        // multiset exactly (the paper's exact d_P = G·d_S identity).
        for (p, path) in paths.iter().enumerate() {
            let mut via: Vec<GateId> = dec
                .path_segments(p)
                .iter()
                .flat_map(|&s| dec.segments()[s].gates().iter().copied())
                .collect();
            via.sort_unstable();
            let mut direct = path.gates().to_vec();
            direct.sort_unstable();
            prop_assert_eq!(via, direct, "path {} decomposition broken", p);
        }
        // Segment count never exceeds total path gates.
        let total_gates: usize = paths.iter().map(|p| p.len()).sum();
        prop_assert!(dec.segment_count() <= total_gates + paths.len());
    }

    #[test]
    fn placement_stays_on_the_die(cfg in config_strategy()) {
        let c = CircuitGenerator::new(cfg).generate().expect("generate");
        for (_, (x, y)) in c.placement().iter() {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn generation_is_deterministic(cfg in config_strategy()) {
        let a = CircuitGenerator::new(cfg.clone()).generate().expect("a");
        let b = CircuitGenerator::new(cfg).generate().expect("b");
        prop_assert_eq!(a.netlist(), b.netlist());
        prop_assert_eq!(a.placement(), b.placement());
    }
}
