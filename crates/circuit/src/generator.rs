//! Seeded synthetic benchmark generator.
//!
//! The paper evaluates on ISCAS'89 circuits synthesized for minimum area
//! under a stringent timing constraint. Those netlists are not
//! redistributable, so this generator produces *ISCAS'89-class* circuits:
//! levelized DAGs with matching gate counts, a realistic logic-depth
//! profile, locality-biased fan-in selection (which creates the heavy
//! path-sharing and reconvergence that drive the paper's effective-rank
//! phenomenon) and skewed level sizes (which reproduce the "intrinsically
//! unbalanced" circuits the paper mentions).

use crate::cell::{CellKind, CellLibrary};
use crate::graph::TimingGraph;
use crate::netlist::{GateId, Netlist, Signal};
use crate::placement::Placement;
use crate::{CircuitError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`CircuitGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Total number of gates.
    pub n_gates: usize,
    /// Number of primary inputs (flip-flop outputs / pads).
    pub n_inputs: usize,
    /// Minimum number of primary outputs (flip-flop inputs / pads).
    pub n_outputs: usize,
    /// Logic depth (number of levels). Defaults to a size-derived heuristic.
    pub depth: usize,
    /// RNG seed — the whole circuit is a pure function of the config.
    pub seed: u64,
    /// Probability that a non-first fanin reaches back further than one
    /// level (reconvergence knob).
    pub deep_fanin_prob: f64,
    /// Locality window as a fraction of the previous level's size; small
    /// windows concentrate fanout and increase path sharing.
    pub locality: f64,
    /// Number of weakly-interacting logic cones (flip-flop clusters);
    /// 0 derives one cluster per ~250 gates. Real sequential circuits are
    /// many such cones, which is what makes their critical-path pools
    /// weakly correlated.
    pub n_clusters: usize,
    /// Probability that a non-first fanin crosses into an earlier cluster.
    pub cross_cluster_prob: f64,
    /// Equalize per-cone critical delays (the "timing wall" of min-area
    /// synthesis under a stringent constraint: every cone ends up just
    /// under the clock).
    pub equalize_cones: bool,
}

impl GeneratorConfig {
    /// Creates a config with the size-derived default depth and seed 0.
    ///
    /// `depth` defaults to `clamp(n_gates^0.45, 8, 60)`, matching the
    /// depth-vs-size trend of the ISCAS'89 suite.
    pub fn new(n_gates: usize, n_inputs: usize, n_outputs: usize) -> Self {
        let depth = ((n_gates as f64).powf(0.45) as usize).clamp(8, 60).min(n_gates.max(1));
        GeneratorConfig {
            n_gates,
            n_inputs,
            n_outputs,
            depth,
            seed: 0,
            deep_fanin_prob: 0.15,
            locality: 0.25,
            n_clusters: 0,
            cross_cluster_prob: 0.02,
            equalize_cones: true,
        }
    }

    /// Sets the cluster (logic-cone) count; 0 = derive from size.
    pub fn with_clusters(mut self, n_clusters: usize) -> Self {
        self.n_clusters = n_clusters;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the logic depth.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.n_gates == 0 {
            return Err(CircuitError::InvalidConfig {
                what: "n_gates must be positive".into(),
            });
        }
        if self.n_inputs == 0 {
            return Err(CircuitError::InvalidConfig {
                what: "n_inputs must be positive".into(),
            });
        }
        if self.depth == 0 || self.depth > self.n_gates {
            return Err(CircuitError::InvalidConfig {
                what: format!("depth {} must lie in 1..=n_gates", self.depth),
            });
        }
        if !(0.0..=1.0).contains(&self.deep_fanin_prob) {
            return Err(CircuitError::InvalidConfig {
                what: "deep_fanin_prob must lie in [0,1]".into(),
            });
        }
        if self.locality <= 0.0 || self.locality > 1.0 {
            return Err(CircuitError::InvalidConfig {
                what: "locality must lie in (0,1]".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.cross_cluster_prob) {
            return Err(CircuitError::InvalidConfig {
                what: "cross_cluster_prob must lie in [0,1]".into(),
            });
        }
        Ok(())
    }
}

/// A generated circuit: netlist, timing graph, placement, cell library and
/// per-instance delay scales.
///
/// The delay scale models drive-strength/load effects: an instance's delay
/// and variation sensitivities are the library cell's values multiplied by
/// its scale (fractional sensitivities are load-independent to first
/// order). The generator derives scales from fanout load; hand-built
/// circuits default to 1.0.
#[derive(Debug, Clone)]
pub struct PlacedCircuit {
    netlist: Netlist,
    graph: TimingGraph,
    placement: Placement,
    library: CellLibrary,
    delay_scale: Vec<f64>,
}

impl PlacedCircuit {
    /// Assembles a circuit from parts (used by tests and by hand-built
    /// examples such as the paper's Figure 1). All delay scales are 1.0.
    pub fn from_parts(netlist: Netlist, placement: Placement, library: CellLibrary) -> Self {
        let graph = TimingGraph::build(&netlist);
        let delay_scale = vec![1.0; netlist.gate_count()];
        PlacedCircuit {
            netlist,
            graph,
            placement,
            library,
            delay_scale,
        }
    }

    /// Overrides the per-instance delay scales.
    ///
    /// # Panics
    ///
    /// Panics if the scale count differs from the gate count or any scale
    /// is not positive.
    pub fn with_delay_scales(mut self, scales: Vec<f64>) -> Self {
        assert_eq!(scales.len(), self.netlist.gate_count());
        assert!(scales.iter().all(|&s| s > 0.0), "scales must be positive");
        self.delay_scale = scales;
        self
    }

    /// The per-instance delay scale of `id`.
    pub fn delay_scale(&self, id: GateId) -> f64 {
        self.delay_scale[id.index()]
    }

    /// Effective timing of one instance: the library cell's timing scaled
    /// by the instance's drive/load factor.
    pub fn gate_timing(&self, id: GateId) -> crate::cell::CellTiming {
        let t = self.library.timing(self.netlist.gate(id).kind());
        let s = self.delay_scale[id.index()];
        crate::cell::CellTiming {
            nominal_ps: t.nominal_ps * s,
            leff_sens_ps: t.leff_sens_ps * s,
            vt_sens_ps: t.vt_sens_ps * s,
        }
    }

    /// The netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The timing graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// The placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The cell library.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Replaces the cell library (used by the Figure-2 sensitivity-scaling
    /// experiment), keeping topology and placement.
    pub fn with_library(mut self, library: CellLibrary) -> Self {
        self.library = library;
        self
    }

    /// Nominal delay of one instance in ps (library delay × instance scale).
    pub fn nominal_delay(&self, id: GateId) -> f64 {
        self.gate_timing(id).nominal_ps
    }
}

/// Generates [`PlacedCircuit`]s from a [`GeneratorConfig`].
#[derive(Debug, Clone)]
pub struct CircuitGenerator {
    config: GeneratorConfig,
}

/// Relative frequency of each cell kind, loosely matching area-optimized
/// synthesis output (NAND/NOR/INV-rich).
const KIND_WEIGHTS: [(CellKind, f64); 10] = [
    (CellKind::Inv, 0.22),
    (CellKind::Buf, 0.05),
    (CellKind::Nand2, 0.24),
    (CellKind::Nand3, 0.08),
    (CellKind::Nor2, 0.16),
    (CellKind::Nor3, 0.05),
    (CellKind::And2, 0.07),
    (CellKind::Or2, 0.06),
    (CellKind::Xor2, 0.04),
    (CellKind::Mux2, 0.03),
];

impl CircuitGenerator {
    /// Creates a generator for the given config.
    pub fn new(config: GeneratorConfig) -> Self {
        CircuitGenerator { config }
    }

    /// Generates the circuit. Deterministic in the config (including seed).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidConfig`] for inconsistent configs.
    pub fn generate(&self) -> Result<PlacedCircuit> {
        let cfg = &self.config;
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let depth = cfg.depth;

        // --- Cluster (logic-cone) sizing ---
        let k = if cfg.n_clusters == 0 {
            (cfg.n_gates / 250).max(1)
        } else {
            cfg.n_clusters
        }
        .min((cfg.n_gates / depth).max(1));
        let mut cluster_sizes = vec![cfg.n_gates / k; k];
        for size in cluster_sizes.iter_mut().take(cfg.n_gates % k) {
            *size += 1;
        }

        // --- Build each cluster level by level ---
        let mut netlist = Netlist::new(cfg.n_inputs);
        let mut clusters: Vec<Vec<Vec<GateId>>> = Vec::with_capacity(k);
        let mut cluster_of: Vec<usize> = Vec::with_capacity(cfg.n_gates);
        for (c, &size) in cluster_sizes.iter().enumerate() {
            let level_sizes = hump_level_sizes(&mut rng, depth, size);
            let input_lo = c * cfg.n_inputs / k;
            let input_hi = (((c + 1) * cfg.n_inputs) / k).max(input_lo + 1).min(cfg.n_inputs);
            let pick_input = |rng: &mut StdRng| {
                if input_hi > input_lo {
                    rng.gen_range(input_lo..input_hi)
                } else {
                    rng.gen_range(0..cfg.n_inputs)
                }
            };
            let mut levels: Vec<Vec<GateId>> = Vec::with_capacity(depth);
            for l in 0..depth {
                let lsize = level_sizes[l];
                let mut this_level = Vec::with_capacity(lsize);
                for pos in 0..lsize {
                    let kind = Self::draw_kind(&mut rng);
                    let nf = kind.fanin();
                    let mut fanins = Vec::with_capacity(nf);
                    if l == 0 {
                        for _ in 0..nf {
                            fanins.push(Signal::Input(pick_input(&mut rng)));
                        }
                    } else {
                        // First fanin: previous level of this cluster, within
                        // a locality window (keeps the cone a cone).
                        let prev = &levels[l - 1];
                        let center = pos as f64 / lsize as f64 * prev.len() as f64;
                        let half = (cfg.locality * prev.len() as f64 / 2.0).max(1.0);
                        let pick_local = |rng: &mut StdRng| {
                            let idx = (center + rng.gen_range(-half..half))
                                .rem_euclid(prev.len() as f64);
                            prev[idx as usize % prev.len()]
                        };
                        fanins.push(Signal::Gate(pick_local(&mut rng)));
                        for _ in 1..nf {
                            if c > 0 && rng.gen_bool(cfg.cross_cluster_prob) {
                                // Cross-cone fanin from an earlier cluster's
                                // shallower level (keeps levels canonical).
                                let oc = rng.gen_range(0..c);
                                let ol = rng.gen_range(0..l);
                                let lev = &clusters[oc][ol];
                                if !lev.is_empty() {
                                    fanins.push(Signal::Gate(lev[rng.gen_range(0..lev.len())]));
                                    continue;
                                }
                            }
                            if rng.gen_bool(cfg.deep_fanin_prob) {
                                let back = rng.gen_range(0..=l);
                                if back == 0 && rng.gen_bool(0.5) {
                                    fanins.push(Signal::Input(pick_input(&mut rng)));
                                } else {
                                    let lev = &levels[rng.gen_range(0..l)];
                                    fanins.push(Signal::Gate(lev[rng.gen_range(0..lev.len())]));
                                }
                            } else {
                                fanins.push(Signal::Gate(pick_local(&mut rng)));
                            }
                        }
                    }
                    let id = netlist.add_gate(kind, fanins)?;
                    this_level.push(id);
                    cluster_of.push(c);
                }
                levels.push(this_level);
            }
            clusters.push(levels);
        }

        // --- Outputs: every fanout-free gate, plus extras from the tops ---
        let graph = TimingGraph::build(&netlist);
        let mut n_marked = 0;
        for id in netlist.gate_ids().collect::<Vec<_>>() {
            if graph.fanouts(id).is_empty() {
                netlist.mark_output(id)?;
                n_marked += 1;
            }
        }
        'extra: for levels in &clusters {
            for &id in levels.last().expect("depth >= 1") {
                if n_marked >= cfg.n_outputs {
                    break 'extra;
                }
                if !netlist.outputs().contains(&id) {
                    netlist.mark_output(id)?;
                    n_marked += 1;
                }
            }
        }

        // --- Placement: clusters tile the die; levels sweep each tile ---
        let grid = (k as f64).sqrt().ceil() as usize;
        let cell = 1.0 / grid as f64;
        let mut coords = vec![(0.0, 0.0); netlist.gate_count()];
        for (c, levels) in clusters.iter().enumerate() {
            let cx = (c % grid) as f64 * cell;
            let cy = (c / grid) as f64 * cell;
            for (l, level) in levels.iter().enumerate() {
                for (pos, &id) in level.iter().enumerate() {
                    let fx = (l as f64 + 0.5 + rng.gen_range(-0.4..0.4)) / depth as f64;
                    let fy =
                        (pos as f64 + 0.5 + rng.gen_range(-0.4..0.4)) / level.len() as f64;
                    coords[id.index()] = (cx + fx * cell, cy + fy * cell);
                }
            }
        }

        // Rebuild the graph so it reflects the final output markings.
        let graph = TimingGraph::build(&netlist);

        // --- Per-instance delay scales: fanout load plus sizing jitter ---
        let mut delay_scale: Vec<f64> = netlist
            .gate_ids()
            .map(|id| {
                let load = graph.fanouts(id).len() as f64;
                let base = (0.7 + 0.18 * load).min(2.2);
                base * rng.gen_range(0.8..1.35)
            })
            .collect();

        // --- Cone equalization: min-area synthesis under a stringent
        // constraint leaves every cone just under the clock, so scale each
        // cone's delays toward the slowest one's critical delay. ---
        if cfg.equalize_cones && k > 1 {
            let library = CellLibrary::synthetic_90nm();
            for _pass in 0..2 {
                let mut arrival = vec![0.0_f64; netlist.gate_count()];
                for id in graph.topo_order() {
                    let own = library.timing(netlist.gate(id).kind()).nominal_ps
                        * delay_scale[id.index()];
                    let fanin_max = graph
                        .fanins(id)
                        .iter()
                        .map(|f| arrival[f.index()])
                        .fold(0.0_f64, f64::max);
                    arrival[id.index()] = fanin_max + own;
                }
                let mut crit = vec![0.0_f64; k];
                for id in graph.topo_order() {
                    let c = cluster_of[id.index()];
                    crit[c] = crit[c].max(arrival[id.index()]);
                }
                let target = crit.iter().fold(0.0_f64, |m, &x| m.max(x));
                let factors: Vec<f64> = crit
                    .iter()
                    .map(|&c| (target / c.max(1e-9)).min(2.5) * rng.gen_range(0.97..1.0))
                    .collect();
                for id in netlist.gate_ids() {
                    delay_scale[id.index()] *= factors[cluster_of[id.index()]];
                }
            }
        }

        Ok(PlacedCircuit {
            netlist,
            graph,
            placement: Placement::new(coords),
            library: CellLibrary::synthetic_90nm(),
            delay_scale,
        })
    }

    fn draw_kind(rng: &mut StdRng) -> CellKind {
        let total: f64 = KIND_WEIGHTS.iter().map(|(_, w)| w).sum();
        let mut t = rng.gen_range(0.0..total);
        for &(k, w) in &KIND_WEIGHTS {
            if t < w {
                return k;
            }
            t -= w;
        }
        CellKind::Nand2
    }
}

/// Splits `total` gates across `depth` levels with a jittered mid-heavy
/// hump, every level non-empty.
fn hump_level_sizes(rng: &mut StdRng, depth: usize, total: usize) -> Vec<usize> {
    let mut weights: Vec<f64> = (0..depth)
        .map(|l| {
            let t = (l as f64 + 0.5) / depth as f64;
            let hump = t.powf(0.8) * (1.0 - t).powf(1.6) + 0.05;
            hump * rng.gen_range(0.7..1.3)
        })
        .collect();
    let wsum: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= wsum;
    }
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w * total as f64).round() as usize).max(1))
        .collect();
    loop {
        let sum: usize = sizes.iter().sum();
        match sum.cmp(&total) {
            std::cmp::Ordering::Equal => break,
            std::cmp::Ordering::Less => {
                let k = rng.gen_range(0..depth);
                sizes[k] += 1;
            }
            std::cmp::Ordering::Greater => {
                let candidates: Vec<usize> = (0..depth).filter(|&l| sizes[l] > 1).collect();
                let k = candidates[rng.gen_range(0..candidates.len())];
                sizes[k] -= 1;
            }
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PlacedCircuit {
        CircuitGenerator::new(GeneratorConfig::new(300, 24, 20).with_seed(42))
            .generate()
            .unwrap()
    }

    #[test]
    fn gate_count_matches_config() {
        let c = small();
        assert_eq!(c.netlist().gate_count(), 300);
        assert_eq!(c.placement().len(), 300);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = CircuitGenerator::new(GeneratorConfig::new(150, 10, 8).with_seed(7))
            .generate()
            .unwrap();
        let b = CircuitGenerator::new(GeneratorConfig::new(150, 10, 8).with_seed(7))
            .generate()
            .unwrap();
        assert_eq!(a.netlist(), b.netlist());
        assert_eq!(a.placement(), b.placement());
    }

    #[test]
    fn different_seeds_differ() {
        let a = CircuitGenerator::new(GeneratorConfig::new(150, 10, 8).with_seed(1))
            .generate()
            .unwrap();
        let b = CircuitGenerator::new(GeneratorConfig::new(150, 10, 8).with_seed(2))
            .generate()
            .unwrap();
        assert_ne!(a.netlist(), b.netlist());
    }

    #[test]
    fn outputs_cover_fanout_free_gates() {
        let c = small();
        for id in c.netlist().gate_ids() {
            if c.graph().fanouts(id).is_empty() {
                assert!(c.netlist().outputs().contains(&id));
            }
        }
        assert!(c.netlist().outputs().len() >= 20);
    }

    #[test]
    fn depth_is_respected() {
        let c = CircuitGenerator::new(GeneratorConfig::new(400, 16, 8).with_seed(3).with_depth(12))
            .generate()
            .unwrap();
        assert_eq!(c.graph().depth(), 11); // depth levels ⇒ max level index 11
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CircuitGenerator::new(GeneratorConfig::new(0, 4, 2))
            .generate()
            .is_err());
        let mut cfg = GeneratorConfig::new(10, 4, 2);
        cfg.depth = 0;
        assert!(CircuitGenerator::new(cfg).generate().is_err());
        let mut cfg = GeneratorConfig::new(10, 4, 2);
        cfg.locality = 0.0;
        assert!(CircuitGenerator::new(cfg).generate().is_err());
    }

    #[test]
    fn placement_inside_unit_die() {
        let c = small();
        for (_, (x, y)) in c.placement().iter() {
            assert!((0.0..=1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn nominal_delay_positive() {
        let c = small();
        for id in c.netlist().gate_ids() {
            assert!(c.nominal_delay(id) > 0.0);
        }
    }

    #[test]
    fn library_swap_keeps_topology() {
        let c = small();
        let lib3 = c.library().with_sensitivity_scale(3.0, 3.0);
        let gates_before = c.netlist().gate_count();
        let c3 = c.with_library(lib3);
        assert_eq!(c3.netlist().gate_count(), gates_before);
    }
}
