//! Synthetic standard-cell library calibrated to a 90 nm-class process.
//!
//! The paper synthesizes with the TSMC 90 nm library; that library is
//! proprietary, so this module provides cells whose nominal delays and
//! variation sensitivities sit in the published 90 nm ballpark:
//! FO4 inverter delay around 35–45 ps, and first-order delay elasticities
//! to effective channel length (`L_eff`) and zero-bias threshold voltage
//! (`V_t`) of roughly 0.8 and 0.5 respectively. With both parameters at
//! σ = 10 % of nominal (the paper's setting), one σ of `L_eff` moves a gate
//! delay by ~8 % and one σ of `V_t` by ~5 %.

use serde::{Deserialize, Serialize};

/// Logic function of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-to-1 multiplexer.
    Mux2,
}

impl CellKind {
    /// All kinds, in a fixed order (used by the generator's weighted draw).
    pub const ALL: [CellKind; 10] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Mux2,
    ];

    /// Number of logic inputs the cell expects.
    pub fn fanin(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2 => 2,
            CellKind::Nand3 | CellKind::Nor3 | CellKind::Mux2 => 3,
        }
    }
}

/// Timing characterization of one cell: nominal delay and first-order
/// sensitivities to the two varying process parameters.
///
/// Delays are picoseconds; sensitivities are picoseconds **per σ** of the
/// (standardized) parameter, i.e. the entries of the paper's `Σ` matrix
/// before spatial decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// Nominal (mean) propagation delay in ps.
    pub nominal_ps: f64,
    /// Delay shift per +1σ of standardized `L_eff` variation, in ps.
    pub leff_sens_ps: f64,
    /// Delay shift per +1σ of standardized `V_t` variation, in ps.
    pub vt_sens_ps: f64,
}

/// A standard-cell library: per-kind timing characterization.
///
/// # Example
///
/// ```
/// use pathrep_circuit::cell::{CellKind, CellLibrary};
///
/// let lib = CellLibrary::synthetic_90nm();
/// let inv = lib.timing(CellKind::Inv);
/// assert!(inv.nominal_ps > 0.0);
/// assert!(inv.leff_sens_ps > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    timings: Vec<(CellKind, CellTiming)>,
}

impl CellLibrary {
    /// The default synthetic 90 nm-class library.
    ///
    /// Per-σ sensitivities are fractions of the nominal delay: around 8 %
    /// for `L_eff` (elasticity ~0.8 × σ/µ = 10 %) and 5 % for `V_t`
    /// (~0.5 × 10 %), but the ratio varies by topology — taller stacks
    /// (NAND3/NOR3) are more `V_t`-sensitive, pass-gate structures (MUX,
    /// XOR) more `L_eff`-sensitive — which is what lets measurements
    /// separate the two parameters.
    pub fn synthetic_90nm() -> Self {
        let cell = |nominal_ps: f64, leff_frac: f64, vt_frac: f64| CellTiming {
            nominal_ps,
            leff_sens_ps: nominal_ps * leff_frac,
            vt_sens_ps: nominal_ps * vt_frac,
        };
        CellLibrary {
            timings: vec![
                (CellKind::Inv, cell(22.0, 0.085, 0.045)),
                (CellKind::Buf, cell(38.0, 0.080, 0.048)),
                (CellKind::Nand2, cell(33.0, 0.078, 0.055)),
                (CellKind::Nand3, cell(46.0, 0.072, 0.064)),
                (CellKind::Nor2, cell(41.0, 0.076, 0.058)),
                (CellKind::Nor3, cell(60.0, 0.070, 0.066)),
                (CellKind::And2, cell(52.0, 0.079, 0.052)),
                (CellKind::Or2, cell(57.0, 0.077, 0.054)),
                (CellKind::Xor2, cell(71.0, 0.092, 0.042)),
                (CellKind::Mux2, cell(66.0, 0.095, 0.040)),
            ],
        }
    }

    /// Timing data for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the library is missing the kind (cannot happen for the
    /// built-in library, which covers [`CellKind::ALL`]).
    pub fn timing(&self, kind: CellKind) -> CellTiming {
        self.timings
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| panic!("cell library missing {kind:?}"))
    }

    /// Returns a copy of the library with every sensitivity scaled, used by
    /// the Figure-2 experiment ("increase the sensitivity of the independent
    /// random variations in A by 3X").
    pub fn with_sensitivity_scale(&self, leff_scale: f64, vt_scale: f64) -> Self {
        CellLibrary {
            timings: self
                .timings
                .iter()
                .map(|&(k, t)| {
                    (
                        k,
                        CellTiming {
                            nominal_ps: t.nominal_ps,
                            leff_sens_ps: t.leff_sens_ps * leff_scale,
                            vt_sens_ps: t.vt_sens_ps * vt_scale,
                        },
                    )
                })
                .collect(),
        }
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::synthetic_90nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_is_characterized() {
        let lib = CellLibrary::synthetic_90nm();
        for kind in CellKind::ALL {
            let t = lib.timing(kind);
            assert!(t.nominal_ps > 0.0);
            assert!(t.leff_sens_ps > 0.0);
            assert!(t.vt_sens_ps > 0.0);
        }
    }

    #[test]
    fn sensitivities_are_calibrated_fractions() {
        let lib = CellLibrary::synthetic_90nm();
        for kind in CellKind::ALL {
            let t = lib.timing(kind);
            let leff = t.leff_sens_ps / t.nominal_ps;
            let vt = t.vt_sens_ps / t.nominal_ps;
            assert!((0.06..=0.10).contains(&leff), "{kind:?} leff {leff}");
            assert!((0.035..=0.07).contains(&vt), "{kind:?} vt {vt}");
        }
    }

    #[test]
    fn sensitivity_ratios_differ_across_kinds() {
        // Parameter identifiability requires non-collinear ratios.
        let lib = CellLibrary::synthetic_90nm();
        let ratios: Vec<f64> = CellKind::ALL
            .iter()
            .map(|&k| {
                let t = lib.timing(k);
                t.leff_sens_ps / t.vt_sens_ps
            })
            .collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max / min > 1.3, "ratios too uniform: {ratios:?}");
    }

    #[test]
    fn fanin_counts() {
        assert_eq!(CellKind::Inv.fanin(), 1);
        assert_eq!(CellKind::Nand2.fanin(), 2);
        assert_eq!(CellKind::Mux2.fanin(), 3);
    }

    #[test]
    fn inverter_is_fastest_complex_gates_slower() {
        let lib = CellLibrary::synthetic_90nm();
        let inv = lib.timing(CellKind::Inv).nominal_ps;
        let xor = lib.timing(CellKind::Xor2).nominal_ps;
        assert!(inv < xor);
    }

    #[test]
    fn sensitivity_scaling() {
        let lib = CellLibrary::synthetic_90nm();
        let scaled = lib.with_sensitivity_scale(3.0, 1.0);
        let a = lib.timing(CellKind::Nand2);
        let b = scaled.timing(CellKind::Nand2);
        assert!((b.leff_sens_ps - 3.0 * a.leff_sens_ps).abs() < 1e-12);
        assert!((b.vt_sens_ps - a.vt_sens_ps).abs() < 1e-12);
        assert_eq!(a.nominal_ps, b.nominal_ps);
    }

    #[test]
    fn default_is_synthetic_90nm() {
        assert_eq!(CellLibrary::default(), CellLibrary::synthetic_90nm());
    }
}
