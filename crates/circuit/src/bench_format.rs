//! Reader and writer for the ISCAS'89 `.bench` netlist format.
//!
//! The paper's benchmarks are distributed in this format:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = DFF(G17)
//! G11 = NAND(G0, G10)
//! G17 = NOT(G11)
//! ```
//!
//! Sequential elements (`DFF`) are cut the way a timing analyzer cuts them:
//! a flip-flop's output becomes a primary input of the combinational stage
//! and its input a primary output. Unsupported wide gates are decomposed
//! into trees of 2/3-input cells so any ISCAS'89 netlist loads.

use crate::cell::{CellKind, CellLibrary};
use crate::generator::PlacedCircuit;
use crate::netlist::{GateId, Netlist, Signal};
use crate::placement::Placement;
use crate::{CircuitError, Result};
use std::collections::HashMap;

/// One parsed `.bench` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Statement {
    Input(String),
    Output(String),
    Gate {
        name: String,
        func: String,
        args: Vec<String>,
    },
}

fn parse_statement(line: &str) -> Result<Option<Statement>> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let upper = line.to_ascii_uppercase();
    let inner = |s: &str| -> Option<String> {
        let open = s.find('(')?;
        let close = s.rfind(')')?;
        Some(s[open + 1..close].trim().to_string())
    };
    if upper.starts_with("INPUT") {
        return match inner(line) {
            Some(name) if !name.is_empty() => Ok(Some(Statement::Input(name))),
            _ => Err(CircuitError::InvalidConfig {
                what: format!("malformed INPUT statement: {line}"),
            }),
        };
    }
    if upper.starts_with("OUTPUT") {
        return match inner(line) {
            Some(name) if !name.is_empty() => Ok(Some(Statement::Output(name))),
            _ => Err(CircuitError::InvalidConfig {
                what: format!("malformed OUTPUT statement: {line}"),
            }),
        };
    }
    let (name, rhs) = line.split_once('=').ok_or_else(|| CircuitError::InvalidConfig {
        what: format!("expected `name = FUNC(args)`: {line}"),
    })?;
    let rhs = rhs.trim();
    let open = rhs.find('(').ok_or_else(|| CircuitError::InvalidConfig {
        what: format!("missing `(` in gate statement: {line}"),
    })?;
    let close = rhs.rfind(')').ok_or_else(|| CircuitError::InvalidConfig {
        what: format!("missing `)` in gate statement: {line}"),
    })?;
    let func = rhs[..open].trim().to_ascii_uppercase();
    let args: Vec<String> = rhs[open + 1..close]
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if args.is_empty() {
        return Err(CircuitError::InvalidConfig {
            what: format!("gate with no fanins: {line}"),
        });
    }
    Ok(Some(Statement::Gate {
        name: name.trim().to_string(),
        func,
        args,
    }))
}

/// A netlist parsed from `.bench` text, with name maps for round-tripping.
#[derive(Debug, Clone)]
pub struct BenchNetlist {
    netlist: Netlist,
    /// Signal names of the primary inputs (chip inputs first, then cut
    /// flip-flop outputs).
    input_names: Vec<String>,
    /// `(signal name, gate)` for every named gate output.
    gate_names: Vec<(String, GateId)>,
    /// Number of flip-flops cut.
    dff_count: usize,
}

impl BenchNetlist {
    /// The combinational netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Primary-input signal names (pads first, then cut flip-flops).
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Named gate outputs.
    pub fn gate_names(&self) -> &[(String, GateId)] {
        &self.gate_names
    }

    /// Number of flip-flops cut at the sequential boundary.
    pub fn dff_count(&self) -> usize {
        self.dff_count
    }

    /// Promotes the parsed netlist to a [`PlacedCircuit`] with a synthetic
    /// levelized placement (real `.bench` files carry no placement).
    pub fn into_placed(self) -> PlacedCircuit {
        let nl = self.netlist;
        // Levelized placement mirroring the generator's layout.
        let graph = crate::graph::TimingGraph::build(&nl);
        let depth = graph.depth() + 1;
        let mut per_level: HashMap<usize, usize> = HashMap::new();
        for g in nl.gate_ids() {
            *per_level.entry(graph.level(g)).or_insert(0) += 1;
        }
        let mut placed_in_level: HashMap<usize, usize> = HashMap::new();
        let coords: Vec<(f64, f64)> = nl
            .gate_ids()
            .map(|g| {
                let l = graph.level(g);
                let pos = placed_in_level.entry(l).or_insert(0);
                let total = per_level[&l];
                let xy = (
                    (l as f64 + 0.5) / depth as f64,
                    (*pos as f64 + 0.5) / total as f64,
                );
                *pos += 1;
                xy
            })
            .collect();
        PlacedCircuit::from_parts(nl, Placement::new(coords), CellLibrary::synthetic_90nm())
    }
}

/// Maps a `.bench` function name and arity to cell kinds, decomposing wide
/// gates into balanced trees of the widest available cell.
fn map_function(func: &str) -> Result<(CellKind, Option<CellKind>, bool)> {
    // Returns (2-input kind, optional 3-input kind, invert_at_root) where
    // wide decompositions build an AND/OR tree and invert once at the root
    // for NAND/NOR.
    match func {
        "NOT" | "INV" => Ok((CellKind::Inv, None, false)),
        "BUF" | "BUFF" => Ok((CellKind::Buf, None, false)),
        "AND" => Ok((CellKind::And2, None, false)),
        "OR" => Ok((CellKind::Or2, None, false)),
        "NAND" => Ok((CellKind::Nand2, Some(CellKind::Nand3), true)),
        "NOR" => Ok((CellKind::Nor2, Some(CellKind::Nor3), true)),
        "XOR" => Ok((CellKind::Xor2, None, false)),
        "MUX" => Ok((CellKind::Mux2, None, false)),
        other => Err(CircuitError::InvalidConfig {
            what: format!("unsupported .bench function {other}"),
        }),
    }
}

/// Parses `.bench` text into a combinational netlist (flip-flops cut).
///
/// # Errors
///
/// Returns [`CircuitError::InvalidConfig`] for malformed statements,
/// unknown functions, undefined signals or combinational cycles.
pub fn parse_bench(text: &str) -> Result<BenchNetlist> {
    let mut statements = Vec::new();
    for line in text.lines() {
        if let Some(st) = parse_statement(line)? {
            statements.push(st);
        }
    }
    // Catalogue signals: primary inputs + DFF outputs become inputs.
    let mut input_names: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<(String, String, Vec<String>)> = Vec::new();
    let mut dff_count = 0usize;
    for st in statements {
        match st {
            Statement::Input(name) => input_names.push(name),
            Statement::Output(name) => outputs.push(name),
            Statement::Gate { name, func, args } => {
                if func == "DFF" || func == "DFFSR" {
                    // Cut: the FF's output is a pseudo primary input, its
                    // data input a pseudo primary output.
                    dff_count += 1;
                    input_names.push(name);
                    if let Some(d) = args.first() {
                        outputs.push(d.clone());
                    }
                } else {
                    gates.push((name, func, args));
                }
            }
        }
    }

    // Topologically order the combinational gates (Kahn on name deps).
    let defined: HashMap<&str, usize> = gates
        .iter()
        .enumerate()
        .map(|(i, (n, _, _))| (n.as_str(), i))
        .collect();
    let input_index: HashMap<&str, usize> = input_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut indegree = vec![0usize; gates.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    for (i, (_, _, args)) in gates.iter().enumerate() {
        for a in args {
            if let Some(&j) = defined.get(a.as_str()) {
                indegree[i] += 1;
                dependents[j].push(i);
            } else if !input_index.contains_key(a.as_str()) {
                return Err(CircuitError::InvalidConfig {
                    what: format!("undefined signal {a}"),
                });
            }
        }
    }
    let mut queue: Vec<usize> = (0..gates.len()).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(gates.len());
    while let Some(i) = queue.pop() {
        order.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push(d);
            }
        }
    }
    if order.len() != gates.len() {
        return Err(CircuitError::CombinationalCycle);
    }

    // Build the netlist in topological order, decomposing wide gates.
    let mut netlist = Netlist::new(input_names.len());
    let mut signal_of: HashMap<String, Signal> = HashMap::new();
    for (i, n) in input_names.iter().enumerate() {
        signal_of.insert(n.clone(), Signal::Input(i));
    }
    let mut gate_names: Vec<(String, GateId)> = Vec::new();
    for &i in &order {
        let (name, func, args) = &gates[i];
        let fanins: Vec<Signal> = args
            .iter()
            .map(|a| {
                signal_of.get(a).copied().ok_or_else(|| CircuitError::InvalidConfig {
                    what: format!("undefined signal {a}"),
                })
            })
            .collect::<Result<_>>()?;
        let (kind2, kind3, invert_root) = map_function(func)?;
        let out = build_gate_tree(&mut netlist, kind2, kind3, invert_root, &fanins)?;
        signal_of.insert(name.clone(), Signal::Gate(out));
        gate_names.push((name.clone(), out));
    }

    // Mark outputs (pads + cut FF data inputs). Outputs naming a primary
    // input directly (a pass-through FF) have no combinational gate to mark.
    for o in &outputs {
        if let Some(Signal::Gate(g)) = signal_of.get(o) {
            netlist.mark_output(*g)?;
        }
    }
    Ok(BenchNetlist {
        netlist,
        input_names,
        gate_names,
        dff_count,
    })
}

/// Builds one logical gate, decomposing fanin counts our cells cannot take.
fn build_gate_tree(
    netlist: &mut Netlist,
    kind2: CellKind,
    kind3: Option<CellKind>,
    invert_root: bool,
    fanins: &[Signal],
) -> Result<GateId> {
    match (fanins.len(), kind2) {
        (1, CellKind::Inv | CellKind::Buf) => netlist.add_gate(kind2, fanins.to_vec()),
        (1, _) => {
            // Degenerate 1-input AND/OR ⇒ buffer (inverted for NAND/NOR).
            let k = if invert_root { CellKind::Inv } else { CellKind::Buf };
            netlist.add_gate(k, fanins.to_vec())
        }
        (2, _) => netlist.add_gate(kind2, fanins.to_vec()),
        (3, _) if kind3.is_some() => netlist.add_gate(kind3.expect("checked"), fanins.to_vec()),
        (n, _) if n >= 3 => {
            // Balanced tree of the positive-logic 2-input cell, single
            // inversion at the root when the function is negated.
            let positive = match kind2 {
                CellKind::Nand2 => CellKind::And2,
                CellKind::Nor2 => CellKind::Or2,
                k => k,
            };
            let mut layer: Vec<Signal> = fanins.to_vec();
            while layer.len() > 2 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    if pair.len() == 2 {
                        let g = netlist.add_gate(positive, pair.to_vec())?;
                        next.push(Signal::Gate(g));
                    } else {
                        next.push(pair[0]);
                    }
                }
                layer = next;
            }
            let root_kind = if invert_root { kind2 } else { positive };
            netlist.add_gate(root_kind, layer)
        }
        _ => Err(CircuitError::InvalidConfig {
            what: "gate with no fanins".into(),
        }),
    }
}

/// Writes a netlist back to `.bench` text (gates named `n<i>`, inputs
/// `in<i>`; flip-flop boundaries are not reconstructed).
pub fn write_bench(netlist: &Netlist) -> String {
    let mut out = String::from("# written by pathrep-circuit\n");
    for i in 0..netlist.input_count() {
        out.push_str(&format!("INPUT(in{i})\n"));
    }
    for o in netlist.outputs() {
        out.push_str(&format!("OUTPUT(n{})\n", o.index()));
    }
    for id in netlist.gate_ids() {
        let gate = netlist.gate(id);
        let func = match gate.kind() {
            CellKind::Inv => "NOT",
            CellKind::Buf => "BUF",
            CellKind::Nand2 | CellKind::Nand3 => "NAND",
            CellKind::Nor2 | CellKind::Nor3 => "NOR",
            CellKind::And2 => "AND",
            CellKind::Or2 => "OR",
            CellKind::Xor2 => "XOR",
            CellKind::Mux2 => "MUX",
        };
        let args: Vec<String> = gate
            .fanins()
            .iter()
            .map(|s| match s {
                Signal::Input(i) => format!("in{i}"),
                Signal::Gate(g) => format!("n{}", g.index()),
            })
            .collect();
        out.push_str(&format!("n{} = {}({})\n", id.index(), func, args.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# A tiny sequential circuit in ISCAS'89 .bench style.
INPUT(a)
INPUT(b)
OUTPUT(y)
s  = DFF(y)
t  = NAND(a, s)
u  = NOT(b)
y  = NOR(t, u)
";

    #[test]
    fn parses_sample_and_cuts_dff() {
        let bn = parse_bench(SAMPLE).unwrap();
        // Inputs: a, b + cut FF output s.
        assert_eq!(bn.input_names(), &["a", "b", "s"]);
        assert_eq!(bn.dff_count(), 1);
        // Gates: t, u, y.
        assert_eq!(bn.netlist().gate_count(), 3);
        // Outputs: y (pad) and y again (FF data input) — marked once.
        assert_eq!(bn.netlist().outputs().len(), 1);
    }

    #[test]
    fn wide_gates_decompose() {
        let text = "
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)
OUTPUT(z)
z = NAND(a, b, c, d, e)
";
        let bn = parse_bench(text).unwrap();
        // 5-input NAND ⇒ AND tree + NAND root: ceil tree of 5 leaves.
        assert!(bn.netlist().gate_count() >= 3);
        let nl = bn.netlist();
        let root = bn.gate_names().last().unwrap().1;
        assert!(matches!(
            nl.gate(root).kind(),
            CellKind::Nand2 | CellKind::Nand3
        ));
        assert!(nl.outputs().contains(&root));
    }

    #[test]
    fn three_input_native_cells_used() {
        let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nz = NOR(a,b,c)\n";
        let bn = parse_bench(text).unwrap();
        assert_eq!(bn.netlist().gate_count(), 1);
        assert_eq!(bn.netlist().gate(bn.gate_names()[0].1).kind(), CellKind::Nor3);
    }

    #[test]
    fn out_of_order_definitions_are_sorted() {
        // y defined before its fanin u.
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(u)\nu = NOT(a)\n";
        let bn = parse_bench(text).unwrap();
        assert_eq!(bn.netlist().gate_count(), 2);
    }

    #[test]
    fn cycle_detected() {
        let text = "INPUT(a)\nOUTPUT(x)\nx = NAND(a, y)\ny = NOT(x)\n";
        assert_eq!(parse_bench(text).unwrap_err(), CircuitError::CombinationalCycle);
    }

    #[test]
    fn undefined_signal_rejected() {
        let text = "INPUT(a)\nOUTPUT(x)\nx = NAND(a, ghost)\n";
        assert!(matches!(
            parse_bench(text).unwrap_err(),
            CircuitError::InvalidConfig { .. }
        ));
    }

    #[test]
    fn unknown_function_rejected() {
        let text = "INPUT(a)\nOUTPUT(x)\nx = MAJ3(a, a, a)\n";
        assert!(parse_bench(text).is_err());
    }

    #[test]
    fn round_trip_through_writer() {
        let bn = parse_bench(SAMPLE).unwrap();
        let text = write_bench(bn.netlist());
        let re = parse_bench(&text).unwrap();
        assert_eq!(re.netlist().gate_count(), bn.netlist().gate_count());
        assert_eq!(re.netlist().outputs().len(), bn.netlist().outputs().len());
    }

    #[test]
    fn into_placed_gives_usable_circuit() {
        let bn = parse_bench(SAMPLE).unwrap();
        let circuit = bn.into_placed();
        assert_eq!(circuit.netlist().gate_count(), 3);
        for (_, (x, y)) in circuit.placement().iter() {
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
        // Timing works end to end.
        for g in circuit.netlist().gate_ids() {
            assert!(circuit.nominal_delay(g) > 0.0);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hello\nINPUT(a) # inline\nOUTPUT(z)\nz = NOT(a)\n\n";
        let bn = parse_bench(text).unwrap();
        assert_eq!(bn.netlist().gate_count(), 1);
    }
}
