//! Gate-level circuit substrate for the `pathrep` workspace.
//!
//! The paper evaluates on ISCAS'89 benchmarks synthesized with a commercial
//! 90 nm library. Neither the netlists nor the library are redistributable,
//! so this crate provides the closest synthetic equivalent (see DESIGN.md):
//!
//! * a [`cell`] library with 90 nm-class nominal delays and `L_eff`/`V_t`
//!   delay sensitivities,
//! * a [`netlist`] representation of combinational logic between flip-flop
//!   boundaries,
//! * a seeded [`generator`] that produces ISCAS'89-*class* circuits — same
//!   gate counts, depth profile and fan-in/fan-out statistics as the ten
//!   benchmarks in the paper's tables,
//! * a [`graph`] module with the timing DAG, topological levels and
//!   **segment extraction** (the paper's Section 2 definition: maximal runs
//!   of edges with no internal fan-in/fan-out within the covered subgraph),
//! * [`placement`] assigning every gate a location on the unit die so the
//!   hierarchical spatial-correlation model can bind gates to regions,
//! * [`paths`] for path sets and the path/segment incidence matrix `G`.
//!
//! # Example
//!
//! ```
//! use pathrep_circuit::generator::{CircuitGenerator, GeneratorConfig};
//!
//! # fn main() -> Result<(), pathrep_circuit::CircuitError> {
//! let config = GeneratorConfig::new(200, 16, 16).with_seed(7);
//! let circuit = CircuitGenerator::new(config).generate()?;
//! assert_eq!(circuit.netlist().gate_count(), 200);
//! # Ok(())
//! # }
//! ```

pub mod bench_format;
pub mod cell;
pub mod error;
pub mod generator;
pub mod graph;
pub mod netlist;
pub mod paths;
pub mod placement;

pub use error::CircuitError;
pub use generator::{CircuitGenerator, GeneratorConfig, PlacedCircuit};
pub use netlist::{Gate, GateId, Netlist};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CircuitError>;
