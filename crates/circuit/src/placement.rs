//! Gate placement on the unit die.
//!
//! The hierarchical spatial-correlation model bins gates into rectangular
//! regions, so every gate needs a location. The generator produces a
//! levelized placement: logic levels sweep left-to-right across the die and
//! gates spread vertically within their level, with seeded jitter — the
//! usual outcome of row-based placement of a levelized netlist.

use crate::netlist::GateId;
use serde::{Deserialize, Serialize};

/// Per-gate coordinates on the unit die `[0, 1]²`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    coords: Vec<(f64, f64)>,
}

impl Placement {
    /// Creates a placement from raw coordinates (one per gate, in id order).
    /// Coordinates are clamped into the unit square.
    pub fn new(coords: Vec<(f64, f64)>) -> Self {
        let coords = coords
            .into_iter()
            .map(|(x, y)| (x.clamp(0.0, 1.0), y.clamp(0.0, 1.0)))
            .collect();
        Placement { coords }
    }

    /// Location of gate `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn location(&self, id: GateId) -> (f64, f64) {
        self.coords[id.index()]
    }

    /// Number of placed gates.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// `true` when no gates are placed.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Iterator over `(GateId index, (x, y))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, (f64, f64))> + '_ {
        self.coords.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_are_clamped() {
        let p = Placement::new(vec![(-0.5, 2.0), (0.25, 0.75)]);
        assert_eq!(p.coords[0], (0.0, 1.0));
        assert_eq!(p.coords[1], (0.25, 0.75));
    }

    #[test]
    fn len_and_iter() {
        let p = Placement::new(vec![(0.1, 0.2), (0.3, 0.4)]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        let all: Vec<_> = p.iter().collect();
        assert_eq!(all[1], (1, (0.3, 0.4)));
    }
}
