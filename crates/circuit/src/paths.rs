//! Path sets and segment extraction.
//!
//! A *path* is a source-to-sink gate sequence in the timing graph. Given a
//! set of target paths, the paper (Section 2) defines a **segment** as the
//! union of consecutive edges in the covered subgraph with no incoming or
//! outgoing edges in between — i.e. a maximal unbranched chain. Every path
//! is then an exact concatenation of segments, `d_Ptar = G·d_S` with a 0/1
//! incidence matrix `G`.
//!
//! Gate delays are mapped onto edges so the decomposition is exact: the edge
//! `u → v` carries the delay of driving gate `u`, every path is implicitly
//! extended with a virtual `SOURCE → first` edge (zero delay) and a
//! `last → SINK` edge (carrying the last gate's delay). A path's delay is
//! then exactly the sum of its gates' delays, and segments partition it.

use crate::netlist::GateId;
use crate::{CircuitError, Result};
use std::collections::HashMap;

/// A node of the covered path graph: a gate, or one of the two virtual
/// terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathNode {
    /// Virtual super-source preceding every path's first gate.
    Source,
    /// A real gate.
    Gate(GateId),
    /// Virtual super-sink following every path's last gate.
    Sink,
}

/// A source-to-sink gate sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    gates: Vec<GateId>,
}

impl Path {
    /// Creates a path from its gate sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidPath`] for an empty sequence.
    pub fn new(gates: Vec<GateId>) -> Result<Self> {
        if gates.is_empty() {
            return Err(CircuitError::InvalidPath {
                what: "empty gate sequence".into(),
            });
        }
        Ok(Path { gates })
    }

    /// The gates along the path, in order.
    pub fn gates(&self) -> &[GateId] {
        &self.gates
    }

    /// Number of gates on the path.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `false` always (paths are non-empty by construction); present for
    /// clippy-idiomatic pairing with [`len`].
    ///
    /// [`len`]: Path::len
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The edge sequence including the virtual terminals.
    fn edges(&self) -> Vec<(PathNode, PathNode)> {
        let mut e = Vec::with_capacity(self.gates.len() + 1);
        e.push((PathNode::Source, PathNode::Gate(self.gates[0])));
        for w in self.gates.windows(2) {
            e.push((PathNode::Gate(w[0]), PathNode::Gate(w[1])));
        }
        e.push((
            PathNode::Gate(*self.gates.last().expect("non-empty")),
            PathNode::Sink,
        ));
        e
    }
}

/// A maximal unbranched chain of covered edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Gates whose delay the segment carries (the driving gate of each edge
    /// in the chain; the virtual source contributes nothing).
    gates: Vec<GateId>,
    /// First node of the chain (for diagnostics / test-structure placement).
    start: PathNode,
    /// Last node of the chain.
    end: PathNode,
}

impl Segment {
    /// Gates whose delays sum to this segment's delay.
    pub fn gates(&self) -> &[GateId] {
        &self.gates
    }

    /// The chain's first node.
    pub fn start(&self) -> PathNode {
        self.start
    }

    /// The chain's last node.
    pub fn end(&self) -> PathNode {
        self.end
    }
}

/// The result of decomposing a path set into segments.
#[derive(Debug, Clone)]
pub struct SegmentDecomposition {
    segments: Vec<Segment>,
    /// For each path, the segment indices whose concatenation is the path.
    path_segments: Vec<Vec<usize>>,
    /// Sorted, deduplicated list of covered gates.
    covered_gates: Vec<GateId>,
}

impl SegmentDecomposition {
    /// All segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segment indices composing path `p` (same order as traversal).
    pub fn path_segments(&self, p: usize) -> &[usize] {
        &self.path_segments[p]
    }

    /// Number of segments (the paper's `n_S`).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of paths decomposed.
    pub fn path_count(&self) -> usize {
        self.path_segments.len()
    }

    /// Gates covered by at least one path, sorted.
    pub fn covered_gates(&self) -> &[GateId] {
        &self.covered_gates
    }

    /// Dense 0/1 incidence rows: for each path, a vector over segments with
    /// 1.0 where the segment belongs to the path. (Returned as raw rows so
    /// the circuit crate stays independent of the matrix type.)
    pub fn incidence_rows(&self) -> Vec<Vec<f64>> {
        let ns = self.segments.len();
        self.path_segments
            .iter()
            .map(|segs| {
                let mut row = vec![0.0; ns];
                for &s in segs {
                    row[s] = 1.0;
                }
                row
            })
            .collect()
    }
}

/// Decomposes `paths` into the paper's segments.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidPath`] when `paths` is empty.
pub fn decompose_into_segments(paths: &[Path]) -> Result<SegmentDecomposition> {
    if paths.is_empty() {
        return Err(CircuitError::InvalidPath {
            what: "cannot decompose an empty path set".into(),
        });
    }
    let _span = pathrep_obs::span!("decompose_segments");
    {
        // Two passes over every path edge: the degree census and the
        // chain walk. Integer bookkeeping, so the flop model is zero —
        // bytes/elements carry the traffic.
        let edges: u64 = paths.iter().map(|p| p.edges().len() as u64).sum();
        pathrep_obs::work::record("decompose_segments", 0, 2 * 16 * edges, 2 * edges);
    }
    // Covered edge set with in/out degrees per node.
    let mut out_deg: HashMap<PathNode, usize> = HashMap::new();
    let mut in_deg: HashMap<PathNode, usize> = HashMap::new();
    let mut edge_set: HashMap<(PathNode, PathNode), ()> = HashMap::new();
    for p in paths {
        for e in p.edges() {
            if edge_set.insert(e, ()).is_none() {
                *out_deg.entry(e.0).or_insert(0) += 1;
                *in_deg.entry(e.1).or_insert(0) += 1;
            }
        }
    }
    let breaks = |n: &PathNode| -> bool {
        matches!(n, PathNode::Source | PathNode::Sink)
            || out_deg.get(n).copied().unwrap_or(0) != 1
            || in_deg.get(n).copied().unwrap_or(0) != 1
    };

    // Walk each path, cutting chains at break nodes; segments are keyed by
    // their first edge (chains are forced, so the first edge is unique).
    let mut segments: Vec<Segment> = Vec::new();
    let mut seg_by_first_edge: HashMap<(PathNode, PathNode), usize> = HashMap::new();
    let mut path_segments = Vec::with_capacity(paths.len());
    let mut covered: Vec<GateId> = Vec::new();

    for p in paths {
        covered.extend_from_slice(p.gates());
        let edges = p.edges();
        let mut segs_of_path = Vec::new();
        let mut i = 0;
        while i < edges.len() {
            let first = edges[i];
            // Extend the chain while the internal node does not break it.
            let mut j = i;
            while j + 1 < edges.len() && !breaks(&edges[j].1) {
                j += 1;
            }
            let seg_id = match seg_by_first_edge.get(&first) {
                Some(&id) => id,
                None => {
                    let mut gates = Vec::new();
                    for e in &edges[i..=j] {
                        if let PathNode::Gate(g) = e.0 {
                            gates.push(g);
                        }
                    }
                    let seg = Segment {
                        gates,
                        start: first.0,
                        end: edges[j].1,
                    };
                    let id = segments.len();
                    segments.push(seg);
                    seg_by_first_edge.insert(first, id);
                    id
                }
            };
            segs_of_path.push(seg_id);
            i = j + 1;
        }
        path_segments.push(segs_of_path);
    }
    covered.sort_unstable();
    covered.dedup();
    pathrep_obs::counter_add("circuit.decompose.paths", paths.len() as u64);
    pathrep_obs::counter_add("circuit.decompose.segments", segments.len() as u64);
    Ok(SegmentDecomposition {
        segments,
        path_segments,
        covered_gates: covered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::graph::TimingGraph;
    use crate::netlist::{Netlist, Signal};

    /// The paper's Figure-1 example: four paths merging at G5.
    /// p1: G1 G3 G5 G7 G9, p2: G1 G3 G5 G6 G8,
    /// p3: G2 G4 G5 G6 G8, p4: G2 G4 G5 G7 G9.
    fn figure1_paths() -> (Netlist, Vec<Path>) {
        let mut nl = Netlist::new(2);
        let g1 = nl.add_gate(CellKind::Buf, vec![Signal::Input(0)]).unwrap();
        let g2 = nl.add_gate(CellKind::Buf, vec![Signal::Input(1)]).unwrap();
        let g3 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g1)]).unwrap();
        let g4 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g2)]).unwrap();
        let g5 = nl
            .add_gate(CellKind::Nand2, vec![Signal::Gate(g3), Signal::Gate(g4)])
            .unwrap();
        let g6 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)]).unwrap();
        let g7 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g5)]).unwrap();
        let g8 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g6)]).unwrap();
        let g9 = nl.add_gate(CellKind::Buf, vec![Signal::Gate(g7)]).unwrap();
        nl.mark_output(g8).unwrap();
        nl.mark_output(g9).unwrap();
        let paths = vec![
            Path::new(vec![g1, g3, g5, g7, g9]).unwrap(),
            Path::new(vec![g1, g3, g5, g6, g8]).unwrap(),
            Path::new(vec![g2, g4, g5, g6, g8]).unwrap(),
            Path::new(vec![g2, g4, g5, g7, g9]).unwrap(),
        ];
        (nl, paths)
    }

    #[test]
    fn path_rejects_empty() {
        assert!(Path::new(vec![]).is_err());
    }

    #[test]
    fn figure1_segment_structure() {
        let (_, paths) = figure1_paths();
        let dec = decompose_into_segments(&paths).unwrap();
        // Expected chains: (SRC,G1,G3,G5], (SRC,G2,G4,G5], (G5,G7,G9,SINK],
        // (G5,G6,G8,SINK] — four segments. G5's delay is carried by the two
        // outgoing segments' first edge driver, i.e. by [G5,G7,G9] and
        // [G5,G6,G8].
        assert_eq!(dec.segment_count(), 4);
        // Each path concatenates exactly two segments.
        for p in 0..4 {
            assert_eq!(dec.path_segments(p).len(), 2);
        }
        // Paths 1 and 2 share the first segment; 1 and 4 the last.
        assert_eq!(dec.path_segments(0)[0], dec.path_segments(1)[0]);
        assert_eq!(dec.path_segments(0)[1], dec.path_segments(3)[1]);
        assert_eq!(dec.path_segments(2)[0], dec.path_segments(3)[0]);
        assert_eq!(dec.path_segments(1)[1], dec.path_segments(2)[1]);
        assert_eq!(dec.covered_gates().len(), 9);
    }

    #[test]
    fn segment_gate_sums_reproduce_path_delay() {
        // With edge-mapped delays, summing segment gate lists over a path
        // must reproduce its gate multiset exactly (no double counting).
        let (_, paths) = figure1_paths();
        let dec = decompose_into_segments(&paths).unwrap();
        for (p, path) in paths.iter().enumerate() {
            let mut via_segments: Vec<GateId> = dec
                .path_segments(p)
                .iter()
                .flat_map(|&s| dec.segments()[s].gates().iter().copied())
                .collect();
            via_segments.sort_unstable();
            let mut direct = path.gates().to_vec();
            direct.sort_unstable();
            assert_eq!(via_segments, direct, "path {p} double counts a gate");
        }
    }

    #[test]
    fn figure1_linear_dependence() {
        // The paper's motivating identity: d_p1 = d_p2 − d_p3 + d_p4 holds
        // at the incidence level: row1 − row2 + row3 − row4 = 0.
        let (_, paths) = figure1_paths();
        let dec = decompose_into_segments(&paths).unwrap();
        let rows = dec.incidence_rows();
        for (s, &r0) in rows[0].iter().enumerate() {
            let v = r0 - rows[1][s] + rows[2][s] - rows[3][s];
            assert_eq!(v, 0.0, "segment {s} breaks the linear identity");
        }
    }

    #[test]
    fn single_path_is_single_segment() {
        let (_, paths) = figure1_paths();
        let dec = decompose_into_segments(&paths[..1]).unwrap();
        assert_eq!(dec.segment_count(), 1);
        assert_eq!(dec.segments()[0].gates().len(), 5);
        assert_eq!(dec.path_segments(0), &[0]);
    }

    #[test]
    fn incidence_rows_shape() {
        let (_, paths) = figure1_paths();
        let dec = decompose_into_segments(&paths).unwrap();
        let rows = dec.incidence_rows();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.len() == dec.segment_count()));
        // Each row sums to the number of segments on the path.
        for (p, r) in rows.iter().enumerate() {
            let sum: f64 = r.iter().sum();
            assert_eq!(sum as usize, dec.path_segments(p).len());
        }
    }

    #[test]
    fn empty_set_rejected() {
        assert!(decompose_into_segments(&[]).is_err());
    }

    #[test]
    fn shared_prefix_of_different_lengths() {
        // Two paths share a prefix then diverge: p1 = a→b→c, p2 = a→b→d.
        let mut nl = Netlist::new(1);
        let a = nl.add_gate(CellKind::Buf, vec![Signal::Input(0)]).unwrap();
        let b = nl.add_gate(CellKind::Inv, vec![Signal::Gate(a)]).unwrap();
        let c = nl.add_gate(CellKind::Inv, vec![Signal::Gate(b)]).unwrap();
        let d = nl.add_gate(CellKind::Buf, vec![Signal::Gate(b)]).unwrap();
        nl.mark_output(c).unwrap();
        nl.mark_output(d).unwrap();
        let tg = TimingGraph::build(&nl);
        assert_eq!(tg.fanouts(b).len(), 2);
        let paths = vec![
            Path::new(vec![a, b, c]).unwrap(),
            Path::new(vec![a, b, d]).unwrap(),
        ];
        let dec = decompose_into_segments(&paths).unwrap();
        // Segments: (SRC→a→b], (b→c→SINK], (b→d→SINK] = 3 segments.
        assert_eq!(dec.segment_count(), 3);
        assert_eq!(dec.path_segments(0)[0], dec.path_segments(1)[0]);
        assert_ne!(dec.path_segments(0)[1], dec.path_segments(1)[1]);
    }
}
