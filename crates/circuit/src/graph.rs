//! Timing graph: the netlist as a DAG with fanout lists, topological levels,
//! and structural queries used by SSTA and path enumeration.

use crate::netlist::{GateId, Netlist};

/// A timing DAG derived from a [`Netlist`].
///
/// Nodes are gates; an edge `u → v` exists when gate `u` drives an input of
/// gate `v`. Primary inputs and outputs are implicit: gates with no gate
/// fanins are *source gates* (driven directly by flip-flops / pads), and
/// gates marked as outputs are *sink gates*.
///
/// # Example
///
/// ```
/// use pathrep_circuit::netlist::{Netlist, Signal};
/// use pathrep_circuit::cell::CellKind;
/// use pathrep_circuit::graph::TimingGraph;
///
/// # fn main() -> Result<(), pathrep_circuit::CircuitError> {
/// let mut nl = Netlist::new(1);
/// let a = nl.add_gate(CellKind::Inv, vec![Signal::Input(0)])?;
/// let b = nl.add_gate(CellKind::Inv, vec![Signal::Gate(a)])?;
/// nl.mark_output(b)?;
/// let tg = TimingGraph::build(&nl);
/// assert_eq!(tg.level(b), 1);
/// assert_eq!(tg.fanouts(a), &[b]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimingGraph {
    /// Gate-to-gate fanout adjacency, indexed by [`GateId::index`].
    fanouts: Vec<Vec<GateId>>,
    /// Gate-to-gate fanin adjacency (primary inputs excluded).
    fanins: Vec<Vec<GateId>>,
    /// Topological level: 0 for source gates, `1 + max(level of fanins)`.
    levels: Vec<usize>,
    /// Gates with no gate fanins.
    sources: Vec<GateId>,
    /// Gates marked as primary outputs.
    sinks: Vec<GateId>,
}

impl TimingGraph {
    /// Builds the graph. The netlist's add-in-topological-order invariant
    /// guarantees acyclicity, so this cannot fail.
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.gate_count();
        let mut fanouts = vec![Vec::new(); n];
        let mut fanins: Vec<Vec<GateId>> = vec![Vec::new(); n];
        for id in netlist.gate_ids() {
            for f in netlist.gate(id).fanin_gates() {
                // A gate may drive several inputs of the same gate; the
                // timing DAG keeps a single edge (paths are gate sequences,
                // so parallel edges are indistinguishable).
                if !fanins[id.index()].contains(&f) {
                    fanouts[f.index()].push(id);
                    fanins[id.index()].push(f);
                }
            }
        }
        let mut levels = vec![0usize; n];
        let mut sources = Vec::new();
        for id in netlist.gate_ids() {
            let lvl = fanins[id.index()]
                .iter()
                .map(|f| levels[f.index()] + 1)
                .max()
                .unwrap_or(0);
            levels[id.index()] = lvl;
            if fanins[id.index()].is_empty() {
                sources.push(id);
            }
        }
        TimingGraph {
            fanouts,
            fanins,
            levels,
            sources,
            sinks: netlist.outputs().to_vec(),
        }
    }

    /// Gates driven by `id`.
    pub fn fanouts(&self, id: GateId) -> &[GateId] {
        &self.fanouts[id.index()]
    }

    /// Gate fanins of `id` (primary inputs excluded).
    pub fn fanins(&self, id: GateId) -> &[GateId] {
        &self.fanins[id.index()]
    }

    /// Topological level of `id`.
    pub fn level(&self, id: GateId) -> usize {
        self.levels[id.index()]
    }

    /// Gates with no gate fanins (directly driven by flip-flops / pads).
    pub fn sources(&self) -> &[GateId] {
        &self.sources
    }

    /// Gates marked as primary outputs.
    pub fn sinks(&self) -> &[GateId] {
        &self.sinks
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.levels.len()
    }

    /// The maximum topological level (logic depth minus one); 0 for an
    /// empty or single-level graph.
    pub fn depth(&self) -> usize {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Gate ids in topological (construction) order.
    pub fn topo_order(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gate_count()).map(GateId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::Signal;

    /// Builds the Figure-1 subcircuit of the paper: G1..G9 with paths
    /// merging at G5.
    #[allow(clippy::vec_init_then_push)] // sequential ids read during construction
    fn figure1() -> (Netlist, Vec<GateId>) {
        let mut nl = Netlist::new(2);
        let mut ids = Vec::new();
        // G1, G2 driven by primary inputs.
        ids.push(nl.add_gate(CellKind::Buf, vec![Signal::Input(0)]).unwrap()); // G1
        ids.push(nl.add_gate(CellKind::Buf, vec![Signal::Input(1)]).unwrap()); // G2
        ids.push(nl.add_gate(CellKind::Inv, vec![Signal::Gate(ids[0])]).unwrap()); // G3
        ids.push(nl.add_gate(CellKind::Inv, vec![Signal::Gate(ids[1])]).unwrap()); // G4
        ids.push(
            nl.add_gate(
                CellKind::Nand2,
                vec![Signal::Gate(ids[2]), Signal::Gate(ids[3])],
            )
            .unwrap(),
        ); // G5
        ids.push(nl.add_gate(CellKind::Inv, vec![Signal::Gate(ids[4])]).unwrap()); // G6
        ids.push(nl.add_gate(CellKind::Inv, vec![Signal::Gate(ids[4])]).unwrap()); // G7
        ids.push(nl.add_gate(CellKind::Buf, vec![Signal::Gate(ids[5])]).unwrap()); // G8
        ids.push(nl.add_gate(CellKind::Buf, vec![Signal::Gate(ids[6])]).unwrap()); // G9
        nl.mark_output(ids[7]).unwrap();
        nl.mark_output(ids[8]).unwrap();
        (nl, ids)
    }

    #[test]
    fn levels_and_depth() {
        let (nl, ids) = figure1();
        let tg = TimingGraph::build(&nl);
        assert_eq!(tg.level(ids[0]), 0);
        assert_eq!(tg.level(ids[4]), 2);
        assert_eq!(tg.level(ids[8]), 4);
        assert_eq!(tg.depth(), 4);
    }

    #[test]
    fn adjacency_round_trips() {
        let (nl, ids) = figure1();
        let tg = TimingGraph::build(&nl);
        // G5 has two fanins (G3, G4) and two fanouts (G6, G7).
        assert_eq!(tg.fanins(ids[4]), &[ids[2], ids[3]]);
        assert_eq!(tg.fanouts(ids[4]), &[ids[5], ids[6]]);
        for g in tg.topo_order() {
            for &f in tg.fanouts(g) {
                assert!(tg.fanins(f).contains(&g));
            }
        }
    }

    #[test]
    fn sources_and_sinks() {
        let (nl, ids) = figure1();
        let tg = TimingGraph::build(&nl);
        assert_eq!(tg.sources(), &[ids[0], ids[1]]);
        assert_eq!(tg.sinks(), &[ids[7], ids[8]]);
    }

    #[test]
    fn levels_are_monotone_along_edges() {
        let (nl, _) = figure1();
        let tg = TimingGraph::build(&nl);
        for g in tg.topo_order() {
            for &f in tg.fanouts(g) {
                assert!(tg.level(f) > tg.level(g));
            }
        }
    }
}
