//! Error type for the circuit substrate.

use std::fmt;

/// Error returned by netlist construction, generation and graph analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate references an id that does not exist in the netlist.
    UnknownGate {
        /// The offending identifier.
        id: usize,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle,
    /// A generator configuration is internally inconsistent.
    InvalidConfig {
        /// What was wrong.
        what: String,
    },
    /// A requested path is not structurally valid (non-adjacent gates, empty).
    InvalidPath {
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownGate { id } => write!(f, "unknown gate id {id}"),
            CircuitError::CombinationalCycle => write!(f, "netlist contains a combinational cycle"),
            CircuitError::InvalidConfig { what } => write!(f, "invalid generator config: {what}"),
            CircuitError::InvalidPath { what } => write!(f, "invalid path: {what}"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_payload() {
        assert!(CircuitError::UnknownGate { id: 42 }.to_string().contains("42"));
        assert!(CircuitError::InvalidConfig {
            what: "zero gates".into()
        }
        .to_string()
        .contains("zero gates"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
