//! Gate-level netlist: combinational logic between flip-flop boundaries.
//!
//! Sequential elements are modelled implicitly: the netlist describes one
//! combinational stage, its primary inputs standing for flip-flop outputs /
//! chip inputs and its primary outputs for flip-flop inputs / chip outputs —
//! exactly the view a static timing analyzer takes.

use crate::cell::CellKind;
use crate::{CircuitError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of a gate within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GateId(u32);

impl GateId {
    /// The gate's index into [`Netlist::gates`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Crate-internal: only modules that
    /// already hold a validated index range (the timing graph, the
    /// generator) may mint ids.
    #[inline]
    pub(crate) fn from_index(index: usize) -> GateId {
        GateId(index as u32)
    }
}

/// A driver of a gate input: either a primary input or another gate's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Primary input `k` (flip-flop output or chip pad).
    Input(usize),
    /// Output of another gate.
    Gate(GateId),
}

/// One instantiated cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    kind: CellKind,
    fanins: Vec<Signal>,
}

impl Gate {
    /// The cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The gate's input drivers.
    pub fn fanins(&self) -> &[Signal] {
        &self.fanins
    }

    /// Iterator over fanin gates only (primary inputs skipped).
    pub fn fanin_gates(&self) -> impl Iterator<Item = GateId> + '_ {
        self.fanins.iter().filter_map(|s| match s {
            Signal::Gate(g) => Some(*g),
            Signal::Input(_) => None,
        })
    }
}

/// A combinational netlist.
///
/// Gates must be added in topological order — every fanin must reference a
/// gate added earlier — which makes the netlist acyclic *by construction*.
///
/// # Example
///
/// ```
/// use pathrep_circuit::netlist::{Netlist, Signal};
/// use pathrep_circuit::cell::CellKind;
///
/// # fn main() -> Result<(), pathrep_circuit::CircuitError> {
/// let mut nl = Netlist::new(2);
/// let g0 = nl.add_gate(CellKind::Nand2, vec![Signal::Input(0), Signal::Input(1)])?;
/// let g1 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g0)])?;
/// nl.mark_output(g1)?;
/// assert_eq!(nl.gate_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    input_count: usize,
    gates: Vec<Gate>,
    outputs: Vec<GateId>,
}

impl Netlist {
    /// Creates an empty netlist with `input_count` primary inputs.
    pub fn new(input_count: usize) -> Self {
        Netlist {
            input_count,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// All gates, indexable by [`GateId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Gates marked as primary outputs.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Adds a gate. Fanins must reference primary inputs or *previously
    /// added* gates, and their count must match the cell kind.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidConfig`] if the fanin count does not match
    ///   the kind, or a fanin input index is out of range.
    /// * [`CircuitError::UnknownGate`] if a fanin references a gate not yet
    ///   added (this rule keeps the netlist acyclic by construction).
    pub fn add_gate(&mut self, kind: CellKind, fanins: Vec<Signal>) -> Result<GateId> {
        if fanins.len() != kind.fanin() {
            return Err(CircuitError::InvalidConfig {
                what: format!(
                    "{kind:?} expects {} fanins, got {}",
                    kind.fanin(),
                    fanins.len()
                ),
            });
        }
        for s in &fanins {
            match *s {
                Signal::Input(k) if k >= self.input_count => {
                    return Err(CircuitError::InvalidConfig {
                        what: format!("primary input {k} out of range (have {})", self.input_count),
                    });
                }
                Signal::Gate(g) if g.index() >= self.gates.len() => {
                    return Err(CircuitError::UnknownGate { id: g.index() });
                }
                _ => {}
            }
        }
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate { kind, fanins });
        Ok(id)
    }

    /// Marks `id` as a primary output. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownGate`] for a foreign id.
    pub fn mark_output(&mut self, id: GateId) -> Result<()> {
        if id.index() >= self.gates.len() {
            return Err(CircuitError::UnknownGate { id: id.index() });
        }
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
        Ok(())
    }

    /// Iterator over all gate ids in insertion (= topological) order.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Constructs a `GateId` from a raw index.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownGate`] when out of range.
    pub fn gate_id(&self, index: usize) -> Result<GateId> {
        if index >= self.gates.len() {
            return Err(CircuitError::UnknownGate { id: index });
        }
        Ok(GateId(index as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gate_netlist() -> (Netlist, GateId, GateId) {
        let mut nl = Netlist::new(2);
        let g0 = nl
            .add_gate(CellKind::Nand2, vec![Signal::Input(0), Signal::Input(1)])
            .unwrap();
        let g1 = nl.add_gate(CellKind::Inv, vec![Signal::Gate(g0)]).unwrap();
        nl.mark_output(g1).unwrap();
        (nl, g0, g1)
    }

    #[test]
    fn build_and_query() {
        let (nl, g0, g1) = two_gate_netlist();
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.input_count(), 2);
        assert_eq!(nl.gate(g1).kind(), CellKind::Inv);
        assert_eq!(nl.outputs(), &[g1]);
        let fg: Vec<GateId> = nl.gate(g1).fanin_gates().collect();
        assert_eq!(fg, vec![g0]);
        assert_eq!(nl.gate(g0).fanin_gates().count(), 0);
    }

    #[test]
    fn fanin_count_enforced() {
        let mut nl = Netlist::new(1);
        let err = nl.add_gate(CellKind::Nand2, vec![Signal::Input(0)]);
        assert!(matches!(err, Err(CircuitError::InvalidConfig { .. })));
    }

    #[test]
    fn forward_references_rejected() {
        let mut nl = Netlist::new(1);
        // References gate 5 which does not exist yet.
        let err = nl.add_gate(CellKind::Inv, vec![Signal::Gate(GateId(5))]);
        assert_eq!(err, Err(CircuitError::UnknownGate { id: 5 }));
    }

    #[test]
    fn input_range_enforced() {
        let mut nl = Netlist::new(1);
        let err = nl.add_gate(CellKind::Inv, vec![Signal::Input(3)]);
        assert!(matches!(err, Err(CircuitError::InvalidConfig { .. })));
    }

    #[test]
    fn mark_output_is_idempotent() {
        let (mut nl, _, g1) = two_gate_netlist();
        nl.mark_output(g1).unwrap();
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn mark_output_unknown_gate() {
        let (mut nl, ..) = two_gate_netlist();
        assert!(nl.mark_output(GateId(9)).is_err());
    }

    #[test]
    fn gate_id_bounds() {
        let (nl, ..) = two_gate_netlist();
        assert!(nl.gate_id(1).is_ok());
        assert!(nl.gate_id(2).is_err());
    }
}
