//! Property-based tests for the SSTA substrate.

use pathrep_ssta::canonical::CanonicalForm;
use pathrep_ssta::sparse::SparseVec;
use proptest::prelude::*;

fn sparse_strategy(max_idx: usize, max_len: usize) -> impl Strategy<Value = SparseVec> {
    proptest::collection::vec((0..max_idx, -3.0..3.0f64), 0..max_len)
        .prop_map(SparseVec::from_terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_entries_sorted_unique_nonzero(v in sparse_strategy(40, 30)) {
        let e = v.entries();
        for w in e.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        prop_assert!(e.iter().all(|&(_, x)| x != 0.0));
    }

    #[test]
    fn sparse_dot_is_symmetric_and_cauchy_schwarz(
        a in sparse_strategy(30, 20),
        b in sparse_strategy(30, 20),
    ) {
        let ab = a.dot(&b);
        prop_assert!((ab - b.dot(&a)).abs() < 1e-12);
        prop_assert!(ab.abs() <= a.norm2() * b.norm2() * (1.0 + 1e-12) + 1e-12);
    }

    #[test]
    fn sparse_linear_combination_matches_dense(
        a in sparse_strategy(25, 15),
        b in sparse_strategy(25, 15),
        alpha in -2.0..2.0f64,
        beta in -2.0..2.0f64,
    ) {
        let c = a.linear_combination(alpha, &b, beta);
        for idx in 0..25 {
            let expected = alpha * a.get(idx) + beta * b.get(idx);
            prop_assert!((c.get(idx) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn clark_max_dominates_both_means(
        ma in -5.0..5.0f64,
        mb in -5.0..5.0f64,
        sa in 0.1..3.0f64,
        sb in 0.1..3.0f64,
    ) {
        // max(A, B) has mean at least max(E[A], E[B]).
        let a = CanonicalForm::from_terms(ma, [(0usize, sa)]);
        let b = CanonicalForm::from_terms(mb, [(1usize, sb)]);
        let m = a.max(&b);
        prop_assert!(m.mean >= ma.max(mb) - 1e-9, "mean {} below inputs", m.mean);
        // And its variance is bounded by the larger input variance plus the
        // mean gap effect; at minimum it is non-negative.
        prop_assert!(m.variance() >= -1e-12);
    }

    #[test]
    fn clark_max_is_exact_for_far_apart_inputs(
        gap in 25.0..100.0f64,
        s in 0.1..2.0f64,
    ) {
        let a = CanonicalForm::from_terms(0.0, [(0usize, s)]);
        let b = CanonicalForm::from_terms(gap, [(1usize, s)]);
        let m = a.max(&b);
        prop_assert!((m.mean - gap).abs() < 1e-6);
        prop_assert!((m.variance() - s * s).abs() < 1e-6);
    }

    #[test]
    fn canonical_add_is_commutative_and_linear(
        ma in -5.0..5.0f64,
        mb in -5.0..5.0f64,
        sa in 0.0..2.0f64,
        sb in 0.0..2.0f64,
    ) {
        let a = CanonicalForm::from_terms(ma, [(0usize, sa), (1usize, 0.5)]);
        let b = CanonicalForm::from_terms(mb, [(1usize, sb)]);
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert!((ab.mean - ba.mean).abs() < 1e-12);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-12);
        // Shared variable 1 adds coherently.
        prop_assert!((ab.sens.get(1) - (0.5 + sb)).abs() < 1e-12);
    }

    #[test]
    fn clark_max_between_bounds(
        ma in -3.0..3.0f64,
        mb in -3.0..3.0f64,
        sa in 0.2..2.0f64,
        sb in 0.2..2.0f64,
    ) {
        // E[max] ≤ E[A] + E[(B−A)+] ≤ max mean + θ (loose sanity bound).
        let a = CanonicalForm::from_terms(ma, [(0usize, sa)]);
        let b = CanonicalForm::from_terms(mb, [(1usize, sb)]);
        let m = a.max(&b);
        let theta = (sa * sa + sb * sb).sqrt();
        prop_assert!(m.mean <= ma.max(mb) + theta);
    }
}
