//! Sparse end-to-end assembly of the paper's delay model `A = G·Σ`.
//!
//! [`pathrep_variation::sensitivity::DelayModel`] densifies a naturally
//! block-sparse product: a path touches only its own segments (`G` rows
//! carry a handful of ones) and a segment's gates sit in only a few
//! variation regions (`Σ` rows carry ~`levels × |Parameter::ALL| + 1`
//! coefficients per gate). [`SparseDelayModel`] keeps both factors — and
//! their product — in CSR form, which is what lets the 100k-gate pipeline
//! hand Algorithm 1 a sketched SVD instead of a dense Golub–Reinsch run.
//!
//! The assembly is value-compatible with the dense builder: the variable
//! catalog is interned in exactly the same covered-gate order, each `Σ`
//! row accumulates its duplicate terms in the same encounter order
//! (through [`SparseVec::from_terms`]'s stable input-order merge), and the
//! `G·Σ` product accumulates in the dense `i-k-j` order — so `a()` equals
//! the dense `A` bit-for-bit (modulo canonical zeros, which the sparse
//! form drops and the dense form stores as `+0.0`).

use crate::sparse::SparseVec;
use pathrep_circuit::generator::PlacedCircuit;
use pathrep_circuit::paths::{Path, SegmentDecomposition};
use pathrep_linalg::sparse::SparseMatrix;
use pathrep_variation::model::{Parameter, Variable, VariationModel};
use pathrep_variation::sensitivity::{gate_contribution_terms, VariationError};
use std::collections::HashMap;

/// The sparse counterpart of `DelayModel`: `G`, `Σ` and `A = G·Σ` in CSR
/// form over the same variable catalog.
#[derive(Debug, Clone)]
pub struct SparseDelayModel {
    variables: Vec<Variable>,
    /// Path/segment incidence (`n` × `n_S`, 0/1), CSR.
    g: SparseMatrix,
    /// Segment sensitivities (`n_S` × `|x|`), CSR.
    sigma: SparseMatrix,
    /// `A = G·Σ` (`n` × `|x|`), CSR.
    a: SparseMatrix,
    mu_segments: Vec<f64>,
    mu_paths: Vec<f64>,
    covered_regions: usize,
}

impl SparseDelayModel {
    /// Builds the sparse delay model for `paths` (already decomposed into
    /// `dec`) on `circuit` under `model`. Mirrors the dense builder's
    /// catalog order and accumulation order exactly (see module docs).
    ///
    /// # Errors
    ///
    /// * [`VariationError::Inconsistent`] when `paths` and `dec` disagree.
    /// * [`VariationError::Linalg`] on (impossible in practice) shape
    ///   errors from the sparse kernels.
    pub fn build(
        circuit: &PlacedCircuit,
        paths: &[Path],
        dec: &SegmentDecomposition,
        model: &VariationModel,
    ) -> Result<Self, VariationError> {
        if paths.len() != dec.path_count() {
            return Err(VariationError::Inconsistent {
                what: "path count differs between paths and decomposition",
            });
        }
        let _span = pathrep_obs::span!("sparse_model_build");

        // --- Variable catalog: identical interning order to the dense
        // builder (region variables per covered gate, then gate randoms).
        let hierarchy = model.hierarchy();
        let mut var_index: HashMap<Variable, usize> = HashMap::new();
        let mut variables: Vec<Variable> = Vec::new();
        let mut covered_region_flats: Vec<usize> = Vec::new();
        let mut intern = |v: Variable, variables: &mut Vec<Variable>| -> usize {
            *var_index.entry(v).or_insert_with(|| {
                variables.push(v);
                variables.len() - 1
            })
        };
        for &g in dec.covered_gates() {
            let (x, y) = circuit.placement().location(g);
            for region in hierarchy.regions_containing(x, y) {
                let flat = hierarchy.flat_index(region);
                covered_region_flats.push(flat);
                for param in Parameter::ALL {
                    intern(
                        Variable::Region {
                            param,
                            region_flat: flat,
                        },
                        &mut variables,
                    );
                }
            }
        }
        covered_region_flats.sort_unstable();
        covered_region_flats.dedup();
        let covered_regions = covered_region_flats.len();
        for &g in dec.covered_gates() {
            intern(Variable::GateRandom { gate: g.index() }, &mut variables);
        }
        let n_vars = variables.len();
        let n_seg = dec.segment_count();

        // --- Σ rows through SparseVec: terms are pushed in the dense
        // builder's encounter order (gate order within the segment, term
        // order within the gate) and `from_terms` sums duplicates in that
        // input order, so every coefficient matches the dense
        // accumulation bit-for-bit.
        let mut mu_segments = vec![0.0; n_seg];
        let mut sigma_triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut assembly_terms: u64 = 0;
        for (si, seg) in dec.segments().iter().enumerate() {
            let mut terms: Vec<(usize, f64)> = Vec::new();
            for &g in seg.gates() {
                mu_segments[si] += circuit.nominal_delay(g);
                for (var, coeff) in gate_contribution_terms(circuit, model, g) {
                    terms.push((var_index[&var], coeff));
                }
            }
            assembly_terms += terms.len() as u64;
            let row = SparseVec::from_terms(terms);
            sigma_triplets.extend(row.entries().iter().map(|&(j, v)| (si, j, v)));
        }
        let sigma = SparseMatrix::from_triplets(n_seg, n_vars, &sigma_triplets)
            .map_err(VariationError::Linalg)?;

        // --- 0/1 incidence.
        let mut g_triplets: Vec<(usize, usize, f64)> = Vec::new();
        for p in 0..paths.len() {
            for &s in dec.path_segments(p) {
                g_triplets.push((p, s, 1.0));
            }
        }
        let g_mat = SparseMatrix::from_triplets(paths.len(), n_seg, &g_triplets)
            .map_err(VariationError::Linalg)?;

        // Assembly work: one accumulation per (gate, contribution term),
        // same flop model as the dense builder; the byte model counts the
        // stored entries (16 bytes each: index + value) instead of the
        // dense `n_seg × n_vars` fill. The G·Σ product and G·µ records
        // come from the spmm/spmv kernels themselves.
        let nnz_entries = (sigma.nnz() + g_mat.nnz()) as u64;
        pathrep_obs::work::record(
            "delay_model_build",
            7 * assembly_terms,
            16 * nnz_entries,
            nnz_entries,
        );
        pathrep_obs::counter_add("variation.model.variables", n_vars as u64);
        pathrep_obs::counter_add("variation.model.segments", n_seg as u64);

        let a = g_mat.matmul_sparse(&sigma).map_err(VariationError::Linalg)?;
        let mu_paths = g_mat.matvec(&mu_segments).map_err(VariationError::Linalg)?;

        if pathrep_obs::ledger::collecting() {
            pathrep_obs::ledger::record("ssta", "sparse_model", |f| {
                f.int("paths", paths.len() as u64)
                    .int("segments", n_seg as u64)
                    .int("variables", n_vars as u64)
                    .int("nnz_g", g_mat.nnz() as u64)
                    .int("nnz_sigma", sigma.nnz() as u64)
                    .int("nnz_a", a.nnz() as u64)
                    .num("density_a", a.density());
            });
        }

        Ok(SparseDelayModel {
            variables,
            g: g_mat,
            sigma,
            a,
            mu_segments,
            mu_paths,
            covered_regions,
        })
    }

    /// The variable catalog (columns of `Σ` and `A`).
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Dimension of the variation vector `x`.
    pub fn variable_count(&self) -> usize {
        self.variables.len()
    }

    /// Path/segment incidence matrix `G` (CSR).
    pub fn g(&self) -> &SparseMatrix {
        &self.g
    }

    /// Segment sensitivity matrix `Σ` (CSR).
    pub fn sigma(&self) -> &SparseMatrix {
        &self.sigma
    }

    /// Path sensitivity matrix `A = G·Σ` (CSR).
    pub fn a(&self) -> &SparseMatrix {
        &self.a
    }

    /// Nominal segment delays `µ_S`.
    pub fn mu_segments(&self) -> &[f64] {
        &self.mu_segments
    }

    /// Nominal path delays `µ_Ptar = G·µ_S`.
    pub fn mu_paths(&self) -> &[f64] {
        &self.mu_paths
    }

    /// Number of distinct covered regions.
    pub fn covered_region_count(&self) -> usize {
        self.covered_regions
    }

    /// Path delays for a realization `x`: `µ + A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::Linalg`] when `x` has the wrong length.
    pub fn path_delays(&self, x: &[f64]) -> Result<Vec<f64>, VariationError> {
        let mut d = self.a.matvec(x).map_err(VariationError::Linalg)?;
        for (di, mu) in d.iter_mut().zip(self.mu_paths.iter()) {
            *di += mu;
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{CriticalPathExtractor, ExtractConfig};
    use crate::yield_est::nominal_circuit_delay;
    use pathrep_circuit::generator::{CircuitGenerator, GeneratorConfig};
    use pathrep_circuit::paths::decompose_into_segments;
    use pathrep_variation::sensitivity::DelayModel;

    fn fixture() -> (PlacedCircuit, VariationModel, Vec<Path>, SegmentDecomposition) {
        let c = CircuitGenerator::new(GeneratorConfig::new(250, 20, 12).with_seed(11))
            .generate()
            .unwrap();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let extracted = CriticalPathExtractor::new(&c, &model, ExtractConfig::new(t, 0.01))
            .extract_k_best(40);
        let paths: Vec<Path> = extracted.into_iter().map(|p| p.path).collect();
        let dec = decompose_into_segments(&paths).unwrap();
        (c, model, paths, dec)
    }

    #[test]
    fn sparse_assembly_matches_dense_bitwise() {
        let (c, model, paths, dec) = fixture();
        let dense = DelayModel::build(&c, &paths, &dec, &model).unwrap();
        let sparse = SparseDelayModel::build(&c, &paths, &dec, &model).unwrap();
        assert_eq!(sparse.variables(), dense.variables(), "catalog order");
        assert_eq!(sparse.covered_region_count(), dense.covered_region_count());
        // approx_eq with zero tolerance: |a − b| ≤ 0 accepts only equal
        // values (and ±0.0, which the canonical-zero policy collapses).
        assert!(sparse.g().to_dense().approx_eq(dense.g(), 0.0));
        assert!(sparse.sigma().to_dense().approx_eq(dense.sigma(), 0.0));
        assert!(sparse.a().to_dense().approx_eq(dense.a(), 0.0));
        for (s, d) in sparse.mu_paths().iter().zip(dense.mu_paths()) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
        for (s, d) in sparse.mu_segments().iter().zip(dense.mu_segments()) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn sparse_model_is_actually_sparse() {
        let (c, model, paths, dec) = fixture();
        let sparse = SparseDelayModel::build(&c, &paths, &dec, &model).unwrap();
        assert!(
            sparse.a().density() < 0.5,
            "A density {} — the block structure should keep it sparse",
            sparse.a().density()
        );
        assert!(sparse.g().density() < 0.5);
    }

    #[test]
    fn path_delays_match_dense_evaluation() {
        let (c, model, paths, dec) = fixture();
        let dense = DelayModel::build(&c, &paths, &dec, &model).unwrap();
        let sparse = SparseDelayModel::build(&c, &paths, &dec, &model).unwrap();
        let x: Vec<f64> = (0..sparse.variable_count())
            .map(|i| ((i % 7) as f64 - 3.0) / 3.0)
            .collect();
        let ds = sparse.path_delays(&x).unwrap();
        let dd = dense.path_delays(&x).unwrap();
        for (a, b) in ds.iter().zip(&dd) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn inconsistent_inputs_are_rejected() {
        let (c, model, paths, dec) = fixture();
        let short = &paths[..paths.len() - 1];
        assert!(matches!(
            SparseDelayModel::build(&c, short, &dec, &model),
            Err(VariationError::Inconsistent { .. })
        ));
    }
}
