//! Sparse coefficient vectors over the variation-variable space.
//!
//! # Canonical-zero policy
//!
//! Stored values are dropped iff they compare equal to zero
//! ([`pathrep_linalg::sparse::is_canonical_zero`]): both `+0.0` and
//! `-0.0` canonicalise away (IEEE 754 compares them equal), so two
//! algebraically equal inputs always produce the same `nnz` and the same
//! nnz-dependent work counters. NaN never compares equal to zero and is
//! always **kept** — a poisoned accumulation stays visible instead of
//! silently vanishing. The policy is shared with `pathrep-linalg`'s CSR
//! [`SparseMatrix`](pathrep_linalg::sparse::SparseMatrix) so both layers
//! agree on structure.

use pathrep_linalg::sparse::is_canonical_zero;
use serde::{Deserialize, Serialize};

/// A sparse vector: sorted `(index, value)` pairs with unique indices and no
/// stored canonical zeros (see the module docs for the policy).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    entries: Vec<(usize, f64)>,
}

impl SparseVec {
    /// The empty vector.
    pub fn new() -> Self {
        SparseVec {
            entries: Vec::new(),
        }
    }

    /// Builds from unsorted, possibly duplicated terms. Duplicates are
    /// summed **in input order** (the sort is stable), so the
    /// accumulation order — and therefore the exact floating-point sum —
    /// is part of the API and matches a dense accumulator fed the same
    /// term sequence bit-for-bit. Canonical zeros are dropped.
    pub fn from_terms<I: IntoIterator<Item = (usize, f64)>>(terms: I) -> Self {
        let mut entries: Vec<(usize, f64)> = terms.into_iter().collect();
        entries.sort_by_key(|&(i, _)| i);
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match out.last_mut() {
                Some((li, lv)) if *li == i => *lv += v,
                _ => out.push((i, v)),
            }
        }
        out.retain(|&(_, v)| !is_canonical_zero(v));
        SparseVec { entries: out }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored `(index, value)` pairs, sorted by index.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// The coefficient at `index` (zero when absent).
    pub fn get(&self, index: usize) -> f64 {
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Squared Euclidean norm.
    pub fn norm2_sq(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum()
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.norm2_sq().sqrt()
    }

    /// Dot product with another sparse vector (merge join).
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (ia, va) = self.entries[i];
            let (ib, vb) = other.entries[j];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += va * vb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Returns `alpha·self + beta·other`.
    pub fn linear_combination(&self, alpha: f64, other: &SparseVec, beta: f64) -> SparseVec {
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let next = match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(ia, va)), Some(&(ib, vb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        i += 1;
                        (ia, alpha * va)
                    }
                    std::cmp::Ordering::Greater => {
                        j += 1;
                        (ib, beta * vb)
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                        (ia, alpha * va + beta * vb)
                    }
                },
                (Some(&(ia, va)), None) => {
                    i += 1;
                    (ia, alpha * va)
                }
                (None, Some(&(ib, vb))) => {
                    j += 1;
                    (ib, beta * vb)
                }
                (None, None) => unreachable!("loop condition guards this"),
            };
            if !is_canonical_zero(next.1) {
                out.push(next);
            }
        }
        SparseVec { entries: out }
    }

    /// Adds `other` in place.
    pub fn add_assign(&mut self, other: &SparseVec) {
        *self = self.linear_combination(1.0, other, 1.0);
    }

    /// Evaluates `Σ aᵢ x[i]` against a dense realization.
    ///
    /// # Panics
    ///
    /// Panics if any stored index is out of `x`'s bounds.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.entries.iter().map(|&(i, v)| v * x[i]).sum()
    }
}

impl FromIterator<(usize, f64)> for SparseVec {
    fn from_iter<I: IntoIterator<Item = (usize, f64)>>(iter: I) -> Self {
        SparseVec::from_terms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_terms_merges_and_sorts() {
        let v = SparseVec::from_terms([(3, 1.0), (1, 2.0), (3, 4.0), (2, 0.0)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 5.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(3), 5.0);
        assert_eq!(v.get(0), 0.0);
    }

    #[test]
    fn canonical_zero_drops_negative_zero_and_cancellations() {
        // -0.0 compares equal to zero and must canonicalise away exactly
        // like +0.0 — otherwise two algebraically equal inputs diverge in
        // nnz and every nnz-dependent work counter downstream.
        let v = SparseVec::from_terms([(0, -0.0), (1, 0.0), (2, 1.0)]);
        assert_eq!(v.entries(), &[(2, 1.0)]);
        // An exact cancellation sums to a zero (sign per IEEE 754 rules)
        // and is dropped under the same policy.
        let c = SparseVec::from_terms([(5, 2.5), (5, -2.5)]);
        assert!(c.is_empty());
        let lc = SparseVec::from_terms([(0, -0.0)]);
        assert!(lc.is_empty(), "-0.0 input must not survive construction");
    }

    #[test]
    fn canonical_zero_keeps_nan_visible() {
        let v = SparseVec::from_terms([(0, f64::NAN), (1, 1.0)]);
        assert_eq!(v.nnz(), 2, "NaN is not a zero and must stay stored");
        assert!(v.get(0).is_nan());
        // Through linear_combination too: NaN·0 arithmetic stays visible.
        let w = v.linear_combination(0.0, &SparseVec::new(), 0.0);
        assert!(w.get(0).is_nan());
    }

    #[test]
    fn duplicate_terms_sum_in_input_order() {
        // 1e16 + 1.0 rounds to 1e16, so the accumulation order decides
        // the result: summing in input order is the documented contract.
        let big = 1e16;
        let cancels = SparseVec::from_terms([(0, big), (0, 1.0), (0, -big)]);
        assert!(cancels.is_empty(), "(big + 1) - big rounds to 0 and drops");
        let survives = SparseVec::from_terms([(0, big), (0, -big), (0, 1.0)]);
        assert_eq!(survives.entries(), &[(0, 1.0)], "(big - big) + 1 = 1");
    }

    #[test]
    fn dot_matches_dense() {
        let a = SparseVec::from_terms([(0, 1.0), (2, 3.0), (5, -2.0)]);
        let b = SparseVec::from_terms([(2, 4.0), (3, 1.0), (5, 0.5)]);
        assert_eq!(a.dot(&b), 12.0 - 1.0);
        assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn linear_combination_covers_all_branches() {
        let a = SparseVec::from_terms([(0, 1.0), (2, 2.0)]);
        let b = SparseVec::from_terms([(1, 3.0), (2, -1.0)]);
        let c = a.linear_combination(2.0, &b, 1.0);
        assert_eq!(c.entries(), &[(0, 2.0), (1, 3.0), (2, 3.0)]);
        // Cancellation drops the entry.
        let d = a.linear_combination(1.0, &a, -1.0);
        assert!(d.is_empty());
    }

    #[test]
    fn norms() {
        let a = SparseVec::from_terms([(1, 3.0), (7, 4.0)]);
        assert_eq!(a.norm2_sq(), 25.0);
        assert_eq!(a.norm2(), 5.0);
    }

    #[test]
    fn eval_against_dense() {
        let a = SparseVec::from_terms([(0, 2.0), (2, -1.0)]);
        assert_eq!(a.eval(&[1.0, 9.0, 4.0]), -2.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = SparseVec::from_terms([(0, 1.0)]);
        a.add_assign(&SparseVec::from_terms([(0, 1.0), (1, 2.0)]));
        assert_eq!(a.entries(), &[(0, 2.0), (1, 2.0)]);
    }

    #[test]
    fn collect_from_iterator() {
        let v: SparseVec = [(4, 1.0), (4, 1.0)].into_iter().collect();
        assert_eq!(v.entries(), &[(4, 2.0)]);
    }
}
