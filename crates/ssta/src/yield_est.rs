//! Circuit- and path-level timing yield.

use pathrep_circuit::generator::PlacedCircuit;
use pathrep_linalg::gauss::{self, normal_cdf};
use pathrep_variation::catalog::VariableSpace;
use pathrep_variation::model::VariationModel;
use pathrep_variation::sensitivity::gate_contribution_terms;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Longest-path nominal circuit delay (ps): the deterministic STA answer,
/// used by the paper as the timing constraint `T_cons`.
///
/// # Panics
///
/// Panics if the circuit has no output gates.
pub fn nominal_circuit_delay(circuit: &PlacedCircuit) -> f64 {
    let graph = circuit.graph();
    let mut arrival = vec![0.0_f64; graph.gate_count()];
    for g in graph.topo_order() {
        let fanin_max = graph
            .fanins(g)
            .iter()
            .map(|&f| arrival[f.index()])
            .fold(0.0_f64, f64::max);
        arrival[g.index()] = fanin_max + circuit.nominal_delay(g);
    }
    graph
        .sinks()
        .iter()
        .map(|&s| arrival[s.index()])
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Monte-Carlo estimate of the circuit timing yield
/// `Y = P(circuit delay ≤ t_cons)` with `n_samples` seeded samples.
///
/// Each sample draws the full variation vector, evaluates every gate's
/// first-order delay, and runs a longest-path sweep — the exact yield of
/// the linear delay model, free of the max-approximation error.
pub fn monte_carlo_circuit_yield(
    circuit: &PlacedCircuit,
    model: &VariationModel,
    t_cons: f64,
    n_samples: usize,
    seed: u64,
) -> f64 {
    let _span = pathrep_obs::span!("circuit_yield_mc");
    let graph = circuit.graph();
    let space = VariableSpace::new(model, graph.gate_count());
    // Pre-extract per-gate terms once.
    let terms: Vec<Vec<(usize, f64)>> = graph
        .topo_order()
        .map(|g| {
            gate_contribution_terms(circuit, model, g)
                .into_iter()
                .map(|(v, c)| (space.index_of(v), c))
                .collect()
        })
        .collect();
    let nominal: Vec<f64> = graph
        .topo_order()
        .map(|g| circuit.nominal_delay(g))
        .collect();

    {
        // Per sample: the variation draw, two flops per sensitivity term
        // and the arrival-time sweep (one add plus the fanin max scan).
        let (ns, nv, ng) = (
            n_samples as u64,
            space.len() as u64,
            graph.gate_count() as u64,
        );
        let nt: u64 = terms.iter().map(|t| t.len() as u64).sum();
        pathrep_obs::work::record(
            "circuit_yield_mc",
            ns * (nv + 2 * nt + 2 * ng),
            8 * ns * (nv + 2 * nt + 2 * ng),
            ns * (nv + nt + ng),
        );
        pathrep_obs::counter_add("ssta.yield.samples", ns);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = vec![0.0_f64; space.len()];
    let mut arrival = vec![0.0_f64; graph.gate_count()];
    let mut pass = 0usize;
    for _ in 0..n_samples {
        gauss::fill_standard_normal(&mut rng, &mut x);
        for g in graph.topo_order() {
            let gi = g.index();
            let mut d = nominal[gi];
            for &(j, c) in &terms[gi] {
                d += c * x[j];
            }
            let fanin_max = graph
                .fanins(g)
                .iter()
                .map(|&f| arrival[f.index()])
                .fold(0.0_f64, f64::max);
            arrival[gi] = fanin_max + d;
        }
        let delay = graph
            .sinks()
            .iter()
            .map(|&s| arrival[s.index()])
            .fold(f64::NEG_INFINITY, f64::max);
        if delay <= t_cons {
            pass += 1;
        }
    }
    pass as f64 / n_samples as f64
}

/// Gaussian path yield `P(d_p ≤ t_cons)` for a path with the given moments.
pub fn path_yield(mean: f64, sigma: f64, t_cons: f64) -> f64 {
    if sigma <= 0.0 {
        return if mean <= t_cons { 1.0 } else { 0.0 };
    }
    normal_cdf((t_cons - mean) / sigma)
}

/// Gaussian path yield-loss `P(d_p > t_cons)`.
pub fn path_yield_loss(mean: f64, sigma: f64, t_cons: f64) -> f64 {
    1.0 - path_yield(mean, sigma, t_cons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathrep_circuit::cell::{CellKind, CellLibrary};
    use pathrep_circuit::generator::{CircuitGenerator, GeneratorConfig};
    use pathrep_circuit::netlist::{Netlist, Signal};
    use pathrep_circuit::placement::Placement;

    #[test]
    fn nominal_delay_of_chain() {
        let mut nl = Netlist::new(1);
        let a = nl.add_gate(CellKind::Inv, vec![Signal::Input(0)]).unwrap();
        let b = nl.add_gate(CellKind::Inv, vec![Signal::Gate(a)]).unwrap();
        nl.mark_output(b).unwrap();
        let c = PlacedCircuit::from_parts(
            nl,
            Placement::new(vec![(0.5, 0.5); 2]),
            CellLibrary::synthetic_90nm(),
        );
        let inv = c.library().timing(CellKind::Inv).nominal_ps;
        assert!((nominal_circuit_delay(&c) - 2.0 * inv).abs() < 1e-12);
    }

    #[test]
    fn yield_at_nominal_is_roughly_half_or_less() {
        // With symmetric zero-mean variation, the max of many paths exceeds
        // the nominal longest path more often than not, so Y ≤ ~0.5.
        let c = CircuitGenerator::new(GeneratorConfig::new(150, 12, 8).with_seed(8))
            .generate()
            .unwrap();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let y = monte_carlo_circuit_yield(&c, &model, t, 500, 1);
        assert!(y <= 0.6, "yield {y} unexpectedly high at nominal");
        assert!(y > 0.0, "yield should not vanish at nominal");
    }

    #[test]
    fn yield_is_monotone_in_constraint() {
        let c = CircuitGenerator::new(GeneratorConfig::new(100, 10, 6).with_seed(9))
            .generate()
            .unwrap();
        let model = VariationModel::three_level();
        let t = nominal_circuit_delay(&c);
        let y0 = monte_carlo_circuit_yield(&c, &model, t * 0.9, 400, 2);
        let y1 = monte_carlo_circuit_yield(&c, &model, t, 400, 2);
        let y2 = monte_carlo_circuit_yield(&c, &model, t * 1.2, 400, 2);
        assert!(y0 <= y1 && y1 <= y2);
        assert!(y2 > 0.95, "generous constraint should pass almost always");
    }

    #[test]
    fn path_yield_limits() {
        assert!((path_yield(100.0, 10.0, 100.0) - 0.5).abs() < 1e-12);
        assert!(path_yield(100.0, 10.0, 130.0) > 0.99);
        assert!(path_yield(100.0, 10.0, 70.0) < 0.01);
        assert_eq!(path_yield(100.0, 0.0, 99.0), 0.0);
        assert_eq!(path_yield(100.0, 0.0, 101.0), 1.0);
        assert!((path_yield_loss(100.0, 10.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mc_yield_agrees_with_gaussian_on_single_path() {
        // A chain circuit has exactly one path, so the MC circuit yield must
        // match the analytic Gaussian path yield.
        let mut nl = Netlist::new(1);
        let mut prev = nl.add_gate(CellKind::Nand2, vec![Signal::Input(0), Signal::Input(0)]);
        let mut gates = vec![prev.clone().unwrap()];
        for _ in 0..5 {
            let g = nl
                .add_gate(CellKind::Inv, vec![Signal::Gate(prev.unwrap())])
                .unwrap();
            gates.push(g);
            prev = Ok(g);
        }
        nl.mark_output(*gates.last().unwrap()).unwrap();
        let c = PlacedCircuit::from_parts(
            nl,
            Placement::new(vec![(0.3, 0.3); 6]),
            CellLibrary::synthetic_90nm(),
        );
        let model = VariationModel::three_level();
        let res = crate::block::run_ssta(&c, &model);
        let mean = res.circuit_delay().mean;
        let sigma = res.circuit_delay().std_dev();
        let t = mean + sigma; // one sigma of margin ⇒ yield ≈ 84 %
        let analytic = path_yield(mean, sigma, t);
        let mc = monte_carlo_circuit_yield(&c, &model, t, 4000, 3);
        assert!(
            (analytic - mc).abs() < 0.03,
            "analytic {analytic} vs MC {mc}"
        );
    }
}
