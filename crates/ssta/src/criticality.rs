//! Path criticality: the probability that a given target path is *the*
//! slowest one on a fabricated chip.
//!
//! Yield-loss ranks paths by their individual tail mass; criticality ranks
//! them by who actually sets the chip frequency — the quantity a debug
//! engineer triages by. Computed by seeded Monte Carlo over the linear
//! delay model (exact for the model, no max-approximation error).

use pathrep_linalg::gauss;
use pathrep_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-path criticality statistics over a Monte-Carlo population.
#[derive(Debug, Clone, PartialEq)]
pub struct Criticality {
    /// `P(path i is the slowest)`, summing to 1 over the target set.
    pub probability: Vec<f64>,
    /// Mean slack to the pool maximum, `E[max_j d_j − d_i]`, in ps.
    pub mean_slack: Vec<f64>,
    /// Number of samples used.
    pub samples: usize,
}

impl Criticality {
    /// Paths ordered by decreasing criticality probability.
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.probability.len()).collect();
        // NaN-total descending order (NaNs last): a poisoned probability
        // cannot scramble the ranking.
        order.sort_by(|&i, &j| {
            pathrep_linalg::vecops::cmp_nan_smallest(self.probability[j], self.probability[i])
        });
        order
    }

    /// The smallest set of paths whose criticality mass reaches `coverage`
    /// (e.g. 0.95): the paths a debug flow must actually watch.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < coverage <= 1`.
    pub fn covering_set(&self, coverage: f64) -> Vec<usize> {
        assert!(coverage > 0.0 && coverage <= 1.0, "coverage must be in (0,1]");
        let mut acc = 0.0;
        let mut out = Vec::new();
        for i in self.ranking() {
            out.push(i);
            acc += self.probability[i];
            if acc >= coverage {
                break;
            }
        }
        out
    }
}

/// Estimates path criticalities for the delay model `d = µ + A·x` with
/// `n_samples` seeded Monte-Carlo draws.
///
/// # Panics
///
/// Panics if `mu` does not match `a`'s row count or `n_samples == 0`.
pub fn monte_carlo_criticality(
    a: &Matrix,
    mu: &[f64],
    n_samples: usize,
    seed: u64,
) -> Criticality {
    let n = a.nrows();
    assert_eq!(mu.len(), n, "mu must match the path count");
    assert!(n_samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = vec![0.0_f64; a.ncols()];
    let mut wins = vec![0usize; n];
    let mut slack_sum = vec![0.0_f64; n];
    for _ in 0..n_samples {
        gauss::fill_standard_normal(&mut rng, &mut x);
        let mut d = a.matvec(&x).expect("x sized to A");
        for (di, &m) in d.iter_mut().zip(mu.iter()) {
            *di += m;
        }
        let (mut argmax, mut max) = (0usize, f64::NEG_INFINITY);
        for (i, &di) in d.iter().enumerate() {
            if di > max {
                max = di;
                argmax = i;
            }
        }
        wins[argmax] += 1;
        for (i, &di) in d.iter().enumerate() {
            slack_sum[i] += max - di;
        }
    }
    Criticality {
        probability: wins.iter().map(|&w| w as f64 / n_samples as f64).collect(),
        mean_slack: slack_sum.iter().map(|s| s / n_samples as f64).collect(),
        samples: n_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, 0.5]]).unwrap();
        let c = monte_carlo_criticality(&a, &[100.0, 100.0, 99.0], 2_000, 1);
        let sum: f64 = c.probability.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(c.samples, 2_000);
    }

    #[test]
    fn dominant_path_wins() {
        // Path 0 is 50 ps slower than the rest: essentially always critical.
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]).unwrap();
        let c = monte_carlo_criticality(&a, &[150.0, 100.0, 100.0], 3_000, 2);
        assert!(c.probability[0] > 0.99);
        assert_eq!(c.ranking()[0], 0);
        assert!(c.mean_slack[0] < c.mean_slack[1]);
    }

    #[test]
    fn symmetric_paths_split_evenly() {
        // Two iid paths: each critical about half the time.
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 3.0]]).unwrap();
        let c = monte_carlo_criticality(&a, &[100.0, 100.0], 20_000, 3);
        assert!((c.probability[0] - 0.5).abs() < 0.02);
    }

    #[test]
    fn covering_set_grows_with_coverage() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0], &[1.5, 1.5], &[0.1, 0.1]])
            .unwrap();
        let c = monte_carlo_criticality(&a, &[102.0, 100.0, 101.0, 90.0], 5_000, 4);
        let small = c.covering_set(0.5);
        let large = c.covering_set(0.99);
        assert!(small.len() <= large.len());
        // The hopeless path 3 should not be needed even at 99 %.
        assert!(!large.contains(&3));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]).unwrap();
        let c1 = monte_carlo_criticality(&a, &[10.0, 10.0], 500, 9);
        let c2 = monte_carlo_criticality(&a, &[10.0, 10.0], 500, 9);
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "mu must match")]
    fn dimension_checked() {
        let a = Matrix::identity(2);
        let _ = monte_carlo_criticality(&a, &[1.0], 10, 0);
    }
}
