//! First-order canonical delay forms and Clark's max approximation.

use crate::sparse::SparseVec;
use pathrep_linalg::gauss::{normal_cdf, normal_pdf};
use serde::{Deserialize, Serialize};

/// A first-order canonical form `d = µ + Σ aᵢ·xᵢ + σ_extra·z`, where the
/// `xᵢ` are the shared variation variables and `z` an independent residual
/// absorbing the variance that Clark's max cannot attribute to shared
/// variables.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CanonicalForm {
    /// Mean µ.
    pub mean: f64,
    /// Coefficients on the shared variables.
    pub sens: SparseVec,
    /// Variance of the independent residual term (`σ_extra²`).
    pub extra_var: f64,
}

impl CanonicalForm {
    /// A deterministic constant.
    pub fn constant(mean: f64) -> Self {
        CanonicalForm {
            mean,
            sens: SparseVec::new(),
            extra_var: 0.0,
        }
    }

    /// Builds from mean and shared-variable terms.
    pub fn from_terms<I: IntoIterator<Item = (usize, f64)>>(mean: f64, terms: I) -> Self {
        CanonicalForm {
            mean,
            sens: SparseVec::from_terms(terms),
            extra_var: 0.0,
        }
    }

    /// Total variance.
    pub fn variance(&self) -> f64 {
        self.sens.norm2_sq() + self.extra_var
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sum of two forms (`self + other`); residual variances add (their
    /// residuals are independent by construction).
    pub fn add(&self, other: &CanonicalForm) -> CanonicalForm {
        CanonicalForm {
            mean: self.mean + other.mean,
            sens: self.sens.linear_combination(1.0, &other.sens, 1.0),
            extra_var: self.extra_var + other.extra_var,
        }
    }

    /// Covariance with another form (residuals are independent across
    /// forms, so only shared variables contribute).
    pub fn covariance(&self, other: &CanonicalForm) -> f64 {
        self.sens.dot(&other.sens)
    }

    /// Clark's approximation of `max(self, other)` as a canonical form.
    ///
    /// The result's mean and variance match Clark's exact first two moments
    /// of the max of two (possibly correlated) Gaussians; the shared
    /// coefficients are blended by the tightness probability and the
    /// leftover variance goes into the independent residual (never
    /// negative — clamped at zero against rounding).
    pub fn max(&self, other: &CanonicalForm) -> CanonicalForm {
        let (a, b) = (self, other);
        let va = a.variance();
        let vb = b.variance();
        let cov = a.covariance(b);
        let theta_sq = (va + vb - 2.0 * cov).max(0.0);
        let theta = theta_sq.sqrt();
        if theta < 1e-12 {
            // Nearly perfectly correlated with equal variance: the larger
            // mean dominates.
            return if a.mean >= b.mean { a.clone() } else { b.clone() };
        }
        let alpha = (a.mean - b.mean) / theta;
        let t = normal_cdf(alpha); // tightness probability P(A > B)
        let phi = normal_pdf(alpha);
        let mean = a.mean * t + b.mean * (1.0 - t) + theta * phi;
        let second_moment = (va + a.mean * a.mean) * t
            + (vb + b.mean * b.mean) * (1.0 - t)
            + (a.mean + b.mean) * theta * phi;
        let variance = (second_moment - mean * mean).max(0.0);
        // Blend shared sensitivities by tightness.
        let sens = a.sens.linear_combination(t, &b.sens, 1.0 - t);
        let shared_var = sens.norm2_sq();
        let extra_var = (variance - shared_var).max(0.0);
        CanonicalForm {
            mean,
            sens,
            extra_var,
        }
    }

    /// The `p`-quantile of the (Gaussian) delay this form represents —
    /// e.g. `quantile(0.999)` is a 99.9 %-coverage arrival bound.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies strictly in `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + pathrep_linalg::gauss::normal_quantile(p) * self.std_dev()
    }

    /// Probability that this delay meets a constraint: `P(d ≤ t_cons)`.
    pub fn yield_at(&self, t_cons: f64) -> f64 {
        let sd = self.std_dev();
        if sd <= 0.0 {
            return if self.mean <= t_cons { 1.0 } else { 0.0 };
        }
        normal_cdf((t_cons - self.mean) / sd)
    }

    /// Evaluates the *shared* part against a realization `x` (the residual
    /// is statistical only and evaluates to its mean, zero).
    ///
    /// # Panics
    ///
    /// Panics if a stored index exceeds `x`'s bounds.
    pub fn eval_mean_shared(&self, x: &[f64]) -> f64 {
        self.mean + self.sens.eval(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn form(mean: f64, terms: &[(usize, f64)]) -> CanonicalForm {
        CanonicalForm::from_terms(mean, terms.iter().copied())
    }

    #[test]
    fn add_sums_everything() {
        let a = form(10.0, &[(0, 1.0), (1, 2.0)]);
        let b = form(5.0, &[(1, 1.0)]);
        let c = a.add(&b);
        assert_eq!(c.mean, 15.0);
        assert_eq!(c.sens.get(1), 3.0);
        assert_eq!(c.variance(), 1.0 + 9.0);
    }

    #[test]
    fn max_of_identical_is_identity() {
        let a = form(10.0, &[(0, 2.0)]);
        let m = a.max(&a);
        assert!((m.mean - a.mean).abs() < 1e-12);
        assert!((m.variance() - a.variance()).abs() < 1e-12);
    }

    #[test]
    fn max_of_dominating_mean() {
        // B is far above A: max ≈ B.
        let a = form(0.0, &[(0, 1.0)]);
        let b = form(100.0, &[(1, 1.0)]);
        let m = a.max(&b);
        assert!((m.mean - 100.0).abs() < 1e-6);
        assert!((m.variance() - 1.0).abs() < 1e-6);
        // Sensitivity should be essentially B's.
        assert!(m.sens.get(1) > 0.999);
        assert!(m.sens.get(0) < 1e-6);
    }

    #[test]
    fn max_of_equal_independent_standard_gaussians() {
        // E[max(X, Y)] = 1/sqrt(pi) for X,Y ~ N(0,1) independent;
        // Var = 1 − 1/pi.
        let a = form(0.0, &[(0, 1.0)]);
        let b = form(0.0, &[(1, 1.0)]);
        let m = a.max(&b);
        let expected_mean = 1.0 / std::f64::consts::PI.sqrt();
        let expected_var = 1.0 - 1.0 / std::f64::consts::PI;
        assert!((m.mean - expected_mean).abs() < 1e-6);
        assert!((m.variance() - expected_var).abs() < 1e-6);
    }

    #[test]
    fn max_against_monte_carlo() {
        use pathrep_linalg::gauss;
        use rand::SeedableRng;
        // Correlated pair sharing variable 0.
        let a = form(10.0, &[(0, 2.0), (1, 1.0)]);
        let b = form(10.5, &[(0, 1.5), (2, 2.0)]);
        let clark = a.max(&b);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = [
                gauss::sample_standard_normal(&mut rng),
                gauss::sample_standard_normal(&mut rng),
                gauss::sample_standard_normal(&mut rng),
            ];
            let da = a.eval_mean_shared(&x);
            let db = b.eval_mean_shared(&x);
            let m = da.max(db);
            sum += m;
            sumsq += m * m;
        }
        let mc_mean = sum / n as f64;
        let mc_var = sumsq / n as f64 - mc_mean * mc_mean;
        assert!(
            (clark.mean - mc_mean).abs() < 0.02,
            "Clark mean {} vs MC {}",
            clark.mean,
            mc_mean
        );
        assert!(
            (clark.variance() - mc_var).abs() < 0.1,
            "Clark var {} vs MC {}",
            clark.variance(),
            mc_var
        );
    }

    #[test]
    fn quantile_and_yield_are_consistent() {
        let a = CanonicalForm::from_terms(100.0, [(0usize, 5.0)]);
        let q = a.quantile(0.9);
        assert!((a.yield_at(q) - 0.9).abs() < 1e-6);
        assert!(a.quantile(0.5) - 100.0 < 1e-9);
        assert!(a.quantile(0.99) > a.quantile(0.9));
    }

    #[test]
    fn yield_of_constant_is_step() {
        let c = CanonicalForm::constant(10.0);
        assert_eq!(c.yield_at(9.0), 0.0);
        assert_eq!(c.yield_at(11.0), 1.0);
    }

    #[test]
    fn constant_has_zero_variance() {
        let c = CanonicalForm::constant(3.0);
        assert_eq!(c.variance(), 0.0);
        assert_eq!(c.std_dev(), 0.0);
        assert_eq!(c.eval_mean_shared(&[]), 3.0);
    }

    #[test]
    fn covariance_only_through_shared() {
        let mut a = form(0.0, &[(0, 2.0)]);
        a.extra_var = 5.0;
        let b = form(0.0, &[(0, 3.0), (1, 1.0)]);
        assert_eq!(a.covariance(&b), 6.0);
    }
}
